"""Serving-tier benchmark: mixed-priority workload on the query service.

Measures the serving tier itself (wall-clock throughput and latency
percentiles), not the simulated engine: a seeded 32-query mixed-priority
workload — half submitted as isomorphic relabellings to exercise the
canonical plan cache, with injected worker crashes recovered by retry —
runs on a 4-worker service under a finite admission budget.  Every
completed query is verified bit-identical to its solo run, so the
benchmark doubles as the serving acceptance gate.

Each run appends one record to ``results/BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_serving.py [--label after]
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI: 8q

The seed is pinned through ``REPRO_BENCH_SEED`` (default 1) like every
other benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SEED, RESULTS_DIR  # noqa: E402

from repro.graph import load_dataset  # noqa: E402
from repro.serve import LoadDriver, WorkloadSpec  # noqa: E402
from repro.testing import check_driver_report  # noqa: E402

RECORD_PATH = os.path.join(RESULTS_DIR, "BENCH_serving.json")

DATASET = "GO"
NUM_QUERIES = 32
NUM_WORKERS = 4
CRASHES = 2
#: admission budget sized so queries queue behind the budget (covering
#: the fits-now path) without ever being unrunnable
BUDGET_BYTES = 64e9


def bench(label: str, smoke: bool = False) -> dict:
    queries = 8 if smoke else NUM_QUERIES
    crashes = 1 if smoke else CRASHES
    graph = load_dataset(DATASET, seed=BENCH_SEED + 6)
    spec = WorkloadSpec(
        num_queries=queries, dataset=DATASET, seed=BENCH_SEED,
        relabel_fraction=0.5, crashes=crashes,
        tenants=("alpha", "beta"))
    driver = LoadDriver(graph, spec, num_workers=NUM_WORKERS,
                        memory_budget_bytes=BUDGET_BYTES)
    report = driver.run(verify=True)

    violations = check_driver_report(report)
    svc = report.service
    record = {
        "label": label,
        "seed": BENCH_SEED,
        "workload": (f"{queries}q/{DATASET} x{NUM_WORKERS}w "
                     f"crashes={crashes}"),
        "wall_s": round(report.wall_s, 4),
        "throughput_qps": round(svc["throughput_qps"], 2),
        "by_status": report.counts_by_status,
        "latency_p50_s": round(svc["latency"]["p50_s"], 4),
        "latency_p95_s": round(svc["latency"]["p95_s"], 4),
        "latency_p99_s": round(svc["latency"]["p99_s"], 4),
        "queue_wait_p95_s": round(svc["queue_wait"]["p95_s"], 4),
        "plan_cache_hit_rate": round(svc["plan_cache"]["hit_rate"], 4),
        "plan_cache_hits": svc["plan_cache"]["hits"],
        "worker_crashes": svc["worker_crashes"],
        "retries": svc["retries"],
        "delivery_violations": svc["delivery_violations"],
        "peak_reserved_mb": round(
            svc["admission"]["peak_reserved_bytes"] / 1e6, 2),
        "verified_vs_solo": report.verified,
        "oracle_violations": [str(v) for v in violations],
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run",
                        help="tag for this record (e.g. before/after)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (8 queries); record not saved")
    ns = parser.parse_args(argv)
    record = bench(ns.label, smoke=ns.smoke)
    print(json.dumps(record, indent=2))
    failed = (not record["verified_vs_solo"] or record["oracle_violations"]
              or record["worker_crashes"] < (1 if ns.smoke else CRASHES)
              or record["plan_cache_hits"] == 0
              or record["by_status"].get("completed", 0) == 0)
    if ns.smoke:
        return 1 if failed else 0
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trajectory = []
    if os.path.exists(RECORD_PATH):
        with open(RECORD_PATH, encoding="utf-8") as f:
            trajectory = json.load(f)
    trajectory.append(record)
    with open(RECORD_PATH, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
