"""Figure 6 (Exp-2): all-round comparison of q1–q6 across datasets.

The paper runs all five systems on q1–q6 over several graphs under a
3-hour / 64 GB budget and reports total time (with the communication share
shaded), peak memory and completion rate: HUGE completes 90 % of all
cases versus BiGJoin 80 %, SEED 50 %, RADS 30 %, BENU 30 %, is 4.0×–54.8×
faster on average, and keeps memory bounded throughout.

Here: q1–q6 on the GO (web) and EU (road) stand-ins under scaled
budgets; per-case outcome is a time or 00M / 0T.  (The social stand-ins'
5-path result sets are too large for a pure-Python sweep; GO and EU keep
every case tractable while still exercising hub skew and the road shape.)
"""

from common import (DEFAULT_MEMORY_BUDGET, DEFAULT_TIME_BUDGET, emit,
                    format_table, make_cluster, run_engine)

ENGINES = ["SEED", "BiGJoin", "BENU", "RADS", "HUGE"]
QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6"]
DATASETS = ["GO", "EU"]


def run_fig6():
    outcomes = {}
    for dataset in DATASETS:
        for qname in QUERIES:
            for engine in ENGINES:
                cluster = make_cluster(
                    dataset, num_machines=10,
                    memory_budget=DEFAULT_MEMORY_BUDGET,
                    time_budget=DEFAULT_TIME_BUDGET)
                outcomes[(dataset, qname, engine)] = run_engine(
                    engine, cluster, qname)
    return outcomes


def _fmt(result):
    if isinstance(result, str):
        return result
    rep = result.report
    share = rep.comm_time_s / rep.total_time_s if rep.total_time_s else 0
    return f"{rep.total_time_s:.3f}s ({share:.0%} comm)"


def test_fig6_allround_comparison(benchmark):
    outcomes = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    rows = []
    for dataset in DATASETS:
        for qname in QUERIES:
            rows.append([dataset, qname] + [
                _fmt(outcomes[(dataset, qname, e)]) for e in ENGINES])
    completion = {
        e: sum(1 for d in DATASETS for q in QUERIES
               if not isinstance(outcomes[(d, q, e)], str))
        for e in ENGINES
    }
    total = len(DATASETS) * len(QUERIES)
    comp_row = [["completion", ""] + [
        f"{completion[e]}/{total}" for e in ENGINES]]
    emit("fig6_allround", format_table(
        "Figure 6 (Exp-2) — all-round comparison (q1–q6, budgeted)",
        ["data", "query"] + ENGINES, rows + comp_row))

    # HUGE has the highest completion rate and completes everything here
    assert completion["HUGE"] == max(completion.values())
    assert completion["HUGE"] == total

    # every completed case agrees on the count with HUGE
    for d in DATASETS:
        for q in QUERIES:
            huge = outcomes[(d, q, "HUGE")]
            for e in ENGINES:
                r = outcomes[(d, q, e)]
                if not isinstance(r, str):
                    assert r.count == huge.count, (d, q, e)

    # among completed cases, HUGE is competitive everywhere and the
    # outright winner on the skewed (web) dataset's heavy queries.  The
    # paper's 90 % winner rate needs graphs whose intermediate explosions
    # dwarf the fixed costs; on the tiny EU road grid every engine
    # finishes in microseconds and ties are noise, so the assertion is
    # "never far behind" plus "wins where it matters".
    behind = 0
    cases = 0
    for d in DATASETS:
        for q in QUERIES:
            huge_t = outcomes[(d, q, "HUGE")].report.total_time_s
            others = [outcomes[(d, q, e)] for e in ENGINES if e != "HUGE"]
            finished = [r.report.total_time_s for r in others
                        if not isinstance(r, str)]
            if finished:
                cases += 1
                if huge_t > 3.0 * min(finished):
                    behind += 1
    assert behind <= 0.25 * cases
    # and HUGE always beats BENU (the KV-store overhead dominates on
    # every graph); it also beats RADS wherever star explosions exist
    # (the web dataset — on the tiny road grid RADS's trivial stars can
    # be cheaper than scheduling overhead)
    for d in DATASETS:
        for q in QUERIES:
            huge_t = outcomes[(d, q, "HUGE")].report.total_time_s
            benu = outcomes[(d, q, "BENU")]
            if not isinstance(benu, str):
                assert huge_t < benu.report.total_time_s, (d, q)
    # (q6 excluded: RADS' star-expansion of a path is a plain linear
    # scan with no explosion, and at micro scale its lack of scheduling
    # machinery can edge out HUGE)
    for q in ("q1", "q2", "q3", "q4", "q5"):
        rads = outcomes[("GO", q, "RADS")]
        if not isinstance(rads, str):
            assert outcomes[("GO", q, "HUGE")].report.total_time_s \
                < rads.report.total_time_s, q
