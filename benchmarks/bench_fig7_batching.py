"""Figure 7 (Exp-4): effectiveness of batching.

With the cache disabled, the batch size is swept; larger batches aggregate
more GetNbrs requests per RPC, raising network utilisation (the paper
measures 71 % at 100 K, 86 % at 512 K, 94 % at 1024 K) and reducing both
execution and communication time, flattening at large sizes.
"""

from common import emit, format_table, make_cluster, run_engine

from repro.core import EngineConfig

BATCH_SIZES = [16, 32, 64, 128, 256, 512, 1024]


def run_fig7():
    table = {}
    for qname in ("q1", "q3"):
        cluster = make_cluster("UK", num_machines=10)
        series = []
        for batch in BATCH_SIZES:
            cfg = EngineConfig(batch_size=batch,
                               cache_capacity_ids=1,  # cache disabled
                               output_queue_capacity=max(8192, 8 * batch))
            result = run_engine("HUGE", cluster, qname, config=cfg)
            series.append((batch, result))
        table[qname] = series
    return table


def test_fig7_batching(benchmark):
    table = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    rows = []
    for qname, series in table.items():
        for batch, r in series:
            rep = r.report
            rows.append([
                qname, batch, f"{rep.total_time_s:.4f}s",
                f"{rep.comm_time_s:.4f}s", f"{rep.messages}",
                f"{rep.network_utilisation:.0%}",
            ])
    emit("fig7_batching", format_table(
        "Figure 7 (Exp-4) — batch-size sweep on UK stand-in, cache off",
        ["query", "batch", "T", "T_C", "messages", "net util"], rows))

    for qname, series in table.items():
        counts = {r.count for _, r in series}
        assert len(counts) == 1, f"{qname}: batch size changed the count"
        smallest = series[0][1].report
        largest = series[-1][1].report
        # bigger batches aggregate RPCs: fewer messages, higher utilisation
        assert largest.messages < smallest.messages
        assert largest.network_utilisation > smallest.network_utilisation
        # and communication time improves
        assert largest.comm_time_s < smallest.comm_time_s
