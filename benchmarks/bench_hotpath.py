"""Hot-path wall-clock microbenchmark: square (q1) on the LJ stand-in.

Unlike every other benchmark in this directory, this one measures *real*
wall-clock time, not simulated time: it exists to track the interpretation
overhead of the runtime itself (the batch representation, the intersect
loop, the shuffle path) across commits.  Simulated metrics are recorded
alongside as a cross-check — they must not move when only the
implementation gets faster.

Each run appends one record to ``results/BENCH_hotpath.json`` so the
perf trajectory accumulates::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--label before]

The seed is pinned through ``REPRO_BENCH_SEED`` (default 1) like every
other benchmark, so two runs measure the same enumeration.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SEED, RESULTS_DIR, make_cluster  # noqa: E402

from repro.core import EngineConfig, HugeEngine  # noqa: E402
from repro.query import get_query  # noqa: E402

RECORD_PATH = os.path.join(RESULTS_DIR, "BENCH_hotpath.json")

#: (dataset, scale, query) — the ISSUE's square/lj-sample workload
DATASET, SCALE, QUERY = "LJ", 1.0, "q1"
REPEATS = 3


def run_once() -> tuple[float, object]:
    """One full engine run; returns (wall seconds, EnumerationResult)."""
    cluster = make_cluster(DATASET, num_machines=10, scale=SCALE)
    engine = HugeEngine(cluster, EngineConfig())
    query = get_query(QUERY)
    t0 = time.perf_counter()
    result = engine.run(query)
    return time.perf_counter() - t0, result


def bench(label: str) -> dict:
    walls = []
    result = None
    for _ in range(REPEATS):
        wall, result = run_once()
        walls.append(wall)
    wall = min(walls)  # best-of-N: least scheduler noise
    rep = result.report
    record = {
        "label": label,
        "seed": BENCH_SEED,
        "workload": f"{QUERY}/{DATASET}@{SCALE}",
        "matches": result.count,
        "wall_s": round(wall, 4),
        "wall_s_all": [round(w, 4) for w in walls],
        "tuples_per_s": round(result.count / wall, 1),
        # simulated cross-check: these must be invariant across
        # implementation-only changes
        "sim_total_time_s": rep.total_time_s,
        "sim_bytes_transferred": rep.bytes_transferred,
        "sim_messages": rep.messages,
        "sim_peak_memory_bytes": rep.peak_memory_bytes,
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run",
                        help="tag for this record (e.g. before/after)")
    ns = parser.parse_args(argv)
    record = bench(ns.label)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trajectory = []
    if os.path.exists(RECORD_PATH):
        with open(RECORD_PATH, encoding="utf-8") as f:
            trajectory = json.load(f)
    trajectory.append(record)
    with open(RECORD_PATH, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
