"""Work-sharing benchmark: Zipf-skewed workload, shared vs per-request.

Measures the tentpole of the sharing PR: the same seeded Zipf-skewed
workload (hot patterns repeat, as real query logs do) runs twice on a
deliberately small worker pool —

* **baseline** — sharing off, result cache off: every request is its own
  engine execution;
* **shared** — shared-prefix batching on plus a tenant-aware result
  cache: concurrently queued requests whose canonical plans share a
  join-unit prefix execute as one engine run, and repeat answers are
  served from the cache.

Both runs are verified bit-identical to solo executions per request, so
the speedup is free of correctness drift.  The gate asserts the shared
run actually shared (groups formed or cache hits landed) and did not
regress throughput.

Each full run appends one record to ``results/BENCH_sharing.json``::

    PYTHONPATH=src python benchmarks/bench_sharing.py [--label after]
    PYTHONPATH=src python benchmarks/bench_sharing.py --smoke   # CI sized

The seed is pinned through ``REPRO_BENCH_SEED`` (default 1) like every
other benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SEED, RESULTS_DIR  # noqa: E402

from repro.graph import load_dataset  # noqa: E402
from repro.serve import LoadDriver, WorkloadSpec  # noqa: E402
from repro.testing import check_driver_report  # noqa: E402

RECORD_PATH = os.path.join(RESULTS_DIR, "BENCH_sharing.json")

DATASET = "GO"
NUM_QUERIES = 48
#: a small pool so requests queue up concurrently — the precondition for
#: share-group formation (an idle pool dispatches everything solo)
NUM_WORKERS = 2
ZIPF_S = 1.1
RESULT_CACHE_BYTES = 8e6


def _spec(queries: int) -> WorkloadSpec:
    return WorkloadSpec(
        num_queries=queries, dataset=DATASET, seed=BENCH_SEED,
        relabel_fraction=0.25, collect_fraction=0.5,
        tenants=("alpha", "beta"), zipf_s=ZIPF_S)


def _run(queries: int, sharing: bool) -> dict:
    graph = load_dataset(DATASET, seed=BENCH_SEED + 6)
    driver = LoadDriver(
        graph, _spec(queries), num_workers=NUM_WORKERS,
        sharing=sharing,
        result_cache_bytes=RESULT_CACHE_BYTES if sharing else 0.0)
    report = driver.run(verify=True)
    violations = check_driver_report(report)
    svc = report.service
    return {
        "wall_s": round(report.wall_s, 4),
        "throughput_qps": round(svc["throughput_qps"], 2),
        "by_status": report.counts_by_status,
        "latency_p50_s": round(svc["latency"]["p50_s"], 4),
        "latency_p95_s": round(svc["latency"]["p95_s"], 4),
        "shared_groups": svc["shared_groups"],
        "shared_requests": svc["shared_requests"],
        "result_cache_hits": svc["result_cache_hits"],
        "result_cache": svc["result_cache"],
        "verified_vs_solo": report.verified,
        "oracle_violations": [str(v) for v in violations],
    }


def bench(label: str, smoke: bool = False) -> dict:
    queries = 12 if smoke else NUM_QUERIES
    baseline = _run(queries, sharing=False)
    shared = _run(queries, sharing=True)
    speedup = (baseline["wall_s"] / shared["wall_s"]
               if shared["wall_s"] > 0 else float("inf"))
    return {
        "label": label,
        "seed": BENCH_SEED,
        "workload": (f"{queries}q/{DATASET} x{NUM_WORKERS}w "
                     f"zipf={ZIPF_S}"),
        "baseline": baseline,
        "shared": shared,
        "speedup": round(speedup, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run",
                        help="tag for this record (e.g. before/after)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (12 queries); record not saved")
    ns = parser.parse_args(argv)
    record = bench(ns.label, smoke=ns.smoke)
    print(json.dumps(record, indent=2))
    base, shared = record["baseline"], record["shared"]
    failed = (
        not base["verified_vs_solo"] or not shared["verified_vs_solo"]
        or base["oracle_violations"] or shared["oracle_violations"]
        # the shared run must actually share work on a skewed mix
        or (shared["shared_requests"] == 0
            and shared["result_cache_hits"] == 0)
        or base["by_status"].get("completed", 0) != record_queries(record)
        or shared["by_status"].get("completed", 0) != record_queries(record)
    )
    if not ns.smoke:
        # full runs additionally gate on the speedup being real
        failed = failed or record["speedup"] < 1.0
        os.makedirs(RESULTS_DIR, exist_ok=True)
        trajectory = []
        if os.path.exists(RECORD_PATH):
            with open(RECORD_PATH, encoding="utf-8") as f:
                trajectory = json.load(f)
        trajectory.append(record)
        with open(RECORD_PATH, "w", encoding="utf-8") as f:
            json.dump(trajectory, f, indent=2)
            f.write("\n")
    return 1 if failed else 0


def record_queries(record: dict) -> int:
    return int(record["workload"].split("q/")[0])


if __name__ == "__main__":
    sys.exit(main())
