"""Figure 8 (Exp-5): cache capacity sweep.

Growing the LRBU cache raises the hit rate and cuts communication volume
and time sharply (the paper: 0.1→0.5 GB raises hit rate ~3.5× and cuts
communication ~10×), flattening once the cache holds every remote vertex
the query touches.
"""

from common import emit, format_table, make_cluster, run_engine

from repro.core import EngineConfig

#: cache capacity as a fraction of the data-graph size
FRACTIONS = [0.01, 0.03, 0.1, 0.3, 0.6, 1.0]


def run_fig8():
    table = {}
    for qname in ("q1", "q2"):
        cluster = make_cluster("UK", num_machines=10)
        series = []
        for fraction in FRACTIONS:
            cfg = EngineConfig(cache_capacity_fraction=fraction)
            result = run_engine("HUGE", cluster, qname, config=cfg)
            series.append((fraction, result))
        table[qname] = series
    return table


def test_fig8_cache_capacity(benchmark):
    table = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    rows = []
    for qname, series in table.items():
        for fraction, r in series:
            rep = r.report
            rows.append([
                qname, f"{fraction:.2f}",
                f"{rep.total_time_s:.4f}s", f"{rep.comm_time_s:.4f}s",
                f"{rep.bytes_transferred / 1e6:.2f}MB",
                f"{r.cache_hit_rate:.0%}",
            ])
    emit("fig8_cache_capacity", format_table(
        "Figure 8 (Exp-5) — cache-capacity sweep on UK stand-in",
        ["query", "capacity", "T", "T_C", "C", "hit rate"], rows))

    for qname, series in table.items():
        counts = {r.count for _, r in series}
        assert len(counts) == 1
        tiny, big = series[0][1], series[-1][1]
        # capacity raises the hit rate and cuts communication volume
        assert big.cache_hit_rate > tiny.cache_hit_rate
        assert big.report.bytes_transferred < tiny.report.bytes_transferred
        # and the curve flattens: the last two points are close
        second_last, last = series[-2][1], series[-1][1]
        assert abs(last.report.comm_time_s - second_last.report.comm_time_s) \
            <= 0.25 * max(second_last.report.comm_time_s, 1e-9) + 1e-9
