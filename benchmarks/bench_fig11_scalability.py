"""Figure 11 (Exp-10): scalability with the cluster size.

HUGE and BiGJoin run q1 and q2 on the (larger) FS graph with 1–10
machines.  The paper reports almost-linear scaling for HUGE, with an
average 1→10-machine scaling factor of 7.5× versus BiGJoin's 6.7×.
"""

from common import emit, format_table, make_cluster, run_engine

MACHINES = [1, 2, 4, 6, 8, 10]


def run_fig11():
    table = {}
    for qname in ("q1", "q2"):
        for engine in ("HUGE", "BiGJoin"):
            series = []
            for k in MACHINES:
                cluster = make_cluster("FS", num_machines=k)
                series.append((k, run_engine(engine, cluster, qname)))
            table[(qname, engine)] = series
    return table


def test_fig11_scalability(benchmark):
    table = benchmark.pedantic(run_fig11, rounds=1, iterations=1)

    rows = []
    factors = {}
    for (qname, engine), series in table.items():
        t1 = series[0][1].report.total_time_s
        tk = series[-1][1].report.total_time_s
        factors[(qname, engine)] = t1 / tk
        for k, r in series:
            rows.append([qname, engine, k,
                         f"{r.report.total_time_s:.4f}s",
                         f"{t1 / r.report.total_time_s:.2f}x"])
    emit("fig11_scalability", format_table(
        "Figure 11 (Exp-10) — scalability on FS stand-in (speedup vs k=1)",
        ["query", "engine", "machines", "T", "speedup"], rows))

    for (qname, engine), series in table.items():
        counts = {r.count for _, r in series}
        assert len(counts) == 1, f"{qname}/{engine}: k changed the count"

    for qname in ("q1", "q2"):
        huge = factors[(qname, "HUGE")]
        big = factors[(qname, "BiGJoin")]
        # meaningful scaling for HUGE, and at least as good as BiGJoin
        assert huge > 2.5, f"{qname}: HUGE scaling factor {huge:.1f}"
        assert huge >= big * 0.9, (qname, huge, big)

        # monotone-ish: time decreases from 1 to 10 machines
        series = table[(qname, "HUGE")]
        assert series[-1][1].report.total_time_s < \
            series[0][1].report.total_time_s
