"""Tables 2 and 3: the taxonomy of execution plans and the dataset table.

Table 2 classifies the existing systems by logical (join unit, join order)
and physical (join algorithm, communication mode) settings; it is
regenerated from the live plan builders by inspecting the plans they
produce for a probe query.  Table 3 lists the evaluation datasets; it is
regenerated from the stand-in generators next to the paper's statistics.
"""

from common import BENCH_SEED, emit, format_table

from repro.core.plan import (benu_plan, configure_plan, rads_plan,
                             seed_plan, starjoin_plan, wco_plan)
from repro.graph import dataset_table, load_dataset
from repro.query import ExactEstimator, get_query


def run_table2():
    probe = get_query("q4")  # rich enough to expose plan structure
    graph = load_dataset("GO", scale=0.5, seed=BENCH_SEED + 6)
    est = ExactEstimator(graph)
    builders = {
        "StarJoin": starjoin_plan(probe),
        "SEED": seed_plan(probe, est),
        "BiGJoin": wco_plan(probe),
        "BENU": benu_plan(probe),
        "RADS": rads_plan(probe),
    }
    rows = []
    for name, logical in builders.items():
        order = "left-deep" if logical.root.is_left_deep() else "bushy"
        units = {leaf.sub.num_vertices for leaf in logical.root.leaves()}
        unit = "star" if max(units) > 2 else "star (edges)"
        physical = configure_plan(logical)
        algos = {j.setting.algorithm for j in physical.joins()}
        comms = {j.setting.comm for j in physical.joins()}
        rows.append([
            name, unit, order,
            "/".join(sorted(a.value for a in algos)),
            "/".join(sorted(c.value for c in comms)) + " (in HUGE)",
        ])
    return rows


def run_table3():
    rows = []
    for entry in dataset_table(seed=BENCH_SEED + 6):
        rows.append([
            entry["dataset"], entry["family"],
            f"{entry['paper_V']:,}", f"{entry['paper_E']:,}",
            entry["paper_dmax"], entry["paper_davg"],
            f"{entry['standin_V']:,}", f"{entry['standin_E']:,}",
            entry["standin_dmax"], entry["standin_davg"],
        ])
    return rows


def test_table2_taxonomy(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit("table2_taxonomy", format_table(
        "Table 2 — execution plans of existing works (regenerated from the "
        "plug-in builders; physical settings as configured by Equation 3)",
        ["system", "unit U", "order O", "algorithm A", "comm C"], rows))
    by_name = {r[0]: r for r in rows}
    assert by_name["StarJoin"][2] == "left-deep"
    assert by_name["BENU"][2] == "left-deep"
    assert by_name["RADS"][2] == "left-deep"
    assert by_name["BiGJoin"][2] == "left-deep"
    # BiGJoin/BENU extensions are complete star joins → wco under Eq. 3
    assert "wco" in by_name["BiGJoin"][3]
    assert "wco" in by_name["BENU"][3]


def test_table3_datasets(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    emit("table3_datasets", format_table(
        "Table 3 — datasets: paper graphs vs synthetic stand-ins",
        ["name", "family", "paper |V|", "paper |E|", "paper dmax",
         "paper davg", "standin |V|", "standin |E|", "standin dmax",
         "standin davg"], rows))
    assert len(rows) == 7
    # stand-ins preserve the family degree character
    by_name = {r[0]: r for r in rows}
    assert by_name["EU"][8] <= 8            # road: tiny max degree
    assert by_name["CW"][8] >= 100          # web-scale: huge hubs
