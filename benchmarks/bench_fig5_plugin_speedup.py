"""Figure 5 (Exp-1): speeding up existing algorithms via plug-in plans.

The logical plans of BENU, RADS, SEED and BiGJoin run inside HUGE
(HUGE-BENU, HUGE-RADS, HUGE-SEED, HUGE-WCO) and are compared against the
original systems on q1 and q2.  Paper highlights: every HUGE-X beats its
original; HUGE-BENU's speedup is the largest (the Cassandra overhead
vanishes); HUGE-WCO outperforms BiGJoin 8.5×/4.8× with communication time
reduced by orders of magnitude.

RADS/HUGE-RADS run on LJ (the paper notes both run overtime on UK due to
RADS' poor plan); the others run on UK.
"""

from common import emit, format_table, make_cluster, run_engine

from repro.core import HugeEngine
from repro.core.plan import benu_plan, rads_plan, seed_plan, wco_plan
from repro.query import SamplingEstimator, get_query


def run_fig5():
    rows = []
    checks = {}
    for query_name in ("q1", "q2"):
        for system, builder, dataset in (
                ("BENU", benu_plan, "UK"),
                ("RADS", rads_plan, "LJ"),
                ("SEED", seed_plan, "UK"),
                ("BiGJoin", wco_plan, "UK")):
            # paper budgets scaled down: SEED's index-free star explosion
            # goes 00M (as SEED does for q1 in the paper's Exp-1)
            cluster = make_cluster(dataset, num_machines=10,
                                   memory_budget=24e6, time_budget=120.0)
            original = run_engine(
                "BiGJoin" if system == "BiGJoin" else system,
                cluster, query_name)
            query = get_query(query_name)
            if builder is seed_plan:
                plan = builder(query, SamplingEstimator(cluster.graph))
            else:
                plan = builder(query)
            plugged = HugeEngine(cluster).run(plan=plan)
            hname = {"BENU": "HUGE-BENU", "RADS": "HUGE-RADS",
                     "SEED": "HUGE-SEED", "BiGJoin": "HUGE-WCO"}[system]
            orig_t = (original.report.total_time_s
                      if not isinstance(original, str) else float("inf"))
            speedup = orig_t / plugged.report.total_time_s
            rows.append([
                query_name, dataset, system,
                f"{orig_t:.3f}" if orig_t != float("inf") else original,
                hname, f"{plugged.report.total_time_s:.3f}",
                f"{speedup:.1f}x",
            ])
            checks[(query_name, system)] = (original, plugged, speedup)
    return rows, checks


def test_fig5_plugin_speedups(benchmark):
    rows, checks = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    emit("fig5_plugin_speedup", format_table(
        "Figure 5 (Exp-1) — plugging existing logical plans into HUGE",
        ["query", "data", "original", "T(s)", "plugged", "T(s)", "speedup"],
        rows))

    for (query_name, system), (orig, plug, speedup) in checks.items():
        if not isinstance(orig, str):
            assert orig.count == plug.count, (query_name, system)
        # every plugged plan beats its original (Remark 3.2); originals
        # that hit 00M/0T count as beaten
        assert speedup > 1.0, (query_name, system, speedup)

    # HUGE-BENU enjoys the largest speedup among the originals that
    # actually completed (the KV-store overhead is gone)
    for qn in ("q1", "q2"):
        benu_speedup = checks[(qn, "BENU")][2]
        finite = [checks[(qn, s)][2] for s in ("RADS", "SEED", "BiGJoin")
                  if checks[(qn, s)][2] != float("inf")]
        assert all(benu_speedup >= sp for sp in finite)

    # HUGE-WCO reduces BiGJoin's communication time dramatically (the
    # paper reports 764×/115×; q1 carries the claim here — q2 on the UK
    # stand-in is too small for a stable ratio)
    orig, plug, _ = checks[("q1", "BiGJoin")]
    if not isinstance(orig, str):
        assert plug.report.comm_time_s < orig.report.comm_time_s / 2
    orig, plug, _ = checks[("q2", "BiGJoin")]
    if not isinstance(orig, str):
        assert plug.report.comm_time_s <= orig.report.comm_time_s * 1.05
