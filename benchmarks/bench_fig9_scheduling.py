"""Figure 9 (Exp-7): the DFS/BFS-adaptive scheduler.

Sweeping the output-queue capacity morphs the scheduler from pure DFS
(tiny queues: heavy scheduling overhead, poor batching) through adaptive
to pure BFS (unbounded queues: fastest but unbounded intermediate memory).
The paper observes overtime below 10⁶, a flat optimum around 10⁷–5·10⁷,
and out-of-memory beyond 10⁸.  The long-running query is q6 (5-path),
whose intermediate results explode (run on the GO stand-in, where the
5-path still produces ~1.4 M matches).
"""

from common import emit, format_table, make_cluster

from repro.core import EngineConfig, HugeEngine
from repro.core.plan import wco_plan
from repro.query import get_query

QUEUE_SIZES = [128, 512, 2048, 8192, 32768, float("inf")]


def run_fig9():
    series = []
    query = get_query("q6")
    # the left-deep pull plan drives every intermediate through the
    # adaptive output queues (the optimal plan for a 5-path uses a
    # PUSH-JOIN whose buffers hide the queue effect)
    plan = wco_plan(query)
    for qsize in QUEUE_SIZES:
        cluster = make_cluster("GO", num_machines=10)
        # a small batch keeps the queue capacity (not the batch overflow)
        # in charge, exposing the DFS↔BFS spectrum at stand-in scale
        cfg = EngineConfig(output_queue_capacity=qsize, batch_size=128,
                           scan_pivot_chunk=8)
        result = HugeEngine(cluster, cfg).run(plan=plan)
        series.append((qsize, result))
    return series


def test_fig9_scheduling(benchmark):
    series = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    rows = [[
        "inf" if qsize == float("inf") else str(int(qsize)),
        f"{r.report.total_time_s:.4f}s",
        f"{r.report.compute_time_s:.4f}s",
        f"{r.report.peak_memory_bytes / 1e6:.2f}MB",
    ] for qsize, r in series]
    emit("fig9_scheduling", format_table(
        "Figure 9 (Exp-7) — output-queue sweep (DFS → adaptive → BFS), "
        "q6 on GO stand-in",
        ["queue", "T", "T_R", "peak M"], rows))

    counts = {r.count for _, r in series}
    assert len(counts) == 1

    times = [r.report.total_time_s for _, r in series]
    mems = [r.report.peak_memory_bytes for _, r in series]
    # DFS-style scheduling (tiny queue) is the slowest configuration
    assert times[0] == max(times)
    # the adaptive middle ground reaches (near-)BFS speed ...
    assert min(times[2:-1]) <= times[-1] * 1.2
    # ... while BFS-style scheduling needs the most memory by far
    assert mems[-1] == max(mems)
    assert mems[-1] > 2 * mems[0]
