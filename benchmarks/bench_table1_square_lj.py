"""Table 1: the square query (q1) over LJ on a 10-machine cluster.

Paper reference (total time, computation, communication, volume, memory):

    SEED    1536.6s  343.2s  1193.4s  537.2GB  42.3GB
    BiGJoin  195.9s  122.1s    73.8s  534.5GB  14.3GB
    BENU    4091.7s 3763.2s   328.5s   25.3GB   1.3GB
    RADS    2643.8s 2478.7s   165.1s  452.7GB  19.2GB
    HUGE      52.3s   51.5s     0.8s    4.6GB   2.2GB

Expected reproduction shape: HUGE fastest with the smallest transferred
volume; BiGJoin the best baseline; BENU slowest and compute-dominated
(external KV-store stalls) with the smallest memory; SEED/RADS in between
with the largest memory.
"""

from common import (emit, format_table, make_cluster, result_record,
                    run_engine)

ENGINES = ["SEED", "BiGJoin", "BENU", "RADS", "HUGE"]


def run_table1():
    cluster = make_cluster("LJ", num_machines=10)
    rows = []
    results = {}
    for name in ENGINES:
        r = run_engine(name, cluster, "q1")
        results[name] = r
        rep = r.report
        rows.append([
            name,
            f"{rep.total_time_s:.3f}",
            f"{rep.compute_time_s:.3f}",
            f"{rep.comm_time_s:.3f}",
            f"{rep.bytes_transferred / 1e6:.2f}",
            f"{rep.peak_memory_bytes / 1e6:.2f}",
            f"{r.count}",
        ])
    huge_t = results["HUGE"].report.total_time_s
    for row, name in zip(rows, ENGINES):
        row.append(f"{results[name].report.total_time_s / huge_t:.1f}x")
    return rows, results


def test_table1_square_on_lj(benchmark):
    rows, results = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    emit("table1_square_lj", format_table(
        "Table 1 — square (q1) on LJ stand-in, k=10 (simulated)",
        ["Work", "T(s)", "T_R(s)", "T_C(s)", "C(MB)", "M(MB)", "matches",
         "vs HUGE"],
        rows),
        records={n: result_record(r) for n, r in results.items()})

    counts = {r.count for r in results.values()}
    assert len(counts) == 1, "engines disagree on the match count"

    t = {n: results[n].report.total_time_s for n in ENGINES}
    # who wins: HUGE fastest by a clear margin, BENU slowest, RADS worse
    # than SEED.  (Known deviation, see EXPERIMENTS.md: at stand-in scale
    # SEED's wedge shuffle is too small to push it above BiGJoin.)
    assert t["HUGE"] == min(t.values())
    assert all(t[n] > 1.5 * t["HUGE"] for n in ENGINES if n != "HUGE")
    assert t["BENU"] == max(t.values())
    assert t["RADS"] > t["SEED"]

    c = {n: results[n].report.bytes_transferred for n in ENGINES}
    assert c["HUGE"] == min(c.values())  # hybrid comm wins on volume

    m = {n: results[n].report.peak_memory_bytes for n in ENGINES}
    assert m["BENU"] == min(m.values())  # DFS memory
    assert m["HUGE"] < m["SEED"] and m["HUGE"] < m["RADS"]

    benu = results["BENU"].report
    assert benu.compute_time_s > benu.comm_time_s  # KV stalls land in T_R
