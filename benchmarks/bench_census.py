"""Motif-census benchmark: ESU enumeration + memoised canonicalisation.

Runs the size-k census (k = 3 and 4) over the GO stand-in and measures
the census walk itself: wall-clock enumeration throughput (connected
k-subgraphs per second), the canonical memo's effectiveness (hit rate,
and the once-per-class guarantee ``canonical_calls == classes``), and
the simulated cluster ledger (time / communication).  Each census runs
**twice** on freshly-built clusters and the two runs must be
bit-identical — counts, memo counters and the simulated report — so the
benchmark doubles as the census determinism gate.

Each run appends one record to ``results/BENCH_census.json``::

    PYTHONPATH=src python benchmarks/bench_census.py [--label after]
    PYTHONPATH=src python benchmarks/bench_census.py --smoke   # CI: k=3

The seed is pinned through ``REPRO_BENCH_SEED`` (default 1) like every
other benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SEED, RESULTS_DIR, make_cluster  # noqa: E402

from repro.apps.mining import connected_patterns, motif_census  # noqa: E402

RECORD_PATH = os.path.join(RESULTS_DIR, "BENCH_census.json")

DATASET = "GO"
SIZES = (3, 4)
SMOKE_SIZES = (3,)


def _run_once(k: int) -> tuple[dict, float]:
    """One census on a fresh cluster; returns (as_dict record, wall s)."""
    cluster = make_cluster(DATASET)
    t0 = time.perf_counter()
    res = motif_census(cluster, k)
    wall = time.perf_counter() - t0
    return res.as_dict(), wall


def bench(label: str, smoke: bool = False) -> dict:
    sizes = SMOKE_SIZES if smoke else SIZES
    record: dict = {"label": label, "seed": BENCH_SEED, "dataset": DATASET,
                    "runs": {}}
    deterministic = True
    memo_effective = True
    for k in sizes:
        first, wall = _run_once(k)
        second, _ = _run_once(k)
        identical = first == second
        deterministic &= identical
        classes = len(connected_patterns(k))
        memo_effective &= (first["memo_hit_rate"] > 0
                           and first["canonical_calls"] <= classes)
        record["runs"][f"k{k}"] = {
            "wall_s": round(wall, 4),
            "total_subgraphs": first["total_subgraphs"],
            "subgraphs_per_s": round(first["total_subgraphs"]
                                     / max(wall, 1e-9)),
            "classes": classes,
            "counts": first["counts"],
            "canonical_calls": first["canonical_calls"],
            "memo_hits": first["memo_hits"],
            "memo_hit_rate": round(first["memo_hit_rate"], 6),
            "sim_time_s": round(first["report"]["total_time_s"], 6),
            "sim_comm_mb": round(
                first["report"]["bytes_transferred"] / 1e6, 4),
            "bit_identical_rerun": identical,
        }
    record["deterministic"] = deterministic
    record["memo_effective"] = memo_effective
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run",
                        help="tag for this record (e.g. before/after)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (k=3 only); record not saved")
    ns = parser.parse_args(argv)
    record = bench(ns.label, smoke=ns.smoke)
    print(json.dumps(record, indent=2))
    failed = (not record["deterministic"] or not record["memo_effective"]
              or any(r["total_subgraphs"] == 0
                     for r in record["runs"].values()))
    if ns.smoke:
        return 1 if failed else 0
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trajectory = []
    if os.path.exists(RECORD_PATH):
        with open(RECORD_PATH, encoding="utf-8") as f:
            trajectory = json.load(f)
    trajectory.append(record)
    with open(RECORD_PATH, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
