"""Shared infrastructure for the experiment benchmarks.

Every benchmark module regenerates one table or figure of the paper's
evaluation (§7).  Results are printed to the terminal (uncaptured) and
written to ``benchmarks/results/<name>.txt`` so they survive pytest's
output capture; ``EXPERIMENTS.md`` records the paper-vs-measured
comparison.

The simulated cluster matches the paper's local testbed: 10 machines × 4
workers (§7.1), with budgets expressed in *simulated* seconds/bytes so the
paper's 00M / 0T outcomes reproduce.
"""

from __future__ import annotations

import json
import os
from typing import Callable

from repro.baselines import (BaselineResult, BenuEngine, BigJoinEngine,
                             RadsEngine, SeedEngine)
from repro.cluster import (Cluster, CostModel, OutOfMemoryError,
                           OvertimeError)
from repro.core import EngineConfig, EnumerationResult, HugeEngine
from repro.graph import load_dataset
from repro.query import get_query

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: default simulated budgets for the all-round comparison
DEFAULT_MEMORY_BUDGET = 24e6     # bytes per machine (24 "GB" scaled: 1e6 ≈ 1 GB)
DEFAULT_TIME_BUDGET = 60.0       # simulated seconds (≈ the paper's 3 hours)

#: single root seed for every benchmark.  Partitioning and dataset
#: generation both derive from it, so two runs with the same value
#: produce bit-identical graphs, partitions, and therefore tables.
#: The default reproduces the historical seeds (partition 1, dataset 7).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


def make_cluster(dataset: str, num_machines: int = 10,
                 workers: int = 4, scale: float = 1.0,
                 memory_budget: float = float("inf"),
                 time_budget: float = float("inf"),
                 seed: int | None = None) -> Cluster:
    """A paper-shaped cluster over a named stand-in dataset."""
    if seed is None:
        seed = BENCH_SEED
    graph = load_dataset(dataset, scale=scale, seed=seed + 6)
    cost = CostModel(memory_budget_bytes=memory_budget,
                     time_budget_s=time_budget)
    return Cluster(graph, num_machines=num_machines,
                   workers_per_machine=workers, cost=cost, seed=seed)


def run_engine(name: str, cluster: Cluster, query_name: str,
               config: EngineConfig | None = None,
               **engine_kwargs) -> EnumerationResult | BaselineResult | str:
    """Run one engine; returns its result, or ``"00M"`` / ``"0T"``."""
    query = get_query(query_name)
    factories: dict[str, Callable] = {
        "HUGE": lambda: HugeEngine(cluster, config, **engine_kwargs),
        "SEED": lambda: SeedEngine(cluster, **engine_kwargs),
        "BiGJoin": lambda: BigJoinEngine(cluster, **engine_kwargs),
        "BENU": lambda: BenuEngine(cluster, **engine_kwargs),
        "RADS": lambda: RadsEngine(cluster, **engine_kwargs),
    }
    try:
        return factories[name]().run(query)
    except OutOfMemoryError:
        return "00M"
    except OvertimeError:
        return "0T"


def format_table(title: str, headers: list[str],
                 rows: list[list[str]]) -> str:
    """Render an aligned text table."""
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def result_record(result) -> dict:
    """One machine-readable record per engine run.

    Accepts an :class:`EnumerationResult` / :class:`BaselineResult` (via
    their ``as_dict``) or the ``"00M"`` / ``"0T"`` failure markers, which
    become ``{"outcome": marker}``.
    """
    if isinstance(result, str):
        return {"outcome": result}
    record = result.as_dict()
    record["outcome"] = "ok"
    return record


def emit(name: str, text: str, records=None) -> None:
    """Print a result table (bypassing capture) and persist it.

    With ``records`` (a JSON-serialisable object, typically a dict of
    :func:`result_record` values), also writes ``results/<name>.json``
    so tables can be diffed and post-processed without re-running.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w",
              encoding="utf-8") as f:
        f.write(text + "\n")
    if records is not None:
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w",
                  encoding="utf-8") as f:
            json.dump(records, f, indent=2, sort_keys=True)
            f.write("\n")
    print("\n" + text, flush=True)


def fmt_time(result) -> str:
    """Format total time, or the failure marker."""
    if isinstance(result, str):
        return result
    return f"{result.report.total_time_s:.3f}s"


def fmt_mem(result) -> str:
    if isinstance(result, str):
        return "-"
    return f"{result.report.peak_memory_bytes / 1e6:.2f}MB"


def fmt_comm(result) -> str:
    if isinstance(result, str):
        return "-"
    return f"{result.report.bytes_transferred / 1e6:.2f}MB"
