"""Table 6 (Exp-9): comparing hybrid plans on q7 (5-cycle) and q8 (6-cycle).

Paper reference (GO graph; planning time in brackets):

            HUGE-WCO     HUGE-EH            HUGE-GF        HUGE
    q7      OT           7340.28s (170.02s) —              —
    q8      64.5s(21ms)  67.2s (15.6s)      64.4s (13.9s)  40.1s (6.5s)

For q7 the pure-wco plan must materialise every 4-path — far worse than
the hybrid plans that join a 3-path with a 2-path.  For q8 each optimiser
produces its own hybrid plan and HUGE's communication-aware plan wins.
"""

import time

from common import emit, format_table, make_cluster

from repro.core import HugeEngine
from repro.core.plan import (emptyheaded_plan, graphflow_plan, wco_plan)
from repro.query import SamplingEstimator, get_query


def run_table6():
    table = {}
    for qname in ("q7", "q8"):
        cluster = make_cluster("GO", num_machines=10)
        est = SamplingEstimator(cluster.graph, trials=600, seed=3)
        engine = HugeEngine(cluster, estimator=est)
        query = get_query(qname)
        row = {}
        planners = {
            "HUGE-WCO": lambda: wco_plan(query),
            "HUGE-EH": lambda: emptyheaded_plan(query, est),
            "HUGE-GF": lambda: graphflow_plan(query, est,
                                              cluster.graph.avg_degree),
            "HUGE": lambda: engine.plan(query),
        }
        for name, planner in planners.items():
            t0 = time.perf_counter()
            plan = planner()
            plan_wall = time.perf_counter() - t0
            result = engine.run(plan=plan)
            row[name] = (result, plan_wall, plan)
        table[qname] = row
    return table


def test_table6_hybrid_plans(benchmark):
    table = benchmark.pedantic(run_table6, rounds=1, iterations=1)

    names = ["HUGE-WCO", "HUGE-EH", "HUGE-GF", "HUGE"]
    rows = []
    for qname, row in table.items():
        rows.append([qname] + [
            f"{row[n][0].report.total_time_s:.4f}s ({row[n][1] * 1e3:.0f}ms)"
            for n in names])
    emit("table6_hybrid_plans", format_table(
        "Table 6 (Exp-9) — hybrid execution plans on GO stand-in "
        "(planning wall time in brackets)",
        ["query"] + names, rows))

    for qname, row in table.items():
        counts = {row[n][0].count for n in names}
        assert len(counts) == 1, f"{qname}: plans disagree on counts"
        t = {n: row[n][0].report.total_time_s for n in names}
        # HUGE's comm-aware plan is at least as good as every alternative
        assert t["HUGE"] <= min(t.values()) * 1.05
        # the pure-wco chain never beats HUGE's plan beyond noise.  At
        # stand-in scale the cycle queries are result-dominated (the
        # final counting scan is the shared bulk of every plan), so the
        # paper's wide q7/q8 spreads compress to near-ties here — see
        # EXPERIMENTS.md for the analysis.
        assert t["HUGE"] <= t["HUGE-WCO"] * 1.05
