"""Thread-pool vs process-pool serving throughput on the same workload.

The thread backend multiplexes workers over one GIL, so its wall-clock
throughput is capped near a single core no matter the pool size; the
process backend runs each worker's enumeration in its own child against
the shared-memory graph (``repro.core.shm``), so throughput scales with
cores.  This benchmark runs the identical seeded workload through both
backends (spawn/attach cost excluded via ``QueryService.wait_ready``),
verifies **both** bit-identical to solo runs, and records the speedup.

The acceptance gate is core-aware — process workers cannot beat the GIL
on hardware that has nothing beyond one core to give:

* >= 4 usable cores: process pool must be >= 2x the thread pool;
* 2-3 cores: >= 1.2x;
* 1 core: completion + bit-identical verification only (the speedup is
  still recorded, honestly).

Each run appends one record to ``results/BENCH_procpool.json``::

    PYTHONPATH=src python benchmarks/bench_procpool.py [--label after]
    PYTHONPATH=src python benchmarks/bench_procpool.py --smoke   # CI sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SEED, RESULTS_DIR  # noqa: E402

from repro.graph import load_dataset  # noqa: E402
from repro.serve import LoadDriver, WorkloadSpec  # noqa: E402
from repro.serve.service import QueryService  # noqa: E402

RECORD_PATH = os.path.join(RESULTS_DIR, "BENCH_procpool.json")

DATASET = "GO"
NUM_QUERIES = 32
NUM_WORKERS = 4


def usable_cores() -> int:
    """Cores this process may actually schedule on (honours cgroup /
    affinity limits, not just the machine's socket count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_pool(pool: str, queries: int, workers: int) -> dict:
    """One verified driver run on the given backend; wall time measured
    submit-to-drain with worker spawn/attach excluded."""
    graph = load_dataset(DATASET, seed=BENCH_SEED + 6)
    spec = WorkloadSpec(num_queries=queries, dataset=DATASET,
                        seed=BENCH_SEED, relabel_fraction=0.5,
                        tenants=("alpha", "beta"))
    driver = LoadDriver(graph, spec, num_workers=workers, pool=pool)
    requests = spec.build()
    service = driver.service = QueryService(
        datasets={spec.dataset: graph}, num_workers=workers, pool=pool)
    service.start()
    service.wait_ready()
    t0 = time.perf_counter()
    try:
        handles = [service.submit(req) for req in requests]
        outcomes = [h.result(timeout=600) for h in handles]
        wall = time.perf_counter() - t0
    finally:
        service.stop()
    verified, failures = driver._verify(requests, outcomes)
    completed = sum(1 for o in outcomes if o.status.value == "completed")
    return {
        "pool": pool,
        "wall_s": round(wall, 4),
        "throughput_qps": round(completed / wall, 2) if wall else 0.0,
        "completed": completed,
        "verified_vs_solo": verified,
        "verify_failures": failures,
    }


def bench(label: str, smoke: bool = False) -> dict:
    queries = 8 if smoke else NUM_QUERIES
    workers = 2 if smoke else NUM_WORKERS
    cores = usable_cores()
    thread = run_pool("thread", queries, workers)
    process = run_pool("process", queries, workers)
    speedup = (thread["wall_s"] / process["wall_s"]
               if process["wall_s"] else 0.0)
    # the gate the hardware can honestly support
    if cores >= 4:
        required = 2.0
    elif cores >= 2:
        required = 1.2
    else:
        required = 0.0  # single core: completion + verification only
    return {
        "label": label,
        "seed": BENCH_SEED,
        "workload": f"{queries}q/{DATASET} x{workers}w",
        "usable_cores": cores,
        "thread": thread,
        "process": process,
        "speedup_process_vs_thread": round(speedup, 3),
        "required_speedup": required,
        "gate_passed": bool(
            thread["verified_vs_solo"] and process["verified_vs_solo"]
            and thread["completed"] == queries
            and process["completed"] == queries
            and speedup >= required),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run",
                        help="tag for this record (e.g. before/after)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (8 queries); record not saved")
    ns = parser.parse_args(argv)
    record = bench(ns.label, smoke=ns.smoke)
    print(json.dumps(record, indent=2))
    if ns.smoke:
        return 0 if record["gate_passed"] else 1
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trajectory = []
    if os.path.exists(RECORD_PATH):
        with open(RECORD_PATH, encoding="utf-8") as f:
            trajectory = json.load(f)
    trajectory.append(record)
    with open(RECORD_PATH, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    return 0 if record["gate_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
