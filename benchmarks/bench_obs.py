"""Observability overhead gate: metrics-on vs metrics-off wall clock.

Runs the hot-path workload (square/q1 on the LJ stand-in, 10 machines)
twice — once bare, once under a :class:`repro.obs.MetricsTracer`
aggregating into a registry — and records the wall-clock overhead of
instrumentation.  The ISSUE's gate is **overhead < 5%**; the record
carries a ``gate_ok`` flag and the script exits non-zero when the gate
fails, so CI can enforce it.

Two invariants are asserted, not just recorded:

* the simulated metrics report of the instrumented run is bit-identical
  to the bare run (instrumentation must never perturb the simulation);
* the exposition produced from the instrumented run passes
  ``check_exposition``.

Each run appends one record to ``results/BENCH_obs.json``::

    PYTHONPATH=src python benchmarks/bench_obs.py [--label after]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SEED, RESULTS_DIR, make_cluster  # noqa: E402

from repro.core import EngineConfig, HugeEngine  # noqa: E402
from repro.obs import (MetricsRegistry, MetricsTracer, check_exposition,
                       record_result)  # noqa: E402
from repro.query import get_query  # noqa: E402

RECORD_PATH = os.path.join(RESULTS_DIR, "BENCH_obs.json")

DATASET, SCALE, QUERY = "LJ", 1.0, "q1"
REPEATS = 3
GATE_FRACTION = 0.05


def run_once(registry: MetricsRegistry | None) -> tuple[float, object]:
    cluster = make_cluster(DATASET, num_machines=10, scale=SCALE)
    engine = HugeEngine(cluster, EngineConfig())
    query = get_query(QUERY)
    tracer = MetricsTracer(registry) if registry is not None else None
    t0 = time.perf_counter()
    result = engine.run(query, tracer=tracer)
    return time.perf_counter() - t0, result


def bench(label: str) -> dict:
    walls_off, walls_on = [], []
    result_off = result_on = None
    registry = None
    # interleave off/on runs so drift in machine load hits both sides
    for _ in range(REPEATS):
        wall, result_off = run_once(None)
        walls_off.append(wall)
        registry = MetricsRegistry()
        wall, result_on = run_once(registry)
        walls_on.append(wall)

    off, on = min(walls_off), min(walls_on)
    overhead = (on - off) / off

    rep_off = result_off.report.as_dict()
    rep_on = result_on.report.as_dict()
    if rep_off != rep_on or result_off.count != result_on.count:
        raise AssertionError(
            "instrumented run perturbed simulated metrics: "
            f"count {result_off.count} vs {result_on.count}")
    record_result(registry, result_on)
    errors = check_exposition(registry.expose())
    if errors:
        raise AssertionError(f"exposition failed self-check: {errors[:3]}")

    return {
        "label": label,
        "seed": BENCH_SEED,
        "workload": f"{QUERY}/{DATASET}@{SCALE}",
        "matches": result_on.count,
        "wall_s_off": round(off, 4),
        "wall_s_on": round(on, 4),
        "wall_s_off_all": [round(w, 4) for w in walls_off],
        "wall_s_on_all": [round(w, 4) for w in walls_on],
        "overhead_pct": round(overhead * 100, 2),
        "gate_pct": GATE_FRACTION * 100,
        "gate_ok": overhead < GATE_FRACTION,
        "sim_identical": True,
        "metric_families": len(registry.families()),
        "sim_total_time_s": result_on.report.total_time_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run",
                        help="tag for this record (e.g. before/after)")
    ns = parser.parse_args(argv)
    record = bench(ns.label)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trajectory = []
    if os.path.exists(RECORD_PATH):
        with open(RECORD_PATH, encoding="utf-8") as f:
            trajectory = json.load(f)
    trajectory.append(record)
    with open(RECORD_PATH, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(json.dumps(record, indent=2))
    return 0 if record["gate_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
