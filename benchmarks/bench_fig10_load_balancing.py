"""Figure 10 (Exp-8): load balancing via two-layer work stealing.

HUGE (full stealing) is compared against HUGE-NOSTL (no stealing,
load distributed by the pivot vertex as BENU does) and HUGE-RGP (RADS'
region-group heuristic — only the initial scan is redistributed).  The
paper measures the standard deviation of per-worker execution times (q6:
0.5 for HUGE vs 73.4 NOSTL / 13.2 RGP) and a stealing CPU overhead of
only 0.017 %.
"""

from common import emit, format_table, make_cluster, run_engine

from repro.core import EngineConfig

MODES = [("HUGE", "full"), ("HUGE-RGP", "region-group"),
         ("HUGE-NOSTL", "none")]


def run_fig10():
    table = {}
    # q1/q2/q4 on the hub-heavy UK stand-in: the paper's q4-q6 5-path and
    # 6-vertex variants are intractable at pure-Python scale on UK, and GO
    # is too mild to expose skew
    for qname in ("q1", "q2", "q4"):
        cluster = make_cluster("UK", num_machines=10)
        row = {}
        for label, mode in MODES:
            # fine batches keep steal decisions (and the per-batch worker
            # assignment that NOSTL skews) active at stand-in scale
            cfg = EngineConfig(stealing=mode, batch_size=128,
                               scan_pivot_chunk=8)
            row[label] = run_engine("HUGE", cluster, qname, config=cfg)
        table[qname] = row
    return table


def test_fig10_load_balancing(benchmark):
    table = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    rows = []
    for qname, row in table.items():
        for label, _ in MODES:
            r = row[label]
            rows.append([
                qname, label,
                f"{r.report.total_time_s:.4f}s",
                f"{r.report.worker_time_stddev_s * 1e3:.3f}ms",
                f"{r.report.aggregate_worker_time_s:.4f}s",
            ])
    emit("fig10_load_balancing", format_table(
        "Figure 10 (Exp-8) — work stealing on UK stand-in "
        "(stddev of per-worker busy time)",
        ["query", "variant", "T", "worker stddev", "total CPU"], rows))

    for qname, row in table.items():
        counts = {row[label].count for label, _ in MODES}
        assert len(counts) == 1
        stddev = {label: row[label].report.worker_time_stddev_s
                  for label, _ in MODES}
        # stealing balances workers: clearly lower deviation than NOSTL
        assert stddev["HUGE"] < stddev["HUGE-NOSTL"] / 1.5
        # region groups help less than full stealing
        assert stddev["HUGE"] <= stddev["HUGE-RGP"] * 1.05
        # the stealing overhead on aggregate CPU time is tiny
        total = {label: row[label].report.aggregate_worker_time_s
                 for label, _ in MODES}
        assert total["HUGE"] <= total["HUGE-NOSTL"] * 1.02
        # and wall-clock improves (or at least does not regress)
        t = {label: row[label].report.total_time_s for label, _ in MODES}
        assert t["HUGE"] <= t["HUGE-NOSTL"] * 1.05
