"""Benchmark configuration: make `pytest benchmarks/` discover these files."""

import sys
from pathlib import Path

# allow `import common` from benchmark modules
sys.path.insert(0, str(Path(__file__).parent))
