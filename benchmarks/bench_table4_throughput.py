"""Table 4 (Exp-3): throughput on the web-scale graph CW.

The paper runs q1–q3 on ClueWeb12 (42.5 B edges) in a 16-node AWS cluster;
the result set is too large to complete, so each query runs for one hour
and the *throughput* (matches per second) is reported:

    q1: 2,895,179,286/s    q2: 354,507,087,789/s    q3: 206,696,071/s

BENU cannot load the graph into Cassandra in a day; SEED cannot build its
index; RADS and BiGJoin go out of memory.  Expected shape here: HUGE
completes with bounded memory; q2 (diamond) has the highest throughput and
q3 (4-clique) the lowest; the baselines fail under the same budgets.
"""

from common import emit, format_table, make_cluster, run_engine

from repro.core import EngineConfig


def run_table4():
    rows = []
    data = {}
    for qname in ("q1", "q2", "q3"):
        cluster = make_cluster("CW", num_machines=16, workers=4,
                               memory_budget=40e6, time_budget=600.0)
        cfg = EngineConfig(output_queue_capacity=50_000,
                           cache_capacity_fraction=0.3)
        result = run_engine("HUGE", cluster, qname, config=cfg)
        data[qname] = result
        if isinstance(result, str):
            rows.append([qname, result, "-", "-", "-"])
        else:
            rows.append([
                qname,
                f"{result.count}",
                f"{result.throughput_per_s:,.0f}/s",
                f"{result.report.total_time_s:.2f}s",
                f"{result.report.peak_memory_bytes / 1e6:.1f}MB",
            ])

    # baselines under the same budgets (the paper's failure modes)
    failures = []
    for name in ("BENU", "RADS", "BiGJoin", "SEED"):
        cluster = make_cluster("CW", num_machines=16, workers=4,
                               memory_budget=4e6, time_budget=5.0)
        outcome = run_engine(name, cluster, "q2")
        failures.append([name, outcome if isinstance(outcome, str)
                         else f"{outcome.report.total_time_s:.2f}s"])
    return rows, failures, data


def test_table4_throughput_on_cw(benchmark):
    rows, failures, data = benchmark.pedantic(run_table4, rounds=1,
                                              iterations=1)

    text = format_table(
        "Table 4 (Exp-3) — HUGE throughput on CW stand-in, k=16",
        ["query", "matches", "throughput", "T", "peak M"], rows)
    text += "\n\n" + format_table(
        "Baselines on CW under the same (tight) budgets",
        ["system", "outcome"], failures)
    emit("table4_throughput", text)

    # HUGE completes all three queries
    assert all(not isinstance(data[q], str) for q in ("q1", "q2", "q3"))
    # the clique (q3) is by far the rarest pattern → lowest throughput
    # (which pattern is the most prolific depends on the graph's hub
    # overlap; the paper's CW has q2 highest, our stand-in q1 — see
    # EXPERIMENTS.md)
    assert data["q3"].throughput_per_s < data["q1"].throughput_per_s
    assert data["q3"].throughput_per_s < data["q2"].throughput_per_s
    # at least some baselines fail under the tight budgets
    assert any(outcome in ("00M", "0T") for _, outcome in failures)
