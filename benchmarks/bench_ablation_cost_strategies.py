"""Ablation (beyond the paper's tables): the optimiser's cost objective.

Example 3.2 argues that sequential hybrid planners (EmptyHeaded,
GraphFlow) fall short because "computation is the only concern", while
HUGE's optimiser also prices communication.  This ablation runs the same
DP under its four cost strategies — ``hybrid`` (HUGE), ``push-only``
(SEED's world), ``compute-mat`` (EmptyHeaded-like) and ``compute-icost``
(GraphFlow-like) — and executes every resulting plan on the engine.

Expected shape: the communication-aware ``hybrid`` objective never loses
by more than noise, and wins outright on queries whose compute-optimal
plan shuffles heavy intermediates.
"""

from common import emit, format_table, make_cluster

from repro.core import HugeEngine
from repro.core.plan import COST_STRATEGIES, Optimiser, configure_plan
from repro.query import SamplingEstimator, get_query


def run_ablation():
    table = {}
    # GO keeps every strategy's materialisation (including the compute-
    # only plans' open paths) tractable in pure Python
    for qname in ("q1", "q2", "q4", "q7"):
        cluster = make_cluster("GO", num_machines=10)
        est = SamplingEstimator(cluster.graph, trials=500, seed=5)
        engine = HugeEngine(cluster, estimator=est)
        query = get_query(qname)
        row = {}
        for strategy in COST_STRATEGIES:
            opt = Optimiser(est, cluster.num_machines,
                            cluster.graph.num_edges,
                            cost_strategy=strategy,
                            avg_degree=cluster.graph.avg_degree)
            logical, _ = opt.run_logical(query, name=strategy)
            row[strategy] = engine.run(plan=configure_plan(logical))
        table[qname] = row
    return table


def test_ablation_cost_strategies(benchmark):
    table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for qname, row in table.items():
        rows.append([qname] + [
            f"{row[s].report.total_time_s:.4f}s" for s in COST_STRATEGIES])
    emit("ablation_cost_strategies", format_table(
        "Ablation — optimiser cost strategies on GO stand-in "
        "(plan executed on the HUGE engine)",
        ["query"] + list(COST_STRATEGIES), rows))

    wins = 0
    for qname, row in table.items():
        counts = {row[s].count for s in COST_STRATEGIES}
        assert len(counts) == 1, f"{qname}: strategies disagree"
        t = {s: row[s].report.total_time_s for s in COST_STRATEGIES}
        # the communication-aware objective is never far from the best …
        assert t["hybrid"] <= min(t.values()) * 1.5, (qname, t)
        if t["hybrid"] <= min(t.values()) * 1.001:
            wins += 1
    # … and is the (possibly tied) best on several queries
    assert wins >= 2
