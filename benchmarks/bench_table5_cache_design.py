"""Table 5 (Exp-6): the cache-design ablation.

Paper reference (UK graph; fetch-stage time for LRBU in brackets):

            LRBU         LRBU-Copy  LRBU-Lock  LRU-Inf  Cncr-LRU
    q1      589.3(27.7)  734.1      920.1      997.5    2597.1
    q2       63.3(3.7)    74.5       98.0      107.7     240.5
    q3      200.6(24.8)  314.5      525.4      563.4     980.9

Expected shape: LRBU < LRBU-Copy < LRBU-Lock < LRU-Inf ≪ Cncr-LRU (which
also loses the two-stage RPC aggregation), and the fetch stage is a small
fraction of total time (~7.5 % on average in the paper).
"""

from common import emit, format_table, make_cluster, run_engine

from repro.core import CACHE_VARIANTS, EngineConfig


def run_table5():
    table = {}
    for qname in ("q1", "q2", "q3"):
        cluster = make_cluster("UK", num_machines=10)
        row = {}
        for variant in CACHE_VARIANTS:
            cfg = EngineConfig(cache_variant=variant)
            row[variant] = run_engine("HUGE", cluster, qname, config=cfg)
        table[qname] = row
    return table


def test_table5_cache_design(benchmark):
    table = benchmark.pedantic(run_table5, rounds=1, iterations=1)

    rows = []
    for qname, row in table.items():
        lrbu = row["lrbu"]
        rows.append([qname] + [
            (f"{row[v].report.total_time_s:.4f}s"
             + (f" ({lrbu.fetch_time_s:.4f}s)" if v == "lrbu" else ""))
            for v in CACHE_VARIANTS
        ])
    emit("table5_cache_design", format_table(
        "Table 5 (Exp-6) — cache-design ablation on UK stand-in "
        "(t_fetch in brackets for LRBU)",
        ["query"] + list(CACHE_VARIANTS), rows))

    for qname, row in table.items():
        counts = {row[v].count for v in CACHE_VARIANTS}
        assert len(counts) == 1, f"{qname}: ablations disagree"
        t = {v: row[v].report.total_time_s for v in CACHE_VARIANTS}
        tr = {v: row[v].report.compute_time_s for v in CACHE_VARIANTS}
        # zero-copy and lock-freedom each help; Cncr-LRU (no two-stage)
        # is the worst by a wide margin
        assert t["lrbu"] <= t["lrbu-copy"] <= t["lrbu-lock"]
        # LRU-Inf pays the heaviest per-access penalty (copy + lock +
        # position update); its unbounded capacity can win back some
        # communication, so the comparison is on compute time
        assert tr["lrbu-lock"] <= tr["lru-inf"] * 1.05
        assert t["cncr-lru"] == max(t.values())
        assert t["cncr-lru"] > 1.5 * t["lrbu"]
        # the two-stage synchronisation overhead is small: the fetch stage
        # is a minor fraction of total time
        assert row["lrbu"].fetch_time_s < 0.3 * t["lrbu"]
