"""Baseline hot-path wall-clock benchmark: square (q1) on the LJ stand-in
across the four baseline reproductions (SEED / BiGJoin / BENU / RADS).

Like ``bench_hotpath.py`` this measures *real* wall-clock time, not
simulated time: the Table 1 / Fig 6 comparison experiments spend most of
their wall-clock in the baseline engines, so their interpretation
overhead is tracked across commits the same way the HUGE runtime's is.
Simulated metrics are recorded alongside as a cross-check — they must
not move when only the implementation gets faster.

Each run appends one record *per engine* plus one ``suite`` aggregate to
``results/BENCH_baselines.json`` so the perf trajectory accumulates::

    PYTHONPATH=src python benchmarks/bench_baselines.py [--label before]

The seed is pinned through ``REPRO_BENCH_SEED`` (default 1) like every
other benchmark, so two runs measure the same enumeration.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SEED, RESULTS_DIR, make_cluster, run_engine  # noqa: E402

RECORD_PATH = os.path.join(RESULTS_DIR, "BENCH_baselines.json")

#: (dataset, scale, query) — the square/LJ workload of the ISSUE
DATASET, SCALE, QUERY = "LJ", 1.0, "q1"
ENGINES = ("SEED", "BiGJoin", "BENU", "RADS")
REPEATS = 2


def run_once(engine: str) -> tuple[float, object]:
    """One full engine run; returns (wall seconds, result)."""
    cluster = make_cluster(DATASET, num_machines=10, scale=SCALE)
    t0 = time.perf_counter()
    result = run_engine(engine, cluster, QUERY)
    return time.perf_counter() - t0, result


def bench(label: str) -> list[dict]:
    records = []
    suite_wall = 0.0
    for engine in ENGINES:
        walls = []
        result = None
        for _ in range(REPEATS):
            wall, result = run_once(engine)
            walls.append(wall)
        wall = min(walls)  # best-of-N: least scheduler noise
        suite_wall += wall
        record = {
            "label": label,
            "engine": engine,
            "seed": BENCH_SEED,
            "workload": f"{QUERY}/{DATASET}@{SCALE}",
            "wall_s": round(wall, 4),
            "wall_s_all": [round(w, 4) for w in walls],
        }
        if isinstance(result, str):  # "00M" / "0T" failure marker
            record["outcome"] = result
        else:
            rep = result.report
            record.update({
                "outcome": "ok",
                "matches": result.count,
                "tuples_per_s": round(result.count / wall, 1),
                # simulated cross-check: these must be invariant across
                # implementation-only changes
                "sim_total_time_s": rep.total_time_s,
                "sim_bytes_transferred": rep.bytes_transferred,
                "sim_messages": rep.messages,
                "sim_peak_memory_bytes": rep.peak_memory_bytes,
            })
        records.append(record)
        print(f"{engine:8s} wall_s={record['wall_s']} "
              f"outcome={record['outcome']}", flush=True)
    records.append({
        "label": label,
        "engine": "suite",
        "seed": BENCH_SEED,
        "workload": f"{QUERY}/{DATASET}@{SCALE}",
        "wall_s": round(suite_wall, 4),
    })
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run",
                        help="tag for this record (e.g. before/after)")
    ns = parser.parse_args(argv)
    records = bench(ns.label)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trajectory = []
    if os.path.exists(RECORD_PATH):
        with open(RECORD_PATH, encoding="utf-8") as f:
            trajectory = json.load(f)
    trajectory.extend(records)
    with open(RECORD_PATH, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(json.dumps(records, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
