"""Incremental delta enumeration vs from-scratch re-enumeration per batch.

The point of ``repro.stream`` is that the per-batch work is proportional
to the delta size |Δ|, not the graph size |E|.  This benchmark replays a
skewed (hub-heavy) temporal update stream over the GO stand-in twice:

* **incremental** — :class:`repro.stream.delta.IncrementalMatcher`
  applies each batch with two delta passes (Δ = the batch's effective
  inserts/deletes);
* **scratch** — the *same* delta kernel re-enumerates every batch from
  scratch by passing the whole edge set as Δ (identical code path and
  constant factors, |E| work instead of |Δ|).

Both runs must agree bit-identically on the standing count after every
batch — a mismatch fails the gate outright.  The speedup gate is purely
algorithmic (|Δ| vs |E| work on one code path), so it holds on a single
core: with |Δ| per batch two orders of magnitude below |E| the
incremental path must be >= 3x faster across the stream.

Each run appends one record to ``results/BENCH_stream.json``::

    PYTHONPATH=src python benchmarks/bench_stream.py [--label after]
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke   # CI sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SEED, RESULTS_DIR  # noqa: E402

from repro.graph import load_dataset, temporal_edge_stream  # noqa: E402
from repro.query import get_query  # noqa: E402
from repro.stream import DeltaEnumerator, IncrementalMatcher  # noqa: E402

RECORD_PATH = os.path.join(RESULTS_DIR, "BENCH_stream.json")

DATASET = "GO"
PATTERNS = ("triangle", "q1")
NUM_UPDATES = 120
BATCH_SIZE = 8
SKEW = 1.5
REQUIRED_SPEEDUP = 3.0


def run_stream(pattern_name: str, updates: int, batch_size: int) -> dict:
    """Replay one pattern's stream both ways; returns timings + agreement."""
    pattern = get_query(pattern_name)
    graph = load_dataset(DATASET, seed=BENCH_SEED + 6)
    stream = temporal_edge_stream(graph, updates, batch_size=batch_size,
                                  delete_fraction=0.35, seed=BENCH_SEED,
                                  skew=SKEW)
    # incremental: per-batch work ∝ |Δ|
    matcher = IncrementalMatcher(pattern, stream.base, keep_matches=False)
    inc_s = 0.0
    inc_counts = []
    for batch in stream.batches:
        t0 = time.perf_counter()
        result = matcher.apply(batch.inserts, batch.deletes)
        inc_s += time.perf_counter() - t0
        inc_counts.append(result.count_after)

    # scratch: same kernel, whole edge set as Δ → per-batch work ∝ |E|
    enum = DeltaEnumerator(pattern)
    scratch_s = 0.0
    scratch_counts = []
    g = stream.base
    from repro.graph import apply_updates
    for batch in stream.batches:
        g, _ = apply_updates(g, batch.inserts, batch.deletes)
        t0 = time.perf_counter()
        count = len(enum.delta_matches(g, g.edges()))
        scratch_s += time.perf_counter() - t0
        scratch_counts.append(count)

    delta_edges = sum(b.size for b in stream.batches)
    return {
        "pattern": pattern_name,
        "batches": len(stream.batches),
        "avg_delta_edges": round(delta_edges / max(1, len(stream.batches)),
                                 2),
        "graph_edges": graph.num_edges,
        "incremental_s": round(inc_s, 4),
        "scratch_s": round(scratch_s, 4),
        "speedup": round(scratch_s / inc_s, 2) if inc_s else 0.0,
        "counts_agree": inc_counts == scratch_counts,
        "final_count": inc_counts[-1] if inc_counts else 0,
    }


def bench(label: str, smoke: bool = False) -> dict:
    updates = 32 if smoke else NUM_UPDATES
    batch_size = BATCH_SIZE
    runs = [run_stream(p, updates, batch_size) for p in PATTERNS]
    inc = sum(r["incremental_s"] for r in runs)
    scratch = sum(r["scratch_s"] for r in runs)
    speedup = scratch / inc if inc else 0.0
    return {
        "label": label,
        "seed": BENCH_SEED,
        "workload": f"{updates}u/b{batch_size} skew={SKEW} {DATASET} "
                    f"{'+'.join(PATTERNS)}",
        "runs": runs,
        "incremental_s": round(inc, 4),
        "scratch_s": round(scratch, 4),
        "speedup_incremental_vs_scratch": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "gate_passed": bool(all(r["counts_agree"] for r in runs)
                            and speedup >= REQUIRED_SPEEDUP),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run",
                        help="tag for this record (e.g. before/after)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (32 updates); record not saved")
    ns = parser.parse_args(argv)
    record = bench(ns.label, smoke=ns.smoke)
    print(json.dumps(record, indent=2))
    if ns.smoke:
        return 0 if record["gate_passed"] else 1
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trajectory = []
    if os.path.exists(RECORD_PATH):
        with open(RECORD_PATH, encoding="utf-8") as f:
            trajectory = json.load(f)
    trajectory.append(record)
    with open(RECORD_PATH, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    return 0 if record["gate_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
