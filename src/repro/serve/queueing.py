"""Fair multi-queue request scheduling.

Queued requests live in one queue per :class:`Priority`.  Dispatch order
combines three policies:

* **weighted round-robin across priorities** — HIGH/NORMAL/LOW drain in
  a 4:2:1 credit cycle, so low-priority work keeps flowing under a
  sustained high-priority load (no starvation) while urgent work still
  dominates;
* **earliest-deadline-first within a priority** — entries carry an
  absolute wall-clock deadline (``inf`` when none); ties break FIFO by
  submission sequence;
* **an eligibility predicate from the dispatcher** — per-tenant in-flight
  caps, the admission controller's free budget, and retry backoff
  (``not_before``) are all dispatch-time conditions, so the queue skips
  over entries the dispatcher cannot place *right now* without losing
  their position.

The structure is lock-free from the queue's perspective: the owning
dispatcher thread is the only mutator; ``depths()`` reads are safe for
metrics snapshots.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable

from .request import Priority, QueryHandle

__all__ = ["QueueEntry", "MultiQueue", "PRIORITY_WEIGHTS"]

#: weighted-round-robin credits per priority class
PRIORITY_WEIGHTS: dict[Priority, int] = {
    Priority.HIGH: 4,
    Priority.NORMAL: 2,
    Priority.LOW: 1,
}


class QueueEntry:
    """One queued request plus its dispatch bookkeeping."""

    __slots__ = ("handle", "estimate_bytes", "submit_t", "abs_deadline",
                 "not_before", "attempts", "cancel_reason", "pattern",
                 "graph", "token", "dispatch_t", "canonical_key",
                 "config_fp", "plan_key", "group")

    def __init__(self, handle: QueryHandle, estimate_bytes: float,
                 submit_t: float, abs_deadline: float):
        self.handle = handle
        self.estimate_bytes = estimate_bytes
        self.submit_t = submit_t
        #: absolute deadline on the service clock (``inf`` = none)
        self.abs_deadline = abs_deadline
        #: retry backoff gate: not dispatchable before this time
        self.not_before = submit_t
        #: execution attempts consumed so far
        self.attempts = 0
        #: set by QueryHandle.cancel while queued
        self.cancel_reason: str | None = None
        #: resolved at submission by the service
        self.pattern = None
        self.graph = None
        #: per-attempt cancellation token (set at dispatch)
        self.token = None
        #: service-clock time of the latest dispatch
        self.dispatch_t = 0.0
        #: canonical pattern key (resolved at submission)
        self.canonical_key: str | None = None
        #: fingerprint of the effective engine config (share grouping)
        self.config_fp: str | None = None
        #: plan-cache key (resolved at submission; prefix-signature lookups)
        self.plan_key: tuple | None = None
        #: the ShareGroup this entry is currently dispatched in, if any
        self.group = None

    @property
    def sort_key(self) -> tuple[float, int]:
        """EDF order with FIFO tie-break."""
        return (self.abs_deadline, self.handle.request.seq)


class MultiQueue:
    """Priority × deadline × eligibility dispatch queue."""

    def __init__(self, weights: dict[Priority, int] | None = None):
        self._queues: dict[Priority, list[QueueEntry]] = {
            p: [] for p in Priority}
        self._keys: dict[Priority, list[tuple[float, int]]] = {
            p: [] for p in Priority}
        self.weights = dict(weights or PRIORITY_WEIGHTS)
        self._credits = dict(self.weights)

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depths(self) -> dict[str, int]:
        """Queue depth per priority (metrics snapshot)."""
        return {p.name.lower(): len(self._queues[p]) for p in Priority}

    def push(self, entry: QueueEntry) -> None:
        """Insert in EDF position within the entry's priority queue."""
        p = entry.handle.request.priority
        i = bisect.bisect(self._keys[p], entry.sort_key)
        self._keys[p].insert(i, entry.sort_key)
        self._queues[p].insert(i, entry)

    def _remove_at(self, priority: Priority, index: int) -> QueueEntry:
        self._keys[priority].pop(index)
        return self._queues[priority].pop(index)

    def _priority_cycle(self) -> Iterable[Priority]:
        """Priorities in weighted-round-robin order: classes with credit
        left first (most credit wins, urgency breaks ties), exhausted
        classes last so nothing blocks when the credited ones are empty."""
        return sorted(Priority,
                      key=lambda p: (-self._credits[p], p.value))

    def pop_eligible(self, now: float,
                     eligible: Callable[[QueueEntry], bool]) -> QueueEntry | None:
        """Remove and return the next dispatchable entry, or ``None``.

        Scans priorities in WRR order and entries in EDF order, skipping
        entries still in retry backoff (``not_before > now``) or failing
        the dispatcher's ``eligible`` predicate (tenant caps, budget fit).
        """
        for p in self._priority_cycle():
            entries = self._queues[p]
            for i, entry in enumerate(entries):
                if entry.not_before > now:
                    continue
                if not eligible(entry):
                    continue
                popped = self._remove_at(p, i)
                # clamp at zero: a pop from an exhausted class only happens
                # as a fallback (every credited class had nothing
                # dispatchable), and must not sink its credits further —
                # unbounded negative credits would silently collapse the
                # weighted ratio into strict alternation
                self._credits[p] = max(0, self._credits[p] - 1)
                # replenish once every *non-empty* class is exhausted; an
                # idle class's unspent credits must not block the cycle
                # (idle-HIGH starvation bug)
                if all(self._credits[q] <= 0 for q in Priority
                       if self._queues[q]):
                    self._credits = dict(self.weights)
                return popped
        return None

    def pop_matching(self, now: float,
                     eligible: Callable[[QueueEntry], bool],
                     match: Callable[[QueueEntry], bool],
                     limit: int) -> list[QueueEntry]:
        """Remove up to ``limit`` dispatchable entries satisfying ``match``.

        Used by the dispatcher to gather share-group followers behind an
        already-popped leader: followers piggyback on the leader's engine
        run, so **no WRR credits are charged** — grouping strictly reduces
        the work done per dispatch, it never lets a class overdraw its
        weight.  Scans priorities urgent-first and EDF within, honouring
        retry backoff and the dispatcher's eligibility predicate.
        """
        taken: list[QueueEntry] = []
        for p in Priority:
            if len(taken) >= limit:
                break
            entries = self._queues[p]
            keep_e, keep_k = [], []
            for entry, key in zip(entries, self._keys[p]):
                if (len(taken) < limit and entry.not_before <= now
                        and entry.cancel_reason is None
                        and eligible(entry) and match(entry)):
                    taken.append(entry)
                else:
                    keep_e.append(entry)
                    keep_k.append(key)
            self._queues[p] = keep_e
            self._keys[p] = keep_k
        return taken

    def pop_where(self, predicate: Callable[[QueueEntry], bool]) -> list[QueueEntry]:
        """Remove and return every queued entry matching ``predicate``
        (deadline expiry sweeps, shutdown drains, client cancels)."""
        removed: list[QueueEntry] = []
        for p in Priority:
            entries = self._queues[p]
            keep_e, keep_k = [], []
            for entry, key in zip(entries, self._keys[p]):
                if predicate(entry):
                    removed.append(entry)
                else:
                    keep_e.append(entry)
                    keep_k.append(key)
            self._queues[p] = keep_e
            self._keys[p] = keep_k
        return removed
