"""Fair multi-queue request scheduling.

Queued requests live in one queue per :class:`Priority`.  Dispatch order
combines three policies:

* **weighted round-robin across priorities** — HIGH/NORMAL/LOW drain in
  a 4:2:1 credit cycle, so low-priority work keeps flowing under a
  sustained high-priority load (no starvation) while urgent work still
  dominates;
* **earliest-deadline-first within a priority** — entries carry an
  absolute wall-clock deadline (``inf`` when none); ties break FIFO by
  submission sequence;
* **an eligibility predicate from the dispatcher** — per-tenant in-flight
  caps, the admission controller's free budget, and retry backoff
  (``not_before``) are all dispatch-time conditions, so the queue skips
  over entries the dispatcher cannot place *right now* without losing
  their position.

The structure is lock-free from the queue's perspective: the owning
dispatcher thread is the only mutator; ``depths()`` reads are safe for
metrics snapshots.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable

from .request import Priority, QueryHandle

__all__ = ["QueueEntry", "MultiQueue", "PRIORITY_WEIGHTS"]

#: weighted-round-robin credits per priority class
PRIORITY_WEIGHTS: dict[Priority, int] = {
    Priority.HIGH: 4,
    Priority.NORMAL: 2,
    Priority.LOW: 1,
}


class QueueEntry:
    """One queued request plus its dispatch bookkeeping."""

    __slots__ = ("handle", "estimate_bytes", "submit_t", "abs_deadline",
                 "not_before", "attempts", "cancel_reason", "pattern",
                 "graph", "token", "dispatch_t")

    def __init__(self, handle: QueryHandle, estimate_bytes: float,
                 submit_t: float, abs_deadline: float):
        self.handle = handle
        self.estimate_bytes = estimate_bytes
        self.submit_t = submit_t
        #: absolute deadline on the service clock (``inf`` = none)
        self.abs_deadline = abs_deadline
        #: retry backoff gate: not dispatchable before this time
        self.not_before = submit_t
        #: execution attempts consumed so far
        self.attempts = 0
        #: set by QueryHandle.cancel while queued
        self.cancel_reason: str | None = None
        #: resolved at submission by the service
        self.pattern = None
        self.graph = None
        #: per-attempt cancellation token (set at dispatch)
        self.token = None
        #: service-clock time of the latest dispatch
        self.dispatch_t = 0.0

    @property
    def sort_key(self) -> tuple[float, int]:
        """EDF order with FIFO tie-break."""
        return (self.abs_deadline, self.handle.request.seq)


class MultiQueue:
    """Priority × deadline × eligibility dispatch queue."""

    def __init__(self, weights: dict[Priority, int] | None = None):
        self._queues: dict[Priority, list[QueueEntry]] = {
            p: [] for p in Priority}
        self._keys: dict[Priority, list[tuple[float, int]]] = {
            p: [] for p in Priority}
        self.weights = dict(weights or PRIORITY_WEIGHTS)
        self._credits = dict(self.weights)

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depths(self) -> dict[str, int]:
        """Queue depth per priority (metrics snapshot)."""
        return {p.name.lower(): len(self._queues[p]) for p in Priority}

    def push(self, entry: QueueEntry) -> None:
        """Insert in EDF position within the entry's priority queue."""
        p = entry.handle.request.priority
        i = bisect.bisect(self._keys[p], entry.sort_key)
        self._keys[p].insert(i, entry.sort_key)
        self._queues[p].insert(i, entry)

    def _remove_at(self, priority: Priority, index: int) -> QueueEntry:
        self._keys[priority].pop(index)
        return self._queues[priority].pop(index)

    def _priority_cycle(self) -> Iterable[Priority]:
        """Priorities in weighted-round-robin order: classes with credit
        left first (most credit wins, urgency breaks ties), exhausted
        classes last so nothing blocks when the credited ones are empty."""
        return sorted(Priority,
                      key=lambda p: (-self._credits[p], p.value))

    def pop_eligible(self, now: float,
                     eligible: Callable[[QueueEntry], bool]) -> QueueEntry | None:
        """Remove and return the next dispatchable entry, or ``None``.

        Scans priorities in WRR order and entries in EDF order, skipping
        entries still in retry backoff (``not_before > now``) or failing
        the dispatcher's ``eligible`` predicate (tenant caps, budget fit).
        """
        for p in self._priority_cycle():
            entries = self._queues[p]
            for i, entry in enumerate(entries):
                if entry.not_before > now:
                    continue
                if not eligible(entry):
                    continue
                self._credits[p] -= 1
                if all(c <= 0 for c in self._credits.values()):
                    self._credits = dict(self.weights)
                return self._remove_at(p, i)
        return None

    def pop_where(self, predicate: Callable[[QueueEntry], bool]) -> list[QueueEntry]:
        """Remove and return every queued entry matching ``predicate``
        (deadline expiry sweeps, shutdown drains, client cancels)."""
        removed: list[QueueEntry] = []
        for p in Priority:
            entries = self._queues[p]
            keep_e, keep_k = [], []
            for entry, key in zip(entries, self._keys[p]):
                if predicate(entry):
                    removed.append(entry)
                else:
                    keep_e.append(entry)
                    keep_k.append(key)
            self._queues[p] = keep_e
            self._keys[p] = keep_k
        return removed
