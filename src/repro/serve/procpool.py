"""Process worker backend: true multi-core serving over a shared graph.

``QueryService(pool="process")`` swaps each worker thread's in-process
:class:`~repro.serve.service.Executor` for a :class:`RemoteExecutor`
fronting one long-lived child **process** — the BENU shape (PAPERS.md):
k independent compute processes against one read-only copy of the data
graph in POSIX shared memory (:mod:`repro.core.shm`).  Threads keep the
queueing, admission and delivery machinery (cheap, IO-ish, lock-bound);
children do the enumeration compute, so wall-clock throughput scales
with cores instead of saturating at the GIL.

Protocol (one duplex pipe per worker, strictly request/reply):

* parent ships a picklable :class:`WorkerTask` — stripped requests +
  patterns, the :class:`~repro.core.shm.SharedGraphHandle`, the
  shared-memory ownership array for the request's cluster shape, the
  absolute wall-clock deadline (``CLOCK_MONOTONIC`` is system-wide on
  Linux, so absolute deadlines are valid cross-process) and the armed
  crash point, tagged with a **generation** number;
* the child attaches the graph (zero-copy), runs the exact same
  ``Executor.execute``/``execute_group`` code path the thread backend
  runs, and replies ``("ok" | "cancelled" | "failed", generation,
  payload)``;
* cooperative cancellation crosses the boundary through a shared int
  cell: the parent writes the task's generation into the cell, the
  child's :class:`_SharedCellToken` observes it at the scheduler's poll
  point and aborts — stale writes for earlier generations are ignored;
* an injected :class:`WorkerCrashError` makes the child ``os._exit``
  without replying — genuine process death.  The parent detects the
  corpse (EOF / liveness probe), raises ``WorkerCrashError`` into the
  worker thread, and the dispatcher's existing reap/respawn/requeue
  path recovers the query with exactly-once delivery intact.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
from ctypes import c_long
from dataclasses import dataclass, replace

from ..cluster.cost import CostModel
from ..cluster.errors import QueryCancelledError, ReproError
from ..core.cancel import CancelToken
from ..core.engine import EngineConfig
from ..core.shm import SharedArraySpec, SharedGraphHandle, SharedGraphStore
from ..graph.graph import Graph
from ..query.pattern import QueryGraph
from .plancache import PlanCache
from .request import QueryRequest
from .service import Executor, WorkerCrashError, _Worker

__all__ = ["ProcessWorkerPool", "ProcessWorker", "RemoteExecutor",
           "WorkerTask", "RemoteWorkerError"]

#: child exit code for a simulated hard crash (diagnostic only; the
#: parent keys off process death, not the code)
_CRASH_EXIT = 13


class RemoteWorkerError(ReproError):
    """A child-process failure whose original exception does not pickle;
    carries the formatted ``TypeName: message`` string instead."""


@dataclass(frozen=True)
class WorkerTask:
    """One unit of work shipped to a worker process (picklable)."""

    kind: str
    """``"solo"`` (one request) or ``"group"`` (a share group)."""

    generation: int
    """Per-host monotonic task id; the cancel cell carries the generation
    being cancelled so stale writes never abort a later task."""

    requests: tuple[QueryRequest, ...]
    patterns: tuple[QueryGraph, ...]
    graph: SharedGraphHandle
    owner: SharedArraySpec | None
    """Shared-memory ownership array for the requests' cluster shape."""

    deadline: float | None
    """Absolute ``time.monotonic`` deadline (system-wide clock)."""

    crash_after: int | None
    """Injected-crash poll count (fault-injection tests), if armed."""


def _strip_request(req: QueryRequest) -> QueryRequest:
    """Drop the per-attempt cancellation token from a request's config —
    tokens hold no spawn-safe state and the child builds its own."""
    cfg = req.config
    if cfg is not None and cfg.cancellation is not None:
        req = replace(req, config=replace(cfg, cancellation=None))
    return req


def _portable_exc(exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a
    :class:`RemoteWorkerError` carrying its formatted form."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RemoteWorkerError(f"{type(exc).__name__}: {exc}")


class _SharedCellToken(CancelToken):
    """Child-side cancellation token backed by the host's shared cell.

    The parent relays a cancel by writing the task's generation into the
    cell; the token observes it at the next scheduler poll.  Deadlines
    fire locally off the same system-wide monotonic clock the parent
    used to compute them.  An armed ``crash_after`` raises
    :class:`WorkerCrashError` through the poll point exactly as the
    thread backend's ``_AttemptToken`` does.
    """

    __slots__ = ("_cell", "_generation", "_crash_after")

    def __init__(self, cell, generation: int, deadline: float | None = None,
                 crash_after: int | None = None):
        super().__init__(deadline=deadline)
        self._cell = cell
        self._generation = generation
        self._crash_after = crash_after

    def on_poll(self) -> None:
        if self._crash_after is not None and self.polls >= self._crash_after:
            self._crash_after = None
            raise WorkerCrashError("injected worker crash")
        if self._cell.value == self._generation:
            self.cancel("cancelled")


def _worker_main(wid: int, conn, cell,
                 default_config: EngineConfig | None,
                 cost: CostModel | None, plan_capacity: int) -> None:
    """Child process main loop: attach, execute, reply — forever."""
    executor = Executor(plan_cache=PlanCache(plan_capacity),
                        default_config=default_config, cost=cost)
    owners: dict[tuple[str, int, int], SharedArraySpec] = {}

    def provider(req: QueryRequest):
        spec = owners.get((req.dataset, req.num_machines, req.partition_seed))
        return spec.attach() if spec is not None else None

    executor.partition_provider = provider
    conn.send(("ready", -1, os.getpid()))
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return  # parent died or closed the pipe: quiet exit
        if task is None:
            return  # polite shutdown
        gen = task.generation
        try:
            graph = task.graph.attach()
            if task.owner is not None:
                req0 = task.requests[0]
                owners[(req0.dataset, req0.num_machines,
                        req0.partition_seed)] = task.owner
            token = _SharedCellToken(cell, gen, deadline=task.deadline,
                                     crash_after=task.crash_after)
            if task.kind == "solo":
                payload = executor.execute(task.requests[0], graph,
                                           task.patterns[0], token=token)
            else:
                payload = executor.execute_group(
                    list(task.requests), graph, list(task.patterns),
                    token=token)
            conn.send(("ok", gen, payload))
        except WorkerCrashError:
            # simulated hard death: no reply, no cleanup — the parent
            # must recover from genuine process loss
            os._exit(_CRASH_EXIT)
        except QueryCancelledError as exc:
            conn.send(("cancelled", gen, exc.reason))
        except BaseException as exc:  # noqa: BLE001 - process boundary
            conn.send(("failed", gen, _portable_exc(exc)))


class ProcessHost:
    """Parent-side handle on one worker process: pipe, cancel cell,
    liveness, zombie reaping."""

    def __init__(self, ctx, wid: int, default_config: EngineConfig | None,
                 cost: CostModel | None, plan_capacity: int):
        self.wid = wid
        self.conn, child_conn = ctx.Pipe(duplex=True)
        #: shared cancel cell: holds the generation being cancelled
        self.cell = ctx.Value(c_long, 0, lock=False)
        self.generation = 0
        self.disposed = False
        self._ready = False
        self.proc = ctx.Process(
            target=_worker_main,
            args=(wid, child_conn, self.cell, default_config, cost,
                  plan_capacity),
            name=f"repro-serve-proc{wid}", daemon=True)
        self.proc.start()
        child_conn.close()

    @property
    def pid(self) -> int:
        return self.proc.pid

    def _handle_oob(self, msg) -> None:
        if msg[0] == "ready":
            self._ready = True

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the child has imported and sent its hello."""
        deadline = time.monotonic() + timeout
        while not self._ready:
            if not self.proc.is_alive():
                raise WorkerCrashError(
                    f"worker process {self.wid} died during startup")
            try:
                if self.conn.poll(0.05):
                    self._handle_oob(self.conn.recv())
            except (EOFError, OSError):
                raise WorkerCrashError(
                    f"worker process {self.wid} died during startup")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"worker process {self.wid} not ready in {timeout}s")

    def run(self, task: WorkerTask, parent_token: CancelToken | None):
        """Ship one task and block for its reply, relaying cancellation
        and watching for process death.

        Raises :class:`WorkerCrashError` if the child dies before
        replying; otherwise returns the ``(tag, generation, payload)``
        message.
        """
        self.generation += 1
        gen = self.generation
        task = replace(task, generation=gen)
        try:
            self.conn.send(task)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashError(
                f"worker process {self.wid} (pid {self.pid}) is gone: "
                f"{exc}") from None
        relayed = False
        while True:
            try:
                if self.conn.poll(0.02):
                    msg = self.conn.recv()
                    if msg[0] == "ready":
                        self._handle_oob(msg)
                        continue
                    if msg[1] != gen:
                        continue  # stale reply from an abandoned attempt
                    return msg
            except (EOFError, OSError):
                raise WorkerCrashError(
                    f"worker process {self.wid} (pid {self.pid}) died "
                    "mid-query") from None
            if not self.proc.is_alive():
                # drain a reply that raced the death notification
                try:
                    if self.conn.poll(0.2):
                        msg = self.conn.recv()
                        if msg[0] != "ready" and msg[1] == gen:
                            return msg
                except (EOFError, OSError):
                    pass
                raise WorkerCrashError(
                    f"worker process {self.wid} (pid {self.pid}) died "
                    "mid-query")
            if (parent_token is not None and not relayed
                    and parent_token.cancelled):
                # relay: the child's token sees the cell at its next poll
                self.cell.value = gen
                relayed = True

    def dispose(self) -> None:
        """Shut the child down and reap it (idempotent)."""
        if self.disposed:
            return
        self.disposed = True
        try:
            self.conn.send(None)
        except Exception:
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)
        try:
            self.conn.close()
        except Exception:
            pass


class RemoteExecutor:
    """Drop-in for :class:`~repro.serve.service.Executor` that forwards
    execution to a worker process.

    Same call signatures, same exception surface: engine errors re-raise
    with their original type (when picklable), cancellations surface as
    :class:`QueryCancelledError` with the parent token's reason, and
    process death raises :class:`WorkerCrashError` so the dispatcher's
    thread-backend recovery path applies unchanged.
    """

    def __init__(self, service, host: ProcessHost):
        self.service = service
        self.host = host

    def _task(self, kind: str, reqs: list[QueryRequest], graph: Graph,
              patterns: list[QueryGraph],
              token: CancelToken | None) -> WorkerTask:
        svc = self.service
        req0 = reqs[0]
        store: SharedGraphStore = svc._procpool.store
        version = svc._graph_versions.get(req0.dataset, 0)
        return WorkerTask(
            kind=kind, generation=0,
            requests=tuple(_strip_request(r) for r in reqs),
            patterns=tuple(patterns),
            graph=store.handle(req0.dataset, graph, version=version),
            owner=store.owner_spec(req0.dataset, graph, req0.num_machines,
                                   req0.partition_seed, version=version),
            deadline=getattr(token, "deadline", None),
            crash_after=getattr(token, "_crash_after", None))

    def _dispatch(self, kind: str, reqs: list[QueryRequest], graph: Graph,
                  patterns: list[QueryGraph], token: CancelToken | None):
        task = self._task(kind, reqs, graph, patterns, token)
        try:
            tag, _gen, payload = self.host.run(task, token)
        except WorkerCrashError:
            if (task.crash_after is not None
                    and self.service.injector is not None):
                # the injected crash fired inside the child, which cannot
                # reach the parent's injector; account for it here
                self.service.injector.fired()
            raise
        if tag == "cancelled":
            reason = payload
            if (token is not None and token.cancelled
                    and reason == "cancelled"):
                # the child only sees a generic shared flag; the parent
                # token knows why the cancel was requested
                reason = token.reason
            raise QueryCancelledError(reason)
        if tag == "failed":
            raise payload
        return payload

    def execute(self, req: QueryRequest, graph: Graph, pattern: QueryGraph,
                token: CancelToken | None = None):
        return self._dispatch("solo", [req], graph, [pattern], token)

    def execute_group(self, reqs: list[QueryRequest], graph: Graph,
                      patterns: list[QueryGraph],
                      plan_keys: list[tuple] | None = None,
                      token: CancelToken | None = None):
        # plan_keys are parent-cache keys; the child recomputes its own
        return self._dispatch("group", list(reqs), graph, list(patterns),
                              token)


class ProcessWorker(_Worker):
    """A pool worker whose compute runs in a child process."""

    backend = "process"

    def _make_executor(self, service) -> RemoteExecutor:
        self.host = service._procpool.new_host(self.wid)
        return RemoteExecutor(service, self.host)

    @property
    def pid(self) -> int:
        return self.host.pid

    def wait_ready(self, timeout: float = 30.0) -> None:
        self.host.wait_ready(timeout)

    def dispose(self) -> None:
        self.host.dispose()


class ProcessWorkerPool:
    """Owns the process backend's shared state: the spawn context, the
    shared-memory graph store, and every child host ever created (so
    crashed corpses are still reaped and segments unlinked once)."""

    def __init__(self, service):
        self.service = service
        self.ctx = mp.get_context("spawn")
        self.store = SharedGraphStore()
        self._hosts: list[ProcessHost] = []
        self.closed = False

    def new_host(self, wid: int) -> ProcessHost:
        if self.closed:
            raise RuntimeError("process pool is closed")
        svc = self.service
        host = ProcessHost(self.ctx, wid, svc.default_config, svc.cost,
                           svc.plan_cache.capacity)
        self._hosts.append(host)
        return host

    def close(self) -> None:
        """Dispose every host (idempotent), then unlink all shared
        memory exactly once."""
        if self.closed:
            return
        self.closed = True
        for host in self._hosts:
            host.dispose()
        self.store.close()
