"""Canonical-form plan cache.

Algorithm 1 (the optimiser) is pure: its output depends only on the
pattern's *shape*, the data graph's statistics (through the cardinality
estimator) and the cluster size.  The service therefore plans each
pattern's **canonical form** (:meth:`QueryGraph.canonical_form`) and
caches the resulting :class:`~repro.core.plan.physical.ExecutionPlan`
keyed by::

    (canonical pattern key, dataset handle, |V_G|, |E_G|, num_machines)

so two isomorphic patterns — however their vertices are numbered — hit
the same entry, and a dataset swap or cluster resize misses as it must.
Plans are immutable at execution time (``translate`` builds fresh
operator state per run), so one cached plan can back many concurrent
executions.

The cache is a lock-guarded LRU; hit/miss/eviction counters feed the
service metrics snapshot (the paper-style "cache hit rate" of the
serving tier).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..core.plan.physical import ExecutionPlan
from ..graph.graph import Graph

__all__ = ["PlanCacheStats", "PlanCache"]


class PlanCacheStats:
    """Thread-safe hit/miss/eviction counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "inserts": self.inserts,
                "hit_rate": self.hit_rate}


class PlanCache:
    """LRU cache of canonical-form execution plans."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, ExecutionPlan] = OrderedDict()

    @staticmethod
    def key(canonical_key: str, dataset: str, graph: Graph,
            num_machines: int) -> tuple:
        """Cache key: canonical pattern × graph stats × cluster shape."""
        return (canonical_key, dataset, graph.num_vertices, graph.num_edges,
                num_machines)

    def get(self, key: tuple) -> ExecutionPlan | None:
        """Look up a plan, refreshing its recency."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                with self.stats._lock:
                    self.stats.misses += 1
                return None
            self._plans.move_to_end(key)
        with self.stats._lock:
            self.stats.hits += 1
        return plan

    def put(self, key: tuple, plan: ExecutionPlan) -> None:
        """Insert a plan, evicting the least recently used beyond capacity."""
        with self._lock:
            if key not in self._plans and len(self._plans) >= self.capacity:
                self._plans.popitem(last=False)
                with self.stats._lock:
                    self.stats.evictions += 1
            self._plans[key] = plan
            self._plans.move_to_end(key)
        with self.stats._lock:
            self.stats.inserts += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
