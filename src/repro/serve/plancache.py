"""Canonical-form plan cache.

Algorithm 1 (the optimiser) is pure: its output depends only on the
pattern's *shape*, the data graph's statistics (through the cardinality
estimator) and the cluster size.  The service therefore plans each
pattern's **canonical form** (:meth:`QueryGraph.canonical_form`) and
caches the resulting :class:`~repro.core.plan.physical.ExecutionPlan`
keyed by::

    (canonical pattern key, dataset handle, |V_G|, |E_G|, num_machines)

so two isomorphic patterns — however their vertices are numbered — hit
the same entry, and a dataset swap or cluster resize misses as it must.
Plans are immutable at execution time (``translate`` builds fresh
operator state per run), so one cached plan can back many concurrent
executions.

Alongside each plan the cache can hold its **prefix signature** — the
tuple of frozen operator specs from ``translate()`` that the sharing
layer (:mod:`repro.serve.sharing`) compares to find common star-scan /
PULL-EXTEND prefixes across concurrently queued requests.  Signatures
ride the same LRU entry so they are evicted together with their plan.

The cache is a lock-guarded LRU; hit/miss/eviction counters feed the
service metrics snapshot (the paper-style "cache hit rate" of the
serving tier).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..core.plan.physical import ExecutionPlan
from ..graph.graph import Graph

__all__ = ["PlanCacheStats", "PlanCache"]


class PlanCacheStats:
    """Thread-safe hit/miss/eviction counters.

    Every read goes through the stats lock: an unlocked ``as_dict`` can
    observe a torn snapshot (a ``hits`` increment without the matching
    recency move, or mid-update ``inserts``/``evictions``), which the
    concurrent-hammer regression test exercises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0
        self.overwrites = 0

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions, "inserts": self.inserts,
                    "overwrites": self.overwrites,
                    "hit_rate": self.hits / total if total else 0.0}


class PlanCache:
    """LRU cache of canonical-form execution plans (+ prefix signatures)."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._lock = threading.Lock()
        # key -> (plan, prefix signature | None)
        self._plans: OrderedDict[tuple, tuple] = OrderedDict()

    @staticmethod
    def key(canonical_key: str, dataset: str, graph: Graph,
            num_machines: int) -> tuple:
        """Cache key: canonical pattern × graph stats × cluster shape."""
        return (canonical_key, dataset, graph.num_vertices, graph.num_edges,
                num_machines)

    def get(self, key: tuple) -> ExecutionPlan | None:
        """Look up a plan, refreshing its recency."""
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                with self.stats._lock:
                    self.stats.misses += 1
                return None
            self._plans.move_to_end(key)
        with self.stats._lock:
            self.stats.hits += 1
        return entry[0]

    def signature(self, key: tuple):
        """The cached prefix signature for ``key``, or ``None``.

        Does not touch hit/miss counters or recency — signature lookups
        are a sharing-layer side channel, not plan-cache traffic.
        """
        with self._lock:
            entry = self._plans.get(key)
            return entry[1] if entry is not None else None

    def put(self, key: tuple, plan: ExecutionPlan,
            signature=None) -> None:
        """Insert a plan, evicting the least recently used beyond capacity.

        Overwriting an existing key counts as an ``overwrite``, not a
        fresh ``insert`` — concurrent executors racing the same miss
        used to inflate ``inserts`` past the number of distinct plans.
        """
        with self._lock:
            fresh = key not in self._plans
            if fresh and len(self._plans) >= self.capacity:
                self._plans.popitem(last=False)
                with self.stats._lock:
                    self.stats.evictions += 1
            if not fresh and signature is None:
                # keep an already-attached signature on plain overwrites
                signature = self._plans[key][1]
            self._plans[key] = (plan, signature)
            self._plans.move_to_end(key)
        with self.stats._lock:
            if fresh:
                self.stats.inserts += 1
            else:
                self.stats.overwrites += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
