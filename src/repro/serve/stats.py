"""Service-level metrics: counters, latency recorders, snapshots.

The serving tier reports wall-clock observables — queue depth, admission
counters, plan-cache hit rate, and latency distributions (p50/p95/p99)
for queue wait, execution, and end-to-end latency — alongside the
simulated per-query metrics the engine already produces.  Snapshots are
plain dataclasses with ``as_dict`` so the CLI, the load driver and
``bench_serving.py`` all serialise the same shape.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["percentile", "LatencyRecorder", "ServiceStats"]


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    ``values`` must be sorted ascending; empty input gives 0.0.
    """
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    rank = (q / 100.0) * (len(values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(values) - 1)
    frac = rank - lo
    return values[lo] * (1.0 - frac) + values[hi] * frac


class LatencyRecorder:
    """Bounded reservoir of latency samples with percentile snapshots."""

    def __init__(self, max_samples: int = 10_000):
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._max = max_samples
        self.count = 0
        self.total = 0.0

    def add(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            if len(self._samples) < self._max:
                self._samples.append(seconds)
            else:
                # deterministic decimating reservoir: overwrite round-robin
                self._samples[self.count % self._max] = seconds

    def snapshot(self) -> dict:
        """``{count, mean_s, p50_s, p95_s, p99_s, max_s}``."""
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self.count, self.total
        return {
            "count": count,
            "mean_s": total / count if count else 0.0,
            "p50_s": percentile(ordered, 50.0),
            "p95_s": percentile(ordered, 95.0),
            "p99_s": percentile(ordered, 99.0),
            "max_s": ordered[-1] if ordered else 0.0,
        }


@dataclass
class ServiceStats:
    """One point-in-time snapshot of the service (``QueryService.stats``)."""

    submitted: int = 0
    completed: int = 0
    cancelled: int = 0
    failed: int = 0
    rejected: int = 0
    retries: int = 0
    worker_crashes: int = 0
    delivery_violations: int = 0
    inflight: int = 0
    queue_depth: dict = field(default_factory=dict)
    reserved_bytes: float = 0.0
    budget_bytes: float = float("inf")
    admission: dict = field(default_factory=dict)
    plan_cache: dict = field(default_factory=dict)
    latency: dict = field(default_factory=dict)
    queue_wait: dict = field(default_factory=dict)
    execute: dict = field(default_factory=dict)
    uptime_s: float = 0.0

    @property
    def throughput_qps(self) -> float:
        """Completed queries per wall-clock second of service uptime."""
        return self.completed / self.uptime_s if self.uptime_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "rejected": self.rejected,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "delivery_violations": self.delivery_violations,
            "inflight": self.inflight,
            "queue_depth": dict(self.queue_depth),
            "reserved_bytes": self.reserved_bytes,
            "budget_bytes": (None if self.budget_bytes == float("inf")
                             else self.budget_bytes),
            "admission": dict(self.admission),
            "plan_cache": dict(self.plan_cache),
            "latency": dict(self.latency),
            "queue_wait": dict(self.queue_wait),
            "execute": dict(self.execute),
            "uptime_s": self.uptime_s,
            "throughput_qps": self.throughput_qps,
        }
