"""Service-level metrics: counters, latency recorders, snapshots.

The serving tier reports wall-clock observables — queue depth, admission
counters, plan-cache hit rate, and latency distributions (p50/p95/p99)
for queue wait, execution, and end-to-end latency — alongside the
simulated per-query metrics the engine already produces.  Snapshots are
plain dataclasses with ``as_dict`` so the CLI, the load driver and
``bench_serving.py`` all serialise the same shape.

:class:`LatencyRecorder` is backed by the shared
:class:`~repro.obs.metrics.Histogram` type (log buckets for exposition,
plus the recorder's historical deterministic round-robin reservoir for
exact percentiles); its ``snapshot()`` dict shape — and therefore the
``BENCH_serving.json`` schema — is unchanged and pinned by a regression
test.  Pass ``histogram=`` to share one registered in a
:class:`~repro.obs.metrics.MetricsRegistry`, so the same samples serve
both the snapshot dicts and the Prometheus exposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import Histogram

__all__ = ["percentile", "LatencyRecorder", "ServiceStats"]


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    ``values`` must be sorted ascending (guarded: unsorted input raises
    ``ValueError`` rather than silently returning nonsense); ``q``
    outside [0, 100] raises too.  Empty input gives 0.0.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if not values:
        return 0.0
    if any(b < a for a, b in zip(values, values[1:])):
        raise ValueError("percentile() requires ascending-sorted input")
    if len(values) == 1:
        return values[0]
    rank = (q / 100.0) * (len(values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(values) - 1)
    frac = rank - lo
    return values[lo] * (1.0 - frac) + values[hi] * frac


class LatencyRecorder:
    """Latency samples over a shared histogram, with percentile snapshots.

    The histogram keeps a bounded deterministic reservoir (round-robin
    overwrite — sample ``i`` of the stream lands in slot ``i mod
    capacity``) for exact percentiles, exactly the retention policy this
    recorder has always had.
    """

    def __init__(self, max_samples: int = 10_000,
                 histogram: Histogram | None = None):
        if histogram is None:
            histogram = Histogram("latency_seconds",
                                  "standalone latency recorder",
                                  time_base="wall", reservoir=max_samples)
        elif not histogram.reservoir:
            raise ValueError("LatencyRecorder needs a histogram with a "
                             "reservoir (exact percentiles)")
        self._hist = histogram
        self._child = histogram.labels() if not histogram.labelnames \
            else None
        if self._child is None:
            raise ValueError("LatencyRecorder histograms must be unlabelled")

    @property
    def count(self) -> int:
        return self._child.count

    @property
    def total(self) -> float:
        return self._child.sum

    def add(self, seconds: float) -> None:
        self._hist.observe_child(self._child, seconds)

    def snapshot(self) -> dict:
        """``{count, mean_s, p50_s, p95_s, p99_s, max_s}``."""
        with self._hist._lock:
            ordered = sorted(self._child.samples)
            count, total = self._child.count, self._child.sum
        return {
            "count": count,
            "mean_s": total / count if count else 0.0,
            "p50_s": percentile(ordered, 50.0),
            "p95_s": percentile(ordered, 95.0),
            "p99_s": percentile(ordered, 99.0),
            "max_s": ordered[-1] if ordered else 0.0,
        }


@dataclass
class ServiceStats:
    """One point-in-time snapshot of the service (``QueryService.stats``)."""

    submitted: int = 0
    completed: int = 0
    cancelled: int = 0
    failed: int = 0
    rejected: int = 0
    retries: int = 0
    worker_crashes: int = 0
    delivery_violations: int = 0
    inflight: int = 0
    queue_depth: dict = field(default_factory=dict)
    reserved_bytes: float = 0.0
    budget_bytes: float = float("inf")
    admission: dict = field(default_factory=dict)
    plan_cache: dict = field(default_factory=dict)
    shared_groups: int = 0
    shared_requests: int = 0
    result_cache_hits: int = 0
    result_cache: dict = field(default_factory=dict)
    latency: dict = field(default_factory=dict)
    queue_wait: dict = field(default_factory=dict)
    execute: dict = field(default_factory=dict)
    uptime_s: float = 0.0

    @property
    def throughput_qps(self) -> float:
        """Completed queries per wall-clock second of service uptime."""
        return self.completed / self.uptime_s if self.uptime_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "rejected": self.rejected,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "delivery_violations": self.delivery_violations,
            "inflight": self.inflight,
            "queue_depth": dict(self.queue_depth),
            "reserved_bytes": self.reserved_bytes,
            "budget_bytes": (None if self.budget_bytes == float("inf")
                             else self.budget_bytes),
            "admission": dict(self.admission),
            "plan_cache": dict(self.plan_cache),
            "shared_groups": self.shared_groups,
            "shared_requests": self.shared_requests,
            "result_cache_hits": self.result_cache_hits,
            "result_cache": dict(self.result_cache),
            "latency": dict(self.latency),
            "queue_wait": dict(self.queue_wait),
            "execute": dict(self.execute),
            "uptime_s": self.uptime_s,
            "throughput_qps": self.throughput_qps,
        }
