"""Tenant-aware result cache with ledger-accounted capacity.

Caches *final answers* — the symmetry-broken match count and (when the
producing request collected) the matches in canonical vertex order —
keyed on everything that determines them::

    (canonical pattern key, dataset, graph version, tenant,
     num_machines, workers_per_machine, partition_seed, config fp)

The **graph version** is bumped by ``QueryService.register_dataset``
whenever a dataset is (re-)registered, so stale results become
unreachable the moment the data changes; :meth:`ResultCache.invalidate`
additionally drops them eagerly (explicit invalidation).  The **tenant**
is part of the key: tenants never observe each other's cached results,
even for identical queries — a tenant-isolation property the tests pin.

Capacity is accounted in *bytes through the admission ledger*: every
resident entry holds an ``AdmissionController.reserve_cache``
reservation, so cached results and in-flight queries compete for the
same global memory budget and the drained-ledger oracle covers both.
Insertion evicts least-recently-used entries until the newcomer fits;
an entry larger than the whole capacity is simply not cached.

Matches are stored in **canonical** vertex order (the order the shared
canonical plan produces); the service remaps them to each request's own
vertex numbering at delivery time, exactly as the executor does for a
fresh run — so a cache hit is bit-identical to a solo execution of the
same request.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["ResultCacheStats", "CachedResult", "ResultCache"]

#: accounted per-entry bookkeeping overhead, in bytes
_ENTRY_OVERHEAD = 256
#: accounted bytes per stored match-tuple element
_BYTES_PER_ID = 28  # a small python int


class ResultCacheStats:
    """Thread-safe counters; snapshots are taken under the lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.invalidations = 0
        self.uncacheable = 0

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {"hits": self.hits, "misses": self.misses,
                    "inserts": self.inserts, "evictions": self.evictions,
                    "invalidations": self.invalidations,
                    "uncacheable": self.uncacheable,
                    "hit_rate": self.hits / total if total else 0.0}


class CachedResult:
    """One cached answer (count + optional canonical-order matches)."""

    __slots__ = ("count", "matches", "nbytes", "dataset", "tenant")

    def __init__(self, count: int, matches: list | None,
                 dataset: str, tenant: str):
        self.count = count
        self.matches = matches
        self.dataset = dataset
        self.tenant = tenant
        ids = sum(len(m) for m in matches) if matches else 0
        self.nbytes = float(_ENTRY_OVERHEAD + ids * _BYTES_PER_ID)


class ResultCache:
    """LRU result cache whose resident bytes live in the admission ledger."""

    def __init__(self, capacity_bytes: float, ledger=None):
        if capacity_bytes <= 0:
            raise ValueError("result cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.ledger = ledger
        self.stats = ResultCacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CachedResult] = OrderedDict()
        self._resident = 0.0

    @staticmethod
    def key(canonical_key: str, dataset: str, graph_version: int,
            tenant: str, num_machines: int, workers_per_machine: int,
            partition_seed: int, config_fp: str) -> tuple:
        return (canonical_key, dataset, graph_version, tenant, num_machines,
                workers_per_machine, partition_seed, config_fp)

    @property
    def resident_bytes(self) -> float:
        with self._lock:
            return self._resident

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple, need_matches: bool = False) -> CachedResult | None:
        """Look up a cached answer, refreshing recency.

        ``need_matches=True`` (a collecting request) misses on count-only
        entries — they cannot serve the matches the client asked for.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or (need_matches and entry.matches is None):
                with self.stats._lock:
                    self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
        with self.stats._lock:
            self.stats.hits += 1
        return entry

    def _drop(self, key: tuple, counter: str) -> None:
        """Remove one entry (lock held) and release its reservation."""
        entry = self._entries.pop(key)
        self._resident -= entry.nbytes
        with self.stats._lock:
            setattr(self.stats, counter,
                    getattr(self.stats, counter) + 1)
        if self.ledger is not None:
            self.ledger.release_cache(entry.nbytes)

    def put(self, key: tuple, count: int, matches: list | None,
            dataset: str, tenant: str) -> bool:
        """Insert an answer, evicting LRU entries until it fits.

        Returns ``False`` (and counts ``uncacheable``) when the entry
        alone exceeds the whole capacity.  Overwrites keep the newer
        answer (a matches-carrying entry upgrades a count-only one).
        """
        entry = CachedResult(count, matches, dataset, tenant)
        if entry.nbytes > self.capacity_bytes:
            with self.stats._lock:
                self.stats.uncacheable += 1
            return False
        with self._lock:
            if key in self._entries:
                old = self._entries[key]
                if old.matches is not None and matches is None:
                    # never downgrade a collected entry to count-only
                    self._entries.move_to_end(key)
                    return True
                self._drop(key, "evictions")
            while self._resident + entry.nbytes > self.capacity_bytes:
                oldest = next(iter(self._entries))
                self._drop(oldest, "evictions")
            self._entries[key] = entry
            self._resident += entry.nbytes
            with self.stats._lock:
                self.stats.inserts += 1
            if self.ledger is not None:
                # inside the cache lock so a racing invalidate cannot
                # release this reservation before it is taken
                self.ledger.reserve_cache(entry.nbytes)
        return True

    def invalidate(self, dataset: str | None = None,
                   tenant: str | None = None) -> int:
        """Eagerly drop entries matching the filters (both ``None`` =
        everything); returns how many were dropped."""
        with self._lock:
            victims = [k for k, e in self._entries.items()
                       if (dataset is None or e.dataset == dataset)
                       and (tenant is None or e.tenant == tenant)]
            for k in victims:
                self._drop(k, "invalidations")
        return len(victims)

    def clear(self) -> int:
        """Drop everything (service shutdown: the ledger must drain)."""
        return self.invalidate()
