"""Registry instrumentation for the serving tier.

One :class:`ServiceInstruments` per :class:`~repro.serve.service.QueryService`
holds the pre-resolved metric handles the service's hot paths update —
admission decisions by reason, per-priority queue depth, plan-cache
outcomes, per-tenant submit/complete counters, worker crashes and
retries, and the three wall-clock latency histograms.  The latency
histograms double as the backing store of the service's
:class:`~repro.serve.stats.LatencyRecorder`\\ s, so the ``snapshot()``
percentile dicts and the Prometheus exposition report the same samples.

Everything here is observational: a service constructed without a
registry takes none of these code paths and behaves byte-identically to
one built before this module existed.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry

__all__ = ["ServiceInstruments"]


class ServiceInstruments:
    """Pre-resolved metric handles for one service instance."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.submitted = registry.counter(
            "serve_submitted_total", "requests submitted", ("tenant",))
        self.completed = registry.counter(
            "serve_completed_total", "requests completed", ("tenant",))
        self.requests = registry.counter(
            "serve_requests_total", "terminal request outcomes", ("status",))
        self.admission = registry.counter(
            "serve_admission_total", "admission decisions",
            ("decision", "reason"))
        self.queue_depth = registry.gauge(
            "serve_queue_depth", "queued requests per priority class",
            ("priority",))
        self.inflight = registry.gauge(
            "serve_inflight", "requests currently executing")
        self.reserved_bytes = registry.gauge(
            "serve_reserved_bytes", "admission ledger reservation")
        self.plan_cache = registry.counter(
            "serve_plan_cache_total", "canonical plan-cache lookups",
            ("result",))
        self.result_cache = registry.counter(
            "serve_result_cache_total", "result-cache lookups", ("result",))
        self.share_group = registry.histogram(
            "serve_share_group_size",
            "requests per dispatched share group", reservoir=10_000)
        self.crashes = registry.counter(
            "serve_worker_crashes_total",
            "workers lost mid-query, by pool backend", ("backend",))
        self.retries = registry.counter(
            "serve_retries_total", "crash-recovery requeues, by pool backend",
            ("backend",))
        self.deadline_missed = registry.counter(
            "serve_deadline_missed_total",
            "requests cancelled for missing their deadline")
        self.latency = registry.histogram(
            "serve_latency_seconds", "end-to-end request latency",
            time_base="wall", reservoir=10_000)
        self.queue_wait = registry.histogram(
            "serve_queue_wait_seconds", "submit-to-dispatch wait",
            time_base="wall", reservoir=10_000)
        self.execute = registry.histogram(
            "serve_execute_seconds", "dispatch-to-completion execution time",
            time_base="wall", reservoir=10_000)
        self.stream_updates = registry.counter(
            "stream_updates_total", "graph update batches applied",
            ("dataset",))
        self.stream_deltas = registry.counter(
            "stream_deltas_emitted_total",
            "standing-subscription match deltas emitted, by sign", ("sign",))
        self.stream_subscriptions = registry.gauge(
            "stream_subscriptions", "active standing subscriptions")
        self.stream_batch_latency = registry.histogram(
            "stream_batch_latency_seconds",
            "per-subscription delta enumeration latency for one update batch",
            time_base="wall", reservoir=10_000)

    def observe_queue_depths(self, depths: dict[str, int]) -> None:
        for priority, depth in depths.items():
            self.queue_depth.set_child(self.queue_depth.labels(priority),
                                       depth)

    def admission_decision(self, decision: str, reason: str) -> None:
        self.admission.inc_child(self.admission.labels(decision, reason))

    def plan_cache_lookup(self, hit: bool) -> None:
        self.plan_cache.inc_child(
            self.plan_cache.labels("hit" if hit else "miss"))

    def result_cache_lookup(self, hit: bool) -> None:
        self.result_cache.inc_child(
            self.result_cache.labels("hit" if hit else "miss"))

    def observe_share_group(self, size: int) -> None:
        self.share_group.observe(float(size))

    def stream_update(self, dataset: str) -> None:
        self.stream_updates.inc_child(self.stream_updates.labels(dataset))

    def stream_batch(self, additions: int, retractions: int,
                     latency_s: float) -> None:
        if additions:
            self.stream_deltas.inc_child(self.stream_deltas.labels("+"),
                                         float(additions))
        if retractions:
            self.stream_deltas.inc_child(self.stream_deltas.labels("-"),
                                         float(retractions))
        self.stream_batch_latency.observe(latency_s)
