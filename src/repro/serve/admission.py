"""Admission control against a global memory budget.

The engine's Theorem 5.4 bounds one query's queue memory by
``O(|V_q|² · D_G)``: every operator queue holds at most its configured
capacity plus the expansion of one in-flight batch, each tuple at most
``|V_q|`` ids wide.  The serving tier turns that bound into an
**admission reservation**: before a query is dispatched, its worst-case
footprint (queue bound + cache reservation + PUSH-JOIN buffers, per
machine, times the simulated cluster size) is reserved against a global
budget; the reservation is released when the query reaches a terminal
state — completed, cancelled, failed, *or crashed mid-run* — so the
ledger provably drains back to zero (the serving memory oracle asserts
this).

A request whose bound exceeds the whole budget can never run and is
rejected at submission; one that merely does not fit *right now* waits
in the queue until enough reservations drain.
"""

from __future__ import annotations

import threading

from ..cluster.cost import CostModel
from ..core.engine import EngineConfig
from ..graph.graph import Graph

__all__ = ["AdmissionStats", "AdmissionController", "estimate_query_bytes"]


def estimate_query_bytes(pattern_vertices: int, graph: Graph,
                         config: EngineConfig, num_machines: int,
                         cost: CostModel | None = None) -> float:
    """Worst-case memory footprint of one query, in budget bytes.

    Mirrors the conformance memory oracle's Theorem 5.4 bound
    (:mod:`repro.testing.oracles`): per machine, every of the ≤ ``|V_q|²``
    operator queues holds at most ``queue_capacity + batch · D_G`` tuples
    of ≤ ``|V_q|`` ids, plus the configured constant reservations (cache
    capacity, PUSH-JOIN buffers — at most ``|V_q|`` joins).  Pure-BFS
    configurations (infinite queues) void the theorem's premise; their
    bound falls back to one batch's expansion per queue so they remain
    admittable, while their actual usage stays the engine's concern.
    """
    cost = cost or CostModel()
    q = max(1, pattern_vertices)
    deg = max(1, graph.max_degree)
    bpi = cost.bytes_per_id
    capacity = config.output_queue_capacity
    if capacity == float("inf"):
        capacity = 0.0  # BFS: the queue-capacity premise is off (see above)
    queue_ids = (q * q) * deg * (capacity + config.batch_size * deg)
    if config.cache_capacity_ids is not None:
        cache_ids = config.cache_capacity_ids
    else:
        graph_ids = 2 * graph.num_edges + graph.num_vertices
        cache_ids = max(1, int(config.cache_capacity_fraction * graph_ids))
    join_ids = q * 2 * config.join_buffer_tuples * q
    per_machine = (queue_ids + cache_ids + join_ids) * bpi
    return per_machine * num_machines


class AdmissionStats:
    """Counters for the admission controller (service metrics)."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self.releases = 0
        self.underflows = 0
        self.peak_reserved_bytes = 0.0

    def as_dict(self) -> dict:
        return {"admitted": self.admitted, "rejected": self.rejected,
                "releases": self.releases, "underflows": self.underflows,
                "peak_reserved_bytes": self.peak_reserved_bytes}


class AdmissionController:
    """Global memory-budget ledger for in-flight queries."""

    def __init__(self, budget_bytes: float = float("inf")):
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        self.budget_bytes = budget_bytes
        self.stats = AdmissionStats()
        self._lock = threading.Lock()
        self._reserved = 0.0

    @property
    def reserved_bytes(self) -> float:
        """Currently reserved bytes across all dispatched queries."""
        return self._reserved

    @property
    def available_bytes(self) -> float:
        return self.budget_bytes - self._reserved

    def admissible(self, nbytes: float) -> bool:
        """Whether a reservation of this size could *ever* be granted."""
        return nbytes <= self.budget_bytes

    def fits_now(self, nbytes: float) -> bool:
        """Whether the reservation fits the currently free budget."""
        return self._reserved + nbytes <= self.budget_bytes

    def try_reserve(self, nbytes: float) -> bool:
        """Atomically reserve ``nbytes`` if they fit; ``False`` otherwise."""
        if nbytes < 0:
            raise ValueError("reservation must be non-negative")
        with self._lock:
            if self._reserved + nbytes > self.budget_bytes:
                return False
            self._reserved += nbytes
            self.stats.admitted += 1
            if self._reserved > self.stats.peak_reserved_bytes:
                self.stats.peak_reserved_bytes = self._reserved
            return True

    def release(self, nbytes: float) -> None:
        """Return a reservation to the budget.

        Releasing more than is reserved indicates a double-release bug;
        like the engine's :meth:`Metrics.free` the balance is clamped but
        the violation is observable (``reserved_bytes`` would go negative
        otherwise — the serving oracle checks the drained ledger is 0).
        """
        with self._lock:
            if nbytes > self._reserved + 1e-6:
                self.stats.underflows += 1
            self._reserved = max(0.0, self._reserved - nbytes)
            self.stats.releases += 1
