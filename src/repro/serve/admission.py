"""Admission control against a global memory budget.

The engine's Theorem 5.4 bounds one query's queue memory by
``O(|V_q|² · D_G)``: every operator queue holds at most its configured
capacity plus the expansion of one in-flight batch, each tuple at most
``|V_q|`` ids wide.  The serving tier turns that bound into an
**admission reservation**: before a query is dispatched, its worst-case
footprint (queue bound + cache reservation + PUSH-JOIN buffers, per
machine, times the simulated cluster size) is reserved against a global
budget; the reservation is released when the query reaches a terminal
state — completed, cancelled, failed, *or crashed mid-run* — so the
ledger provably drains back to zero (the serving memory oracle asserts
this).

A request whose bound exceeds the whole budget can never run and is
rejected at submission; one that merely does not fit *right now* waits
in the queue until enough reservations drain.
"""

from __future__ import annotations

import threading

from ..cluster.cost import CostModel
from ..core.engine import EngineConfig
from ..graph.graph import Graph

__all__ = ["AdmissionStats", "AdmissionController", "estimate_query_bytes"]


def estimate_query_bytes(pattern_vertices: int, graph: Graph,
                         config: EngineConfig, num_machines: int,
                         cost: CostModel | None = None) -> float:
    """Worst-case memory footprint of one query, in budget bytes.

    Mirrors the conformance memory oracle's Theorem 5.4 bound
    (:mod:`repro.testing.oracles`): per machine, every of the ≤ ``|V_q|²``
    operator queues holds at most ``queue_capacity + batch · D_G`` tuples
    of ≤ ``|V_q|`` ids, plus the configured constant reservations (cache
    capacity, PUSH-JOIN buffers — at most ``|V_q|`` joins).  Pure-BFS
    configurations (infinite queues) void the theorem's premise; their
    bound falls back to one batch's expansion per queue so they remain
    admittable, while their actual usage stays the engine's concern.
    """
    cost = cost or CostModel()
    q = max(1, pattern_vertices)
    deg = max(1, graph.max_degree)
    bpi = cost.bytes_per_id
    capacity = config.output_queue_capacity
    if capacity == float("inf"):
        capacity = 0.0  # BFS: the queue-capacity premise is off (see above)
    # ≤ q² queues × (capacity + one batch's D_G-expansion) tuples, each
    # tuple at most |V_q| ids wide — the width factor is q, NOT deg
    # (a deg width overcharged high-degree graphs and undercharged
    # large patterns relative to the Theorem-5.4 oracle)
    queue_ids = (q * q) * q * (capacity + config.batch_size * deg)
    if config.cache_capacity_ids is not None:
        cache_ids = config.cache_capacity_ids
    else:
        graph_ids = 2 * graph.num_edges + graph.num_vertices
        cache_ids = max(1, int(config.cache_capacity_fraction * graph_ids))
    join_ids = q * 2 * config.join_buffer_tuples * q
    per_machine = (queue_ids + cache_ids + join_ids) * bpi
    return per_machine * num_machines


class AdmissionStats:
    """Counters for the admission controller (service metrics)."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self.releases = 0
        self.underflows = 0
        self.peak_reserved_bytes = 0.0

    def as_dict(self) -> dict:
        return {"admitted": self.admitted, "rejected": self.rejected,
                "releases": self.releases, "underflows": self.underflows,
                "peak_reserved_bytes": self.peak_reserved_bytes}


class AdmissionController:
    """Global memory-budget ledger for in-flight queries."""

    def __init__(self, budget_bytes: float = float("inf")):
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        self.budget_bytes = budget_bytes
        self.stats = AdmissionStats()
        self._lock = threading.Lock()
        self._reserved = 0.0
        self._cache_reserved = 0.0

    @property
    def reserved_bytes(self) -> float:
        """Currently reserved bytes across all dispatched queries."""
        return self._reserved

    @property
    def cache_reserved_bytes(self) -> float:
        """Portion of the ledger held by the result cache."""
        return self._cache_reserved

    @property
    def available_bytes(self) -> float:
        return self.budget_bytes - self._reserved

    def admissible(self, nbytes: float) -> bool:
        """Whether a reservation of this size could *ever* be granted."""
        return nbytes <= self.budget_bytes

    def fits_now(self, nbytes: float) -> bool:
        """Whether the reservation fits the currently free budget."""
        return self._reserved + nbytes <= self.budget_bytes

    def try_reserve(self, nbytes: float) -> bool:
        """Atomically reserve ``nbytes`` if they fit; ``False`` otherwise."""
        if nbytes < 0:
            raise ValueError("reservation must be non-negative")
        with self._lock:
            if self._reserved + nbytes > self.budget_bytes:
                return False
            self._reserved += nbytes
            self.stats.admitted += 1
            if self._reserved > self.stats.peak_reserved_bytes:
                self.stats.peak_reserved_bytes = self._reserved
            return True

    def release(self, nbytes: float) -> None:
        """Return a reservation to the budget.

        Releasing more than is reserved indicates a double-release bug;
        like the engine's :meth:`Metrics.free` the balance is clamped but
        the violation is observable (``reserved_bytes`` would go negative
        otherwise — the serving oracle checks the drained ledger is 0).
        """
        with self._lock:
            if nbytes > self._reserved + 1e-6:
                self.stats.underflows += 1
            self._reserved = max(0.0, self._reserved - nbytes)
            self.stats.releases += 1

    def reject(self) -> None:
        """Record a rejected submission (counted under the stats lock —
        the service used to bump ``stats.rejected`` unlocked, racing
        concurrent submitters)."""
        with self._lock:
            self.stats.rejected += 1

    def stats_snapshot(self) -> dict:
        """Atomic snapshot of the admission counters.

        The counters are mutated under the controller lock, so an
        unlocked ``stats.as_dict()`` can observe a torn state (e.g. an
        ``admitted`` increment without the matching ``peak`` update).
        """
        with self._lock:
            snap = self.stats.as_dict()
            snap["reserved_bytes"] = self._reserved
            snap["cache_reserved_bytes"] = self._cache_reserved
            return snap

    # -- result-cache accounting -------------------------------------
    #
    # The result cache charges its resident bytes through the same
    # ledger as query reservations, so cached results and in-flight
    # queries compete for one budget and the drained-ledger oracle
    # covers both.  Cache reservations never block (the cache evicts to
    # its own capacity before reserving); they are tracked separately
    # for metrics.

    def reserve_cache(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("reservation must be non-negative")
        with self._lock:
            self._reserved += nbytes
            self._cache_reserved += nbytes
            if self._reserved > self.stats.peak_reserved_bytes:
                self.stats.peak_reserved_bytes = self._reserved

    def release_cache(self, nbytes: float) -> None:
        with self._lock:
            if nbytes > self._cache_reserved + 1e-6:
                self.stats.underflows += 1
            self._cache_reserved = max(0.0, self._cache_reserved - nbytes)
            self._reserved = max(0.0, self._reserved - nbytes)
