"""Cross-query work sharing: shared-prefix grouping of concurrent requests.

The plan cache already shares *plans* across isomorphic requests; this
module shares *work*.  Concurrent queries whose translated dataflows
begin with the same star scan and ``PULL-EXTEND`` chain recompute an
identical stream of partial embeddings independently — a Zipf-skewed
production mix over a small pattern set wastes most of its cycles on
exactly this duplication.

A plan's **prefix signature** is the tuple of frozen operator specs of
its translated single-segment chain::

    (ScanSpec, ExtendSpec, ExtendSpec, ...)

The specs are frozen dataclasses carrying *everything* the operator does
— schemas, extend indices, symmetry conditions, label constraints — so
literal equality of two signature prefixes guarantees the engine would
compute literally the same partial-embedding batches for both plans.
That is the sufficient condition for sharing (the shape-level necessary
condition is isomorphism of the cumulative join-unit prefixes, exposed
by :func:`repro.query.decompose.join_unit_prefix_keys`).  Multi-segment
plans (``PUSH-JOIN`` trees) never share: a pushing join is a global
synchronisation barrier with its own buffers, so the signature is
``None`` and the dispatcher runs them solo.

At dispatch time the service pops a leader, then gathers compatible
followers (same dataset / cluster shape / engine-config fingerprint,
scan specs equal) into a :class:`ShareGroup`.  The engine executes the
group's longest common spec prefix **once** into a tee buffer and
replays it through each member's remaining extends into a per-member
sink (:meth:`HugeEngine.run_shared`); full isomorphism dedup is the
degenerate case where the common prefix is every member's whole chain
and the suffixes are empty.
"""

from __future__ import annotations

from ..core.dataflow import ScanSpec, Segment
from ..core.plan.physical import ExecutionPlan
from ..core.plan.translate import translate

__all__ = ["plan_signature", "signature_of_plan", "common_prefix_len",
           "group_prefix_len", "config_fingerprint", "ShareGroup"]

#: one signature element per operator in the chain
Signature = tuple


def plan_signature(segment: Segment) -> Signature | None:
    """The prefix signature of a translated segment, or ``None``.

    Only single-segment chains (an edge ``SCAN`` plus ``PULL-EXTEND``\\ s)
    are shareable; segment trees with ``PUSH-JOIN`` sources return
    ``None``.
    """
    if segment.left is not None or not isinstance(segment.source, ScanSpec):
        return None
    return (segment.source, *segment.extends)


def signature_of_plan(plan: ExecutionPlan) -> Signature | None:
    """Translate ``plan`` and return its prefix signature (or ``None``).

    ``translate`` is pure spec construction (no data touched), so this is
    cheap enough to run once per plan-cache insert.
    """
    return plan_signature(translate(plan))


def common_prefix_len(a: Signature | None, b: Signature | None) -> int:
    """Length of the longest common leading run of operator specs
    (``None`` — an unshareable plan — never has a common prefix)."""
    if a is None or b is None:
        return 0
    n = 0
    for sa, sb in zip(a, b):
        if sa != sb:
            break
        n += 1
    return n


def group_prefix_len(signatures: list[Signature]) -> int:
    """Longest spec prefix common to *all* signatures (0 if none)."""
    if not signatures or signatures[0] is None:
        return 0
    n = len(signatures[0])
    for sig in signatures[1:]:
        n = min(n, common_prefix_len(signatures[0], sig))
        if n == 0:
            break
    return n


def config_fingerprint(config) -> str:
    """Grouping key for an effective engine config.

    Two requests may share an engine run only when every knob that
    affects *what the engine computes or charges* is identical.  The
    per-attempt fields are excluded: ``cancellation`` is ``repr=False``
    on the dataclass, and ``collect_results`` is forced ``False`` here
    because collection is per-member (each member gets its own sink).
    """
    from dataclasses import replace
    return repr(replace(config, collect_results=False, cancellation=None))


class ShareGroup:
    """One dispatched share group: a leader plus piggybacking followers.

    The group occupies a single worker (one dispatch unit) but every
    member stays individually in flight — reservations, tenant counts,
    cancellation flags and terminal delivery are all per member.  The
    group's own :class:`~repro.core.cancel.CancelToken` is what the
    engine polls; a member's private token is only a delivery-time flag
    (cancelling one member must not abort the others' shared run).
    """

    __slots__ = ("members", "token", "prefix_len")

    def __init__(self, members: list, token):
        if not members:
            raise ValueError("a share group needs at least one member")
        self.members = members
        self.token = token
        #: filled in by the group runner once the plans are resolved
        self.prefix_len = 0

    @property
    def leader(self):
        return self.members[0]

    @property
    def size(self) -> int:
        return len(self.members)
