"""The concurrent query service: worker pool, dispatch, fault tolerance.

``QueryService`` multiplexes many :class:`QueryRequest`\\ s over a pool of
real worker threads, each driving its own simulated cluster +
:class:`~repro.core.engine.HugeEngine` (clusters are never shared across
threads — the metrics ledger is per-run mutable state).  The dispatcher
thread owns the :class:`MultiQueue` and the admission ledger:

1. **submit** — the pattern is resolved and canonicalised, its
   Theorem-5.4 reservation estimated; a request whose bound exceeds the
   whole budget is rejected immediately, otherwise it queues.
2. **dispatch** — the fair scheduler picks the next entry whose
   reservation fits the free budget and whose tenant is under its
   in-flight cap; the reservation is taken and the entry handed to the
   worker pool.
3. **execute** — the worker looks the canonical plan up in the shared
   :class:`PlanCache` (planning only on miss), runs the engine with a
   per-attempt :class:`CancelToken` (deadline + client cancel), remaps
   collected matches back to the request's vertex order, and streams
   bounded chunks if requested.
4. **fault tolerance** — an injected :class:`WorkerCrashError` kills the
   worker thread mid-run; the dispatcher detects the dead thread,
   releases the crashed query's reservation, respawns a fresh worker and
   requeues the query with exponential backoff.  The handle's
   exactly-once terminal transition guarantees no result is lost or
   duplicated across retries.

Determinism: a query executed through the service produces **the same
count and simulated metrics** as the same request executed solo
(:func:`run_query_solo`) — concurrency multiplexes isolated simulated
clusters, it never changes what any of them computes.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from queue import Empty, Queue
from typing import Mapping

from ..cluster.cluster import Cluster
from ..cluster.cost import CostModel
from ..cluster.errors import QueryCancelledError, ReproError
from ..core.cancel import CancelToken
from ..core.engine import EngineConfig, EnumerationResult, HugeEngine
from ..graph.graph import Graph
from ..graph.updates import apply_updates as graph_apply_updates
from ..stream.subscribe import (DeltaBatch, SubscribeRequest, Subscription,
                                UpdateReport)
from ..obs.flight import FlightRecorder
from ..obs.metrics import MetricsRegistry
from ..query.pattern import QueryGraph, get_query
from .admission import AdmissionController, estimate_query_bytes
from .instruments import ServiceInstruments
from .plancache import PlanCache
from .queueing import MultiQueue, QueueEntry
from .request import (Priority, QueryHandle, QueryOutcome, QueryRequest,
                      QueryStatus, ResultChunk)
from .resultcache import ResultCache
from .sharing import (ShareGroup, config_fingerprint, group_prefix_len,
                      signature_of_plan)
from .stats import LatencyRecorder, ServiceStats
from .tracing import ENGINE, ServiceTracer

__all__ = ["WorkerCrashError", "FaultInjector", "Executor", "QueryService",
           "run_query_solo"]


class WorkerCrashError(RuntimeError):
    """An injected worker crash (kills the worker thread mid-query)."""


class FaultInjector:
    """Deterministic worker-crash injection for tests, CI and benchmarks.

    Crashes are scheduled per ``(request seq, attempt)`` and fire through
    the engine's cancellation-token poll point, i.e. genuinely *mid-run*
    inside the scheduler loop — after some batches have been processed,
    before the query completes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._planned: dict[tuple[int, int], int] = {}
        self.injected = 0

    def crash(self, request_seq: int, attempt: int = 1,
              after_polls: int = 3) -> None:
        """Schedule a crash for the given attempt of a request; the worker
        dies after ``after_polls`` scheduler rounds."""
        if after_polls < 1:
            raise ValueError("after_polls must be >= 1")
        with self._lock:
            self._planned[(request_seq, attempt)] = after_polls

    def arm(self, request_seq: int, attempt: int) -> int | None:
        """One-shot: pop the scheduled crash for this attempt, if any."""
        with self._lock:
            return self._planned.pop((request_seq, attempt), None)

    def fired(self) -> None:
        with self._lock:
            self.injected += 1


class _AttemptToken(CancelToken):
    """Per-attempt cancellation token, optionally armed to crash."""

    __slots__ = ("_crash_after", "_injector")

    def __init__(self, deadline: float | None,
                 crash_after: int | None = None,
                 injector: FaultInjector | None = None):
        super().__init__(deadline=deadline)
        self._crash_after = crash_after
        self._injector = injector

    def on_poll(self) -> None:
        if self._crash_after is not None and self.polls >= self._crash_after:
            self._crash_after = None
            if self._injector is not None:
                self._injector.fired()
            raise WorkerCrashError("injected worker crash")


class Executor:
    """Executes requests on per-thread cached clusters.

    One ``Executor`` per worker thread (plus one per solo run): simulated
    clusters are mutable during a run and must never be shared, while the
    immutable data graphs and cached plans are shared freely.
    """

    def __init__(self, plan_cache: PlanCache | None = None,
                 default_config: EngineConfig | None = None,
                 cost: CostModel | None = None, max_clusters: int = 4):
        self.plan_cache = plan_cache
        self.default_config = default_config
        self.cost = cost
        #: optional hook returning a precomputed vertex-ownership array
        #: for a request's cluster shape (process workers resolve it from
        #: shared memory instead of recomputing the permutation)
        self.partition_provider = None
        self._clusters: OrderedDict[tuple, Cluster] = OrderedDict()
        self._max_clusters = max_clusters

    def _cluster(self, graph: Graph, req: QueryRequest) -> Cluster:
        key = (req.dataset, req.num_machines, req.workers_per_machine,
               req.partition_seed)
        cached = self._clusters.get(key)
        # a dataset re-registration (streaming update) swaps the snapshot
        # under the same name: a cached cluster is only valid for the
        # exact graph object it was built on
        cluster = cached[1] if cached is not None and cached[0] is graph \
            else None
        if cluster is None:
            owner = (self.partition_provider(req)
                     if self.partition_provider is not None else None)
            cluster = Cluster(graph, num_machines=req.num_machines,
                              workers_per_machine=req.workers_per_machine,
                              cost=self.cost, seed=req.partition_seed,
                              owner=owner)
            if key not in self._clusters and \
                    len(self._clusters) >= self._max_clusters:
                self._clusters.popitem(last=False)
            self._clusters[key] = (graph, cluster)
        else:
            self._clusters.move_to_end(key)
        return cluster

    def _config(self, req: QueryRequest,
                token: CancelToken | None) -> EngineConfig:
        base = req.config or self.default_config or EngineConfig()
        # always a copy: the caller's config object is never mutated and
        # the cancellation token is strictly per-attempt
        return replace(base, collect_results=req.collect, cancellation=token)

    def execute(self, req: QueryRequest, graph: Graph,
                pattern: QueryGraph,
                token: CancelToken | None = None) -> tuple[EnumerationResult, dict]:
        """Run one attempt; returns the engine result plus execution info
        (canonical key, plan-cache hit, phase timings)."""
        canon, mapping = pattern.canonical_form()
        cluster = self._cluster(graph, req)
        engine = HugeEngine(cluster, self._config(req, token))

        t0 = time.perf_counter()
        plan = None
        cache_hit = False
        key = None
        if self.plan_cache is not None:
            key = PlanCache.key(pattern.canonical_key(), req.dataset, graph,
                                req.num_machines)
            plan = self.plan_cache.get(key)
            cache_hit = plan is not None
        if plan is None:
            plan = engine.plan(canon)
            if self.plan_cache is not None and key is not None:
                # the prefix signature rides the cache entry so the
                # dispatcher can group future requests without replanning
                self.plan_cache.put(key, plan,
                                    signature=signature_of_plan(plan))
        t1 = time.perf_counter()

        result = engine.run(plan=plan)
        t2 = time.perf_counter()

        canonical_matches = result.matches
        if result.matches is not None and mapping != tuple(
                range(pattern.num_vertices)):
            # cached plans run the canonical pattern; map matches back to
            # the request's vertex numbering
            result.matches = [
                tuple(m[mapping[v]] for v in range(pattern.num_vertices))
                for m in result.matches
            ]
        info = {
            "canonical_key": key[0] if key is not None
            else pattern.canonical_key(),
            "plan_cache_hit": cache_hit,
            "plan_s": t1 - t0,
            "execute_s": t2 - t1,
            # pre-remap matches, for the result cache (canonical order)
            "canonical_matches": canonical_matches,
        }
        return result, info

    def resolve_plan(self, req: QueryRequest, graph: Graph,
                     canon: QueryGraph, key: tuple):
        """Plan-cache get-or-plan for one share-group member.

        Returns ``(plan, cache_hit, plan_seconds)``; planning happens on
        a cluster-bound engine so the cardinality estimator sees the
        right graph, exactly as :meth:`execute` does.
        """
        t0 = time.perf_counter()
        plan = self.plan_cache.get(key) if self.plan_cache is not None \
            else None
        hit = plan is not None
        if plan is None:
            cluster = self._cluster(graph, req)
            plan = HugeEngine(cluster, self._config(req, None)).plan(canon)
            if self.plan_cache is not None:
                self.plan_cache.put(key, plan,
                                    signature=signature_of_plan(plan))
        return plan, hit, time.perf_counter() - t0

    def execute_group(self, reqs: list[QueryRequest], graph: Graph,
                      patterns: list[QueryGraph],
                      plan_keys: list[tuple] | None = None,
                      token: CancelToken | None = None):
        """Run one share group: members' common plan prefix once, each
        member's suffix into its own sink.

        Returns ``(results, mappings, hits, plan_times, prefix_len,
        execute_s)`` — per-member lists plus the shared prefix length and
        the engine wall time.  ``plan_keys=None`` recomputes the plan
        cache keys locally (the process-worker path, whose keys live in
        the child's cache).
        """
        req0 = reqs[0]
        if plan_keys is None:
            plan_keys = [
                PlanCache.key(p.canonical_key(), r.dataset, graph,
                              r.num_machines)
                for r, p in zip(reqs, patterns)
            ]
        plans, mappings, hits, plan_times = [], [], [], []
        for req, pattern, key in zip(reqs, patterns, plan_keys):
            canon, mapping = pattern.canonical_form()
            plan, hit, plan_s = self.resolve_plan(req, graph, canon, key)
            plans.append(plan)
            mappings.append(mapping)
            hits.append(hit)
            plan_times.append(plan_s)
        cluster = self._cluster(graph, req0)
        base = req0.config or self.default_config or EngineConfig()
        engine = HugeEngine(cluster, replace(
            base, collect_results=False, cancellation=token))
        prefix_len = group_prefix_len(
            [signature_of_plan(p) for p in plans])
        t0 = time.perf_counter()
        results = engine.run_shared(
            plans, collects=[r.collect for r in reqs])
        execute_s = time.perf_counter() - t0
        return results, mappings, hits, plan_times, prefix_len, execute_s


def run_query_solo(graph: Graph, request: QueryRequest,
                   default_config: EngineConfig | None = None,
                   cost: CostModel | None = None,
                   plan_cache: PlanCache | None = None) -> QueryOutcome:
    """Execute one request alone, through the service's exact execution
    path (canonicalisation included) but with no pool, queue or budget.

    This is the oracle baseline: a request served under concurrency must
    produce a bit-identical count and simulated report to its solo run.
    """
    pattern = request.pattern if isinstance(request.pattern, QueryGraph) \
        else get_query(request.pattern)
    executor = Executor(plan_cache=plan_cache, default_config=default_config,
                        cost=cost)
    t0 = time.perf_counter()
    result, info = executor.execute(request, graph, pattern)
    return QueryOutcome(
        status=QueryStatus.COMPLETED, count=result.count, result=result,
        canonical_key=info["canonical_key"],
        plan_cache_hit=info["plan_cache_hit"],
        plan_s=info["plan_s"], execute_s=info["execute_s"],
        total_s=time.perf_counter() - t0)


_SHUTDOWN = object()


class _UpdateWork:
    """Shared completion latch for one ``apply_updates`` fan-out.

    ``apply_updates`` enqueues one :class:`_DeltaTask` per standing
    subscription, then blocks on :meth:`wait` until every task has
    reported through :meth:`done` — serialising update batches per
    dataset so graph versions (and therefore delivery seqs) stay
    monotonic.
    """

    def __init__(self, dataset: str, version: int, old_graph: Graph,
                 new_graph: Graph, delta, count: int):
        self.dataset = dataset
        self.version = version
        self.old_graph = old_graph
        self.new_graph = new_graph
        self.delta = delta
        self._remaining = count
        self._cond = threading.Condition()
        self.batches: dict[int, DeltaBatch] = {}

    def done(self, sub_seq: int, batch: DeltaBatch) -> None:
        with self._cond:
            self.batches[sub_seq] = batch
            self._remaining -= 1
            self._cond.notify_all()

    def wait(self, timeout: float) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self._remaining <= 0,
                                       timeout=timeout)


class _DeltaTask:
    """One subscription's share of an update batch, run on a pool worker.

    Delta passes always run in-process on the worker *thread* (the
    columnar delta kernels are cheap relative to full enumeration);
    under the process backend they simply bypass the child process.
    """

    __slots__ = ("sub", "work", "reserved_bytes")

    def __init__(self, sub: Subscription, work: _UpdateWork,
                 reserved_bytes: float):
        self.sub = sub
        self.work = work
        self.reserved_bytes = reserved_bytes


class _Worker(threading.Thread):
    """One pool worker; dies on an injected crash (no cleanup — the
    dispatcher's liveness check is the detection path)."""

    #: pool backend label carried on flight events and crash metrics
    backend = "thread"

    def __init__(self, service: "QueryService", wid: int):
        super().__init__(name=f"repro-serve-w{wid}", daemon=True)
        self.service = service
        self.wid = wid
        self.current: QueueEntry | None = None
        self.crashed = False
        self.executor = self._make_executor(service)

    def _make_executor(self, service: "QueryService") -> Executor:
        return Executor(
            plan_cache=service.plan_cache,
            default_config=service.default_config,
            cost=service.cost)

    @property
    def pid(self) -> int:
        """OS pid doing this worker's compute (the service process)."""
        return os.getpid()

    def dispose(self) -> None:
        """Release backend resources (no-op for thread workers)."""

    def run(self) -> None:
        svc = self.service
        while True:
            try:
                entry = svc._ready.get(timeout=0.2)
            except Empty:
                if svc._abort.is_set():
                    return
                continue
            if entry is _SHUTDOWN:
                return
            self.current = entry
            try:
                svc._run_entry(self, entry)
            except WorkerCrashError:
                # simulated hard death: leave ``current`` set and exit
                # without any cleanup; the dispatcher's liveness sweep
                # detects the corpse and recovers the query
                self.crashed = True
                return
            self.current = None
            with svc._cond:
                svc._dispatch_units -= 1
                svc._cond.notify_all()


class QueryService:
    """A long-running, concurrent subgraph-enumeration service."""

    def __init__(self, datasets: Mapping[str, Graph] | None = None,
                 num_workers: int = 4,
                 memory_budget_bytes: float = float("inf"),
                 plan_cache_capacity: int = 128,
                 default_config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 tenant_max_inflight: int | None = None,
                 max_retries: int = 3,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 injector: FaultInjector | None = None,
                 trace: bool = False,
                 trace_max_events: int | None = None,
                 metrics: MetricsRegistry | None = None,
                 flight: FlightRecorder | None = None,
                 poll_interval_s: float = 0.005,
                 sharing: bool = False,
                 max_share_group: int = 8,
                 result_cache_bytes: float = 0.0,
                 pool: str = "thread"):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if max_share_group < 1:
            raise ValueError("max_share_group must be positive")
        if pool not in ("thread", "process"):
            raise ValueError(f"unknown pool backend {pool!r}; "
                             "expected 'thread' or 'process'")
        self.num_workers = num_workers
        #: worker backend: "thread" (GIL-bound, zero-copy in-process) or
        #: "process" (true multi-core against the shared-memory graph)
        self.pool = pool
        #: batch concurrently queued requests with shared plan prefixes
        #: into one engine run (opt-in: a shared run's simulated report
        #: is the group's ledger, not any member's solo report)
        self.sharing = sharing
        self.max_share_group = max_share_group
        self.default_config = default_config
        self.cost = cost
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.tenant_max_inflight = tenant_max_inflight
        self.injector = injector
        self.plan_cache = PlanCache(plan_cache_capacity)
        self.admission = AdmissionController(memory_budget_bytes)
        self.result_cache: ResultCache | None = (
            ResultCache(result_cache_bytes, ledger=self.admission)
            if result_cache_bytes > 0 else None)
        self.tracer: ServiceTracer | None = (
            ServiceTracer(num_workers, max_events=trace_max_events)
            if trace else None)
        self.metrics = metrics
        self.obs: ServiceInstruments | None = (
            ServiceInstruments(metrics) if metrics is not None else None)
        self.flight = flight

        self._graphs: dict[str, Graph] = dict(datasets or {})
        self._graph_versions: dict[str, int] = {n: 0 for n in self._graphs}
        self._queue = MultiQueue()
        self._ready: Queue = Queue()
        self._cond = threading.Condition()
        self._abort = threading.Event()
        self._stop_requested = False
        self._drain_on_stop = True
        self._started = False
        self._stopped = False
        self._start_t = 0.0

        self._workers: list[_Worker] = []
        #: process backend only: shared-memory segments + child hosts
        self._procpool = None
        self._dispatcher: threading.Thread | None = None
        #: dispatch units (solo entries or whole share groups) occupying
        #: workers right now — a group holds ONE unit but all its members
        #: stay individually in ``_inflight``
        self._dispatch_units = 0
        self._inflight: dict[int, QueueEntry] = {}
        self._tenant_inflight: dict[str, int] = {}
        self._entries: dict[int, QueueEntry] = {}  # seq -> live entry

        self._counters = {
            "submitted": 0, "completed": 0, "cancelled": 0, "failed": 0,
            "rejected": 0, "retries": 0, "worker_crashes": 0,
            "delivery_violations": 0, "shared_groups": 0,
            "shared_requests": 0, "result_cache_hits": 0,
            "stream_updates": 0, "stream_batches": 0,
            "stream_additions": 0, "stream_retractions": 0,
            "stream_errors": 0, "subscriptions": 0,
        }
        #: standing subscriptions: dataset -> {sub seq -> Subscription}
        self._subscriptions: dict[str, dict[int, Subscription]] = {}
        # when a registry is attached, the recorders share its histograms:
        # snapshot percentiles and the exposition report the same samples
        obs = self.obs
        self._latency = LatencyRecorder(histogram=obs.latency if obs
                                        else None)
        self._queue_wait = LatencyRecorder(histogram=obs.queue_wait if obs
                                           else None)
        self._execute = LatencyRecorder(histogram=obs.execute if obs
                                        else None)

    # -- lifecycle -------------------------------------------------------------

    def register_dataset(self, name: str, graph: Graph) -> None:
        """Register (or replace) a data graph under ``name``.

        Re-registering bumps the dataset's **graph version**: cached
        results keyed on the old version become unreachable and are
        eagerly invalidated.
        """
        fresh = name not in self._graphs
        self._graphs[name] = graph
        self._graph_versions[name] = 0 if fresh else (
            self._graph_versions.get(name, 0) + 1)
        if not fresh and self.result_cache is not None:
            self.result_cache.invalidate(dataset=name)

    def graph_version(self, name: str) -> int:
        """Current version of a registered dataset (result-cache keying)."""
        return self._graph_versions.get(name, 0)

    def invalidate_results(self, dataset: str | None = None,
                           tenant: str | None = None) -> int:
        """Explicitly drop cached results (both filters ``None`` = all);
        returns how many entries were invalidated."""
        if self.result_cache is None:
            return 0
        return self.result_cache.invalidate(dataset=dataset, tenant=tenant)

    # -- streaming subscriptions -----------------------------------------------

    def subscribe(self, request: SubscribeRequest) -> Subscription:
        """Register a standing pattern subscription against a dataset.

        Every subsequent :meth:`apply_updates` on the dataset delivers
        one signed :class:`~repro.stream.subscribe.DeltaBatch` to the
        returned handle — additions enumerated on the post-update
        snapshot, retractions on the pre-update one, each graph version
        exactly once.  With ``request.bootstrap`` the current snapshot's
        matches are delivered up front as an initial all-additions batch.
        """
        if not self._started or self._stop_requested:
            raise RuntimeError("service is not accepting requests")
        graph = self._resolve_graph(request.dataset)
        pattern = (request.pattern if isinstance(request.pattern, QueryGraph)
                   else get_query(request.pattern))
        sub = Subscription(request, pattern, service=self)
        with self._cond:
            self._subscriptions.setdefault(
                request.dataset, {})[request.seq] = sub
            self._counters["subscriptions"] += 1
        if self.flight is not None:
            self.flight.begin(request.seq, request.label,
                              tenant=request.tenant)
            self.flight.event(request.seq, "subscribed",
                              pattern=pattern.name, dataset=request.dataset)
        if self.obs is not None:
            self.obs.stream_subscriptions.inc(1.0)
        if request.bootstrap:
            t0 = self._now()
            matches = sub.enumerator.delta_matches(graph, graph.edges())
            batch = DeltaBatch(
                seq=self.graph_version(request.dataset),
                dataset=request.dataset, inserted=(), deleted=(),
                additions=tuple(matches), retractions=(),
                count_after=len(matches), latency_s=self._now() - t0)
            sub._deliver(batch, abort=self._abort)
            if self.flight is not None:
                self.flight.event(request.seq, "bootstrapped",
                                  count=len(matches))
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Deregister a subscription; pending deliveries stay consumable."""
        with self._cond:
            subs = self._subscriptions.get(sub.request.dataset, {})
            subs.pop(sub.request.seq, None)
        sub._close()
        if self.flight is not None:
            self.flight.finish(sub.request.seq, "unsubscribed",
                               batches=sub.delivered_batches,
                               count=sub.count)
        if self.obs is not None:
            self.obs.stream_subscriptions.inc(-1.0)

    def _estimate_delta_bytes(self, sub: Subscription, graph: Graph,
                              delta_size: int) -> float:
        # coarse working-set bound for the admission ledger: each Δ-edge
        # seeds |E_q| pinned extensions whose frontier is at most one
        # adjacency list wide per placed vertex (8-byte ids)
        vq = sub.pattern.num_vertices
        eq = max(1, sub.pattern.num_edges)
        return 8.0 * delta_size * eq * vq * max(1.0, graph.avg_degree)

    def apply_updates(self, dataset: str, inserts=(), deletes=(),
                      timeout: float = 60.0) -> UpdateReport:
        """Apply one edge-update batch to a registered dataset.

        Produces a new immutable snapshot (``E' = (E ∪ I) \\ D``), bumps
        the dataset's graph version through :meth:`register_dataset` —
        which invalidates stale result-cache entries — and fans one
        delta task per standing subscription out through the worker
        pool.  Blocks until every subscription has been notified (or
        ``timeout`` elapses), so updates on one dataset are serialised
        and delivery seqs are monotonic.
        """
        if not self._started or self._stop_requested:
            raise RuntimeError("service is not accepting updates")
        t0 = self._now()
        old_graph = self._resolve_graph(dataset)
        new_graph, delta = graph_apply_updates(old_graph, inserts, deletes)
        self.register_dataset(dataset, new_graph)
        version = self.graph_version(dataset)
        with self._cond:
            subs = list(self._subscriptions.get(dataset, {}).values())
            self._counters["stream_updates"] += 1
        if self.obs is not None:
            self.obs.stream_update(dataset)
        if self.tracer:
            self.tracer.instant("graph update", ENGINE,
                                {"dataset": dataset, "version": version,
                                 "inserted": len(delta.inserted),
                                 "deleted": len(delta.deleted),
                                 "subscriptions": len(subs)})
        work = _UpdateWork(dataset, version, old_graph, new_graph, delta,
                           count=len(subs))
        for sub in subs:
            estimate = self._estimate_delta_bytes(sub, new_graph, delta.size)
            reserved = self.admission.try_reserve(estimate)
            task = _DeltaTask(sub, work, estimate if reserved else 0.0)
            with self._cond:
                self._dispatch_units += 1
            self._ready.put(task)
        completed = work.wait(timeout) if subs else True
        batches = tuple(work.batches[s.seq] for s in subs
                        if s.seq in work.batches)
        return UpdateReport(
            dataset=dataset, version=version, inserted=delta.inserted,
            deleted=delta.deleted, batches=batches,
            wall_s=self._now() - t0, timed_out=not completed)

    def _run_delta_task(self, worker: _Worker, task: _DeltaTask) -> None:
        """Run one subscription's delta passes on a pool worker thread.

        Never raises: a failing pass is delivered as an errored batch
        (and counted) rather than killing the worker.
        """
        sub, work = task.sub, task.work
        t0 = self._now()
        additions: list = []
        retractions: list = []
        error: str | None = None
        try:
            retractions = sub.enumerator.delta_matches(
                work.old_graph, work.delta.deleted)
            additions = sub.enumerator.delta_matches(
                work.new_graph, work.delta.inserted)
        except Exception as exc:  # noqa: BLE001 - worker boundary
            error = f"{type(exc).__name__}: {exc}"
        latency = self._now() - t0
        batch = DeltaBatch(
            seq=work.version, dataset=work.dataset,
            inserted=work.delta.inserted, deleted=work.delta.deleted,
            additions=tuple(additions), retractions=tuple(retractions),
            count_after=sub.count + len(additions) - len(retractions),
            latency_s=latency, error=error)
        try:
            delivered = sub._deliver(batch, abort=self._abort)
            with self._cond:
                self._counters["stream_batches"] += 1
                self._counters["stream_additions"] += len(additions)
                self._counters["stream_retractions"] += len(retractions)
                if error is not None:
                    self._counters["stream_errors"] += 1
            if self.obs is not None:
                self.obs.stream_batch(len(additions), len(retractions),
                                      latency)
            if self.flight is not None:
                seq = sub.request.seq
                self.flight.event(seq, "delta_batch", version=work.version,
                                  worker=worker.wid,
                                  inserted=len(work.delta.inserted),
                                  deleted=len(work.delta.deleted),
                                  additions=len(additions),
                                  retractions=len(retractions),
                                  latency_s=latency, error=error)
                if retractions:
                    self.flight.event(seq, "retracted",
                                      version=work.version,
                                      matches=len(retractions))
                self.flight.event(
                    seq, "delivered" if delivered else "delivery_dropped",
                    version=work.version, count=sub.count)
        except Exception:  # noqa: BLE001 - keep the latch + worker alive
            pass
        finally:
            if task.reserved_bytes:
                self.admission.release(task.reserved_bytes)
            work.done(sub.request.seq, batch)

    def stream_stats(self) -> dict:
        """Streaming-side counters (see :meth:`stats` for the query side)."""
        with self._cond:
            active = sum(len(s) for s in self._subscriptions.values())
            return {
                "subscriptions_total": self._counters["subscriptions"],
                "subscriptions_active": active,
                "stream_updates": self._counters["stream_updates"],
                "stream_batches": self._counters["stream_batches"],
                "stream_additions": self._counters["stream_additions"],
                "stream_retractions": self._counters["stream_retractions"],
                "stream_errors": self._counters["stream_errors"],
            }

    def _new_worker(self, wid: int) -> _Worker:
        if self._procpool is not None:
            from .procpool import ProcessWorker
            return ProcessWorker(self, wid)
        return _Worker(self, wid)

    def start(self) -> "QueryService":
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._start_t = time.monotonic()
        if self.pool == "process":
            from .procpool import ProcessWorkerPool
            self._procpool = ProcessWorkerPool(self)
        for wid in range(self.num_workers):
            worker = self._new_worker(wid)
            self._workers.append(worker)
            worker.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True)
        self._dispatcher.start()
        return self

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every worker can execute (process children spawned
        and attached).  Thread pools are ready immediately; benchmarks use
        this to keep spawn cost out of throughput windows."""
        if self._procpool is not None:
            deadline = time.monotonic() + timeout
            for worker in self._workers:
                worker.wait_ready(max(0.0, deadline - time.monotonic()))

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Shut the service down.

        ``drain=True`` finishes everything already submitted first;
        ``drain=False`` cancels queued and running queries immediately.
        Either way every submitted handle reaches a terminal state before
        the pool is torn down (clean shutdown is part of the contract),
        and every shared-memory segment is unlinked exactly once.
        """
        if not self._started or self._stopped:
            return
        with self._cond:
            self._stop_requested = True
            self._drain_on_stop = drain
            subs = [s for d in self._subscriptions.values()
                    for s in d.values()]
            self._subscriptions.clear()
            self._cond.notify_all()
        for sub in subs:
            sub._close()
        assert self._dispatcher is not None
        self._dispatcher.join(timeout)
        self._abort.set()
        for worker in self._workers:
            self._ready.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join(timeout=5.0)
        for worker in self._workers:
            worker.dispose()
        if self._procpool is not None:
            self._procpool.close()
        if self.result_cache is not None:
            # drop all cached results so the admission ledger drains to
            # zero (the serving memory oracle asserts this post-stop)
            self.result_cache.clear()
        self._stopped = True

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=all(e is None for e in exc))

    # -- client API ------------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic()

    def estimate_request_bytes(self, request: QueryRequest) -> float:
        """The admission reservation this request would take (for sizing
        budgets in tests/benchmarks)."""
        graph = self._resolve_graph(request.dataset)
        pattern = self._resolve_pattern(request)
        base = request.config or self.default_config or EngineConfig()
        return estimate_query_bytes(pattern.num_vertices, graph, base,
                                    request.num_machines,
                                    self.cost or CostModel())

    def _resolve_graph(self, dataset: str) -> Graph:
        try:
            return self._graphs[dataset]
        except KeyError:
            raise KeyError(
                f"unknown dataset {dataset!r}; registered: "
                f"{sorted(self._graphs)}") from None

    @staticmethod
    def _resolve_pattern(request: QueryRequest) -> QueryGraph:
        if isinstance(request.pattern, QueryGraph):
            return request.pattern
        return get_query(request.pattern)

    def submit(self, request: QueryRequest) -> QueryHandle:
        """Admit a request into the service; returns its handle.

        Raises on malformed requests (unknown dataset/pattern); admission
        *rejection* (bound exceeds the whole budget) is delivered through
        the handle as a ``REJECTED`` outcome, not an exception.
        """
        if not self._started or self._stop_requested:
            raise RuntimeError("service is not accepting requests")
        graph = self._resolve_graph(request.dataset)
        pattern = self._resolve_pattern(request)
        request.priority = Priority(request.priority)
        handle = QueryHandle(request, service=self)
        now = self._now()
        estimate = estimate_query_bytes(
            pattern.num_vertices, graph,
            request.config or self.default_config or EngineConfig(),
            request.num_machines, self.cost or CostModel())
        deadline = (now + request.deadline_s
                    if request.deadline_s is not None else float("inf"))
        entry = QueueEntry(handle, estimate, now, deadline)
        entry.pattern = pattern
        entry.graph = graph
        if self.sharing or self.result_cache is not None:
            base = request.config or self.default_config or EngineConfig()
            entry.canonical_key = pattern.canonical_key()
            entry.config_fp = config_fingerprint(base)
            entry.plan_key = PlanCache.key(entry.canonical_key,
                                           request.dataset, graph,
                                           request.num_machines)

        if self.flight is not None:
            self.flight.begin(request.seq, request.label,
                              tenant=request.tenant,
                              deadline_s=request.deadline_s,
                              estimate_bytes=estimate,
                              priority=request.priority.name)
        if self.obs is not None:
            self.obs.submitted.inc_child(
                self.obs.submitted.labels(request.tenant))

        if self.result_cache is not None and not request.stream:
            cached = self._try_result_cache(entry)
            if cached is not None:
                return handle

        with self._cond:
            self._counters["submitted"] += 1
            if not self.admission.admissible(estimate):
                self.admission.reject()
                self._counters["rejected"] += 1
                if self.obs is not None:
                    self.obs.admission_decision("reject", "memory_bound")
                    self.obs.requests.inc_child(
                        self.obs.requests.labels("rejected"))
                if self.flight is not None:
                    self.flight.finish(request.seq, "rejected",
                                       reason="memory_bound",
                                       estimate_bytes=estimate)
                handle._finish(QueryOutcome(
                    status=QueryStatus.REJECTED,
                    error=(f"memory bound {estimate:.3g}B exceeds the "
                           f"service budget "
                           f"{self.admission.budget_bytes:.3g}B"),
                    canonical_key=pattern.canonical_key(), attempts=0))
                if self.tracer:
                    self.tracer.instant("admission reject", ENGINE,
                                        {"request": request.label,
                                         "bytes": estimate})
                return handle
            handle._set_status(QueryStatus.QUEUED)
            self._entries[request.seq] = entry
            self._queue.push(entry)
            depths = self._queue.depths() if (self.tracer or self.obs) \
                else None
            if self.tracer:
                self.tracer.counter("queue depth", ENGINE, depths)
            self._cond.notify_all()
        if self.obs is not None:
            self.obs.admission_decision("accept", "fits")
            self.obs.observe_queue_depths(depths)
        if self.flight is not None:
            self.flight.event(request.seq, "queued",
                              priority=request.priority.name)
        return handle

    # -- result cache ----------------------------------------------------------

    def _result_cache_key(self, entry: QueueEntry) -> tuple:
        req = entry.handle.request
        return ResultCache.key(
            entry.canonical_key, req.dataset,
            self._graph_versions.get(req.dataset, 0), req.tenant,
            req.num_machines, req.workers_per_machine, req.partition_seed,
            entry.config_fp)

    def _try_result_cache(self, entry: QueueEntry) -> QueryOutcome | None:
        """Serve a request straight from the result cache, if possible.

        A hit finishes the handle with a ``COMPLETED`` outcome carrying
        the cached count (and matches remapped to the request's vertex
        order) without ever queueing or touching the engine.
        """
        assert self.result_cache is not None
        req = entry.handle.request
        key = self._result_cache_key(entry)
        hit = self.result_cache.get(key, need_matches=req.collect)
        if self.obs is not None:
            self.obs.result_cache_lookup(hit is not None)
        if hit is None:
            return None
        matches = None
        if req.collect:
            _canon, mapping = entry.pattern.canonical_form()
            n = entry.pattern.num_vertices
            if mapping == tuple(range(n)):
                matches = list(hit.matches)
            else:
                matches = [tuple(m[mapping[v]] for v in range(n))
                           for m in hit.matches]
        now = self._now()
        outcome = QueryOutcome(
            status=QueryStatus.COMPLETED, count=hit.count,
            matches=matches, result_cache_hit=True,
            canonical_key=entry.canonical_key, attempts=0,
            total_s=now - entry.submit_t)
        with self._cond:
            self._counters["submitted"] += 1
            self._counters["result_cache_hits"] += 1
            delivered = entry.handle._finish(outcome)
            if delivered:
                self._counters["completed"] += 1
            else:
                self._counters["delivery_violations"] += 1
        if delivered:
            self._latency.add(outcome.total_s)
        if self.obs is not None and delivered:
            self.obs.requests.inc_child(self.obs.requests.labels("completed"))
            self.obs.completed.inc_child(self.obs.completed.labels(req.tenant))
        if self.flight is not None:
            self.flight.finish(req.seq, "completed", count=hit.count,
                               result_cache_hit=True,
                               total_s=outcome.total_s)
        if self.tracer:
            self.tracer.instant("result cache hit", ENGINE,
                                {"request": req.label, "count": hit.count})
        return outcome

    def _store_result(self, entry: QueueEntry, count: int,
                      canonical_matches: list | None) -> None:
        """Insert a completed request's answer into the result cache."""
        if self.result_cache is None or entry.canonical_key is None:
            return
        req = entry.handle.request
        if req.stream:
            return  # streamed matches are gone; nothing worth caching
        self.result_cache.put(
            self._result_cache_key(entry), count,
            canonical_matches if req.collect else None,
            dataset=req.dataset, tenant=req.tenant)

    def _cancel(self, handle: QueryHandle, reason: str) -> None:
        """Client-side cancel (QueryHandle.cancel routes here)."""
        with self._cond:
            entry = self._entries.get(handle.request.seq)
            if entry is None:
                return
            if handle.request.seq in self._inflight:
                if entry.token is not None:
                    entry.token.cancel(reason)
            else:
                entry.cancel_reason = reason
            self._cond.notify_all()

    # -- dispatcher ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        poll = 0.005
        while True:
            with self._cond:
                self._cond.wait(timeout=poll)
                stop = self._stop_requested
                drain = self._drain_on_stop
            self._reap_crashed_workers()
            self._sweep_queue()
            if stop and not drain:
                self._cancel_everything("service shutdown")
            self._fill_workers()
            if stop:
                with self._cond:
                    idle = not self._inflight and not len(self._queue)
                if idle and (not drain or self._ready.empty()):
                    return

    def _tenant_ok(self, entry: QueueEntry) -> bool:
        if self.tenant_max_inflight is None:
            return True
        used = self._tenant_inflight.get(entry.handle.request.tenant, 0)
        return used < self.tenant_max_inflight

    def _shareable_leader(self, entry: QueueEntry) -> bool:
        """Whether a popped entry may lead a share group: deadlines stay
        solo (a group run cannot abort for one member's deadline without
        killing the others'), and streaming delivery stays solo."""
        return (entry.canonical_key is not None
                and not entry.handle.request.stream
                and entry.abs_deadline == float("inf"))

    def _share_match(self, leader: QueueEntry, leader_sig):
        """Follower predicate: same dataset/cluster/config, and either the
        same canonical pattern (full dedup — no signature needed) or a
        plan-cache signature starting with the leader's scan spec."""
        lreq = leader.handle.request

        def match(e: QueueEntry) -> bool:
            req = e.handle.request
            if (e.canonical_key is None or req.stream
                    or e.abs_deadline != float("inf")
                    or e.graph is not leader.graph
                    or req.dataset != lreq.dataset
                    or req.num_machines != lreq.num_machines
                    or req.workers_per_machine != lreq.workers_per_machine
                    or req.partition_seed != lreq.partition_seed
                    or e.config_fp != leader.config_fp):
                return False
            if e.canonical_key == leader.canonical_key:
                return True  # isomorphic: identical canonical plan
            if leader_sig is None:
                return False
            sig = self.plan_cache.signature(e.plan_key)
            return sig is not None and sig[0] == leader_sig[0]

        return match

    def _fill_workers(self) -> None:
        while True:
            with self._cond:
                # groups occupy ONE worker but many inflight entries, so
                # the gate counts dispatch units, not inflight requests
                if self._dispatch_units >= self.num_workers:
                    return
                now = self._now()
                entry = self._queue.pop_eligible(
                    now, lambda e: (self._tenant_ok(e)
                                    and self.admission.fits_now(
                                        e.estimate_bytes)))
                if entry is None:
                    return
                members = [entry]
                if (self.sharing and self.max_share_group > 1
                        and self._shareable_leader(entry)):
                    leader_sig = self.plan_cache.signature(entry.plan_key)
                    extra_bytes = entry.estimate_bytes
                    extra_tenants = {entry.handle.request.tenant: 1}

                    def eligible(e: QueueEntry) -> bool:
                        # cumulative: budget/tenant headroom shrinks with
                        # every follower taken ahead of this one
                        tenant = e.handle.request.tenant
                        used = (self._tenant_inflight.get(tenant, 0)
                                + extra_tenants.get(tenant, 0))
                        if (self.tenant_max_inflight is not None
                                and used >= self.tenant_max_inflight):
                            return False
                        return self.admission.fits_now(
                            extra_bytes + e.estimate_bytes)

                    followers = self._queue.pop_matching(
                        now, eligible, self._share_match(entry, leader_sig),
                        self.max_share_group - 1)
                    for f in followers:
                        extra_bytes += f.estimate_bytes
                        t = f.handle.request.tenant
                        extra_tenants[t] = extra_tenants.get(t, 0) + 1
                    members += followers
                req = entry.handle.request
                group = None
                if len(members) > 1:
                    crash_after = (self.injector.arm(req.seq,
                                                     entry.attempts + 1)
                                   if self.injector else None)
                    group = ShareGroup(members, _AttemptToken(
                        None, crash_after, self.injector))
                    self._counters["shared_groups"] += 1
                    self._counters["shared_requests"] += len(members)
                for e in members:
                    ok = self.admission.try_reserve(e.estimate_bytes)
                    assert ok  # single dispatcher; workers only release
                    e.attempts += 1
                    e.dispatch_t = now
                    e.group = group
                    if group is None:
                        crash_after = (self.injector.arm(req.seq,
                                                         e.attempts)
                                       if self.injector else None)
                        deadline = (e.abs_deadline
                                    if e.abs_deadline != float("inf")
                                    else None)
                        e.token = _AttemptToken(deadline, crash_after,
                                                self.injector)
                    else:
                        # a member's token is only a delivery-time cancel
                        # flag: cancelling one member must not abort the
                        # group's engine run (group.token does that)
                        e.token = CancelToken()
                    seq = e.handle.request.seq
                    self._inflight[seq] = e
                    tenant = e.handle.request.tenant
                    self._tenant_inflight[tenant] = \
                        self._tenant_inflight.get(tenant, 0) + 1
                self._dispatch_units += 1
            if self.tracer:
                for e in members:
                    r = e.handle.request
                    self.tracer.span(
                        f"queue {r.label}", ENGINE,
                        e.submit_t - self._start_t, now - self._start_t,
                        {"priority": r.priority.name, "tenant": r.tenant,
                         "attempt": e.attempts})
                self.tracer.counter("queue depth", ENGINE,
                                    self._queue.depths())
                self.tracer.counter(
                    "reserved MB", ENGINE,
                    {"reserved": self.admission.reserved_bytes / 1e6})
            if self.obs is not None:
                with self._cond:
                    self.obs.inflight.set(len(self._inflight))
                    self.obs.observe_queue_depths(self._queue.depths())
                self.obs.reserved_bytes.set(self.admission.reserved_bytes)
                if group is not None:
                    self.obs.observe_share_group(len(members))
            if self.flight is not None:
                for e in members:
                    self.flight.event(e.handle.request.seq, "dispatched",
                                      attempt=e.attempts,
                                      queue_wait_s=now - e.submit_t)
                if group is not None:
                    for e in members:
                        self.flight.event(e.handle.request.seq,
                                          "share_group",
                                          size=len(members),
                                          leader=req.seq)
            self._ready.put(entry)

    def _sweep_queue(self) -> None:
        """Cancel queued entries that expired or were client-cancelled."""
        now = self._now()
        with self._cond:
            expired = self._queue.pop_where(
                lambda e: e.abs_deadline <= now or e.cancel_reason is not None)
        for entry in expired:
            reason = entry.cancel_reason or "deadline exceeded"
            self._finish_entry(entry, QueryOutcome(
                status=QueryStatus.CANCELLED, error=reason,
                attempts=entry.attempts,
                queue_wait_s=now - entry.submit_t,
                total_s=now - entry.submit_t), reserved=False)
            if self.tracer:
                self.tracer.instant("cancel", ENGINE,
                                    {"request": entry.handle.request.label,
                                     "reason": reason})

    def _cancel_everything(self, reason: str) -> None:
        with self._cond:
            for entry in self._inflight.values():
                if entry.token is not None:
                    entry.token.cancel(reason)
                if entry.group is not None:
                    # member tokens are delivery-time flags only; the
                    # group token is what the engine actually polls
                    entry.group.token.cancel(reason)
            for entry in list(self._entries.values()):
                if entry.handle.request.seq not in self._inflight:
                    entry.cancel_reason = reason

    def _reap_crashed_workers(self) -> None:
        """Detect dead workers, respawn them, retry their queries."""
        for i, worker in enumerate(self._workers):
            if worker.is_alive():
                continue
            entry = worker.current
            if entry is None and not worker.crashed:
                continue  # normal shutdown exit
            crashed_pid = worker.pid
            # respawn first so capacity is restored even if retry fails
            fresh = self._new_worker(worker.wid)
            self._workers[i] = fresh
            fresh.start()
            worker.dispose()  # reap the corpse (dead child process, pipes)
            with self._cond:
                self._counters["worker_crashes"] += 1
            if self.obs is not None:
                self.obs.crashes.inc_child(self.obs.crashes.labels(self.pool))
            if entry is not None:
                with self._cond:
                    self._dispatch_units -= 1
                victims = (entry.group.members if entry.group is not None
                           else [entry])
                for victim in victims:
                    victim.group = None
                    if self.flight is not None:
                        self.flight.crash(victim.handle.request.seq,
                                          worker=worker.wid,
                                          pid=crashed_pid,
                                          backend=worker.backend,
                                          attempt=victim.attempts)
                    self._retry_after_crash(victim)

    def _retry_after_crash(self, entry: QueueEntry) -> None:
        req = entry.handle.request
        now = self._now()
        with self._cond:
            self._inflight.pop(req.seq, None)
            tenant = req.tenant
            if self._tenant_inflight.get(tenant, 0) > 0:
                self._tenant_inflight[tenant] -= 1
        self.admission.release(entry.estimate_bytes)
        if self.tracer:
            self.tracer.instant("worker crash", ENGINE,
                                {"request": req.label,
                                 "attempt": entry.attempts})
        if entry.attempts > self.max_retries:
            self._finish_entry(entry, QueryOutcome(
                status=QueryStatus.FAILED,
                error=f"worker crashed on all {entry.attempts} attempts",
                attempts=entry.attempts, total_s=now - entry.submit_t),
                reserved=False)
            return
        backoff = min(self.backoff_cap_s,
                      self.backoff_base_s * (2 ** (entry.attempts - 1)))
        entry.not_before = now + backoff
        entry.token = None
        entry.handle._set_status(QueryStatus.QUEUED)
        with self._cond:
            self._counters["retries"] += 1
            self._queue.push(entry)
            self._cond.notify_all()
        if self.obs is not None:
            self.obs.retries.inc_child(self.obs.retries.labels(self.pool))
        if self.flight is not None:
            self.flight.event(req.seq, "retry_scheduled",
                              backoff_s=backoff,
                              next_attempt=entry.attempts + 1)
        if self.tracer:
            self.tracer.instant("retry scheduled", ENGINE,
                                {"request": req.label,
                                 "backoff_s": backoff,
                                 "next_attempt": entry.attempts + 1})

    # -- worker side -----------------------------------------------------------

    def _run_entry(self, worker: _Worker, entry: QueueEntry) -> None:
        """Execute one dispatched entry on ``worker`` (its thread).

        ``WorkerCrashError`` deliberately propagates — the caller treats
        it as thread death.
        """
        if isinstance(entry, _DeltaTask):
            self._run_delta_task(worker, entry)
            return
        if entry.group is not None:
            self._run_group(worker, entry.group)
            return
        req = entry.handle.request
        entry.handle._set_status(QueryStatus.RUNNING)
        if self.flight is not None:
            self.flight.event(req.seq, "executing", worker=worker.wid,
                              pid=worker.pid, backend=worker.backend,
                              attempt=entry.attempts)
        t_run0 = self._now()
        tr = self.tracer
        tw0 = tr.now() if tr else 0.0
        try:
            result, info = worker.executor.execute(
                req, entry.graph, entry.pattern, token=entry.token)
        except WorkerCrashError:
            raise
        except QueryCancelledError as exc:
            now = self._now()
            self._finish_entry(entry, QueryOutcome(
                status=QueryStatus.CANCELLED, error=exc.reason,
                attempts=entry.attempts,
                queue_wait_s=entry.dispatch_t - entry.submit_t,
                execute_s=now - t_run0, total_s=now - entry.submit_t))
            if tr:
                tr.span(f"execute {req.label}", worker.wid, tw0, tr.now(),
                        {"outcome": "cancelled", "reason": exc.reason})
            return
        except (ReproError, Exception) as exc:  # noqa: BLE001 - worker boundary
            now = self._now()
            self._finish_entry(entry, QueryOutcome(
                status=QueryStatus.FAILED,
                error=f"{type(exc).__name__}: {exc}",
                attempts=entry.attempts,
                queue_wait_s=entry.dispatch_t - entry.submit_t,
                execute_s=now - t_run0, total_s=now - entry.submit_t))
            if tr:
                tr.span(f"execute {req.label}", worker.wid, tw0, tr.now(),
                        {"outcome": "failed", "error": str(exc)})
            return

        if self.obs is not None:
            self.obs.plan_cache_lookup(info["plan_cache_hit"])
        if self.flight is not None:
            self.flight.event(req.seq, "planned",
                              cache_hit=info["plan_cache_hit"],
                              plan_s=info["plan_s"])
            self.flight.event(req.seq, "executed",
                              execute_s=info["execute_s"],
                              count=result.count,
                              sim_time_s=result.report.total_time_s)
        if tr:
            t_exec_end = tr.now()
            tr.span(f"plan {req.label}", worker.wid, tw0,
                    tw0 + info["plan_s"],
                    {"cache_hit": info["plan_cache_hit"],
                     "key": info["canonical_key"]})
            tr.span(f"execute {req.label}", worker.wid,
                    tw0 + info["plan_s"], t_exec_end,
                    {"count": result.count,
                     "sim_time_s": result.report.total_time_s,
                     "attempt": entry.attempts})

        streamed = 0
        if req.stream:
            ts0 = tr.now() if tr else 0.0
            streamed = self._stream_result(entry, result)
            if tr:
                tr.span(f"stream {req.label}", worker.wid, ts0, tr.now(),
                        {"chunks": streamed})
            if self.flight is not None:
                self.flight.event(req.seq, "streamed", chunks=streamed)
        now = self._now()
        self._store_result(entry, result.count, info["canonical_matches"])
        self._finish_entry(entry, QueryOutcome(
            status=QueryStatus.COMPLETED, count=result.count, result=result,
            attempts=entry.attempts,
            plan_cache_hit=info["plan_cache_hit"],
            canonical_key=info["canonical_key"],
            queue_wait_s=entry.dispatch_t - entry.submit_t,
            plan_s=info["plan_s"], execute_s=info["execute_s"],
            total_s=now - entry.submit_t))

    def _run_group(self, worker: _Worker, group: ShareGroup) -> None:
        """Execute one share group on ``worker`` (its thread).

        The engine runs the members' common plan prefix once and routes
        each member's suffix results into its own sink; every member is
        then delivered individually — a client-cancelled member gets a
        ``CANCELLED`` outcome while the rest of the group completes.
        """
        members = group.members
        reqs = [e.handle.request for e in members]
        for e, req in zip(members, reqs):
            e.handle._set_status(QueryStatus.RUNNING)
            if self.flight is not None:
                self.flight.event(req.seq, "executing", worker=worker.wid,
                                  pid=worker.pid, backend=worker.backend,
                                  attempt=e.attempts,
                                  share_group=len(members))
        leader, req0 = members[0], reqs[0]
        t_run0 = self._now()
        tr = self.tracer
        tw0 = tr.now() if tr else 0.0
        try:
            (results, mappings, hits, plan_times, prefix_len,
             execute_s) = worker.executor.execute_group(
                reqs, leader.graph, [e.pattern for e in members],
                plan_keys=[e.plan_key for e in members], token=group.token)
            group.prefix_len = prefix_len
        except WorkerCrashError:
            raise
        except QueryCancelledError as exc:
            now = self._now()
            for e in members:
                e.group = None
                self._finish_entry(e, QueryOutcome(
                    status=QueryStatus.CANCELLED, error=exc.reason,
                    attempts=e.attempts, shared_group=len(members),
                    queue_wait_s=e.dispatch_t - e.submit_t,
                    execute_s=now - t_run0, total_s=now - e.submit_t))
            if tr:
                tr.span(f"execute group#{req0.seq}", worker.wid, tw0,
                        tr.now(), {"outcome": "cancelled",
                                   "reason": exc.reason,
                                   "size": len(members)})
            return
        except (ReproError, Exception) as exc:  # noqa: BLE001 - worker boundary
            now = self._now()
            for e in members:
                e.group = None
                self._finish_entry(e, QueryOutcome(
                    status=QueryStatus.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=e.attempts, shared_group=len(members),
                    queue_wait_s=e.dispatch_t - e.submit_t,
                    execute_s=now - t_run0, total_s=now - e.submit_t))
            if tr:
                tr.span(f"execute group#{req0.seq}", worker.wid, tw0,
                        tr.now(), {"outcome": "failed", "error": str(exc),
                                   "size": len(members)})
            return

        if self.obs is not None:
            for hit in hits:
                self.obs.plan_cache_lookup(hit)
        if tr:
            tr.span(f"execute group#{req0.seq}", worker.wid, tw0, tr.now(),
                    {"size": len(members),
                     "counts": [r.count for r in results]})
        now = self._now()
        for e, req, mapping, hit, plan_s, result in zip(
                members, reqs, mappings, hits, plan_times, results):
            e.group = None
            canonical_matches = result.matches
            n = e.pattern.num_vertices
            if result.matches is not None and mapping != tuple(range(n)):
                result.matches = [
                    tuple(m[mapping[v]] for v in range(n))
                    for m in result.matches
                ]
            reason = None
            if e.token is not None and e.token.cancelled:
                reason = e.token.reason
            elif e.cancel_reason is not None:
                reason = e.cancel_reason
            if reason is not None:
                self._finish_entry(e, QueryOutcome(
                    status=QueryStatus.CANCELLED, error=reason,
                    attempts=e.attempts, shared_group=len(members),
                    queue_wait_s=e.dispatch_t - e.submit_t,
                    execute_s=execute_s, total_s=now - e.submit_t))
                continue
            if self.flight is not None:
                self.flight.event(req.seq, "executed",
                                  execute_s=execute_s, count=result.count,
                                  share_group=len(members),
                                  sim_time_s=result.report.total_time_s)
            self._store_result(e, result.count,
                              canonical_matches if req.collect else None)
            self._finish_entry(e, QueryOutcome(
                status=QueryStatus.COMPLETED, count=result.count,
                result=result, attempts=e.attempts, plan_cache_hit=hit,
                shared_group=len(members), canonical_key=e.canonical_key,
                queue_wait_s=e.dispatch_t - e.submit_t,
                plan_s=plan_s, execute_s=execute_s,
                total_s=now - e.submit_t))

    def _stream_result(self, entry: QueueEntry,
                       result: EnumerationResult) -> int:
        """Deliver collected matches as bounded chunks; returns #chunks."""
        req = entry.handle.request
        matches = result.matches or []
        result.matches = None  # delivered via the stream, not the outcome
        size = req.chunk_size
        chunks = [matches[i:i + size] for i in range(0, len(matches), size)] \
            or [[]]
        for seq, rows in enumerate(chunks):
            chunk = ResultChunk(seq=seq, rows=rows,
                                last=seq == len(chunks) - 1)
            if not entry.handle._push_chunk(chunk, abort=self._abort):
                break
        return len(chunks)

    def _finish_entry(self, entry: QueueEntry, outcome: QueryOutcome,
                      reserved: bool = True) -> None:
        """Terminal bookkeeping: budget release, counters, the handle's
        exactly-once delivery, dispatcher wake-up."""
        req = entry.handle.request
        delivered = entry.handle._finish(outcome)
        if req.stream and outcome.status != QueryStatus.COMPLETED:
            entry.handle._push_chunk(None, abort=self._abort)
        with self._cond:
            self._entries.pop(req.seq, None)
            was_inflight = self._inflight.pop(req.seq, None) is not None
            if was_inflight:
                tenant = req.tenant
                if self._tenant_inflight.get(tenant, 0) > 0:
                    self._tenant_inflight[tenant] -= 1
            if not delivered:
                self._counters["delivery_violations"] += 1
            else:
                key = {QueryStatus.COMPLETED: "completed",
                       QueryStatus.CANCELLED: "cancelled",
                       QueryStatus.FAILED: "failed",
                       QueryStatus.REJECTED: "rejected"}[outcome.status]
                self._counters[key] += 1
            self._cond.notify_all()
        if was_inflight and reserved:
            self.admission.release(entry.estimate_bytes)
        if delivered and outcome.status == QueryStatus.COMPLETED:
            self._latency.add(outcome.total_s)
            self._queue_wait.add(outcome.queue_wait_s)
            self._execute.add(outcome.execute_s)
        if self.obs is not None and delivered:
            status = outcome.status.value
            self.obs.requests.inc_child(self.obs.requests.labels(status))
            if outcome.status == QueryStatus.COMPLETED:
                self.obs.completed.inc_child(
                    self.obs.completed.labels(req.tenant))
            elif (outcome.status == QueryStatus.CANCELLED
                  and outcome.error == "deadline exceeded"):
                self.obs.deadline_missed.inc()
            with self._cond:
                self.obs.inflight.set(len(self._inflight))
            self.obs.reserved_bytes.set(self.admission.reserved_bytes)
        if self.flight is not None:
            self.flight.finish(req.seq, outcome.status.value,
                               count=outcome.count,
                               attempts=outcome.attempts,
                               error=outcome.error,
                               total_s=outcome.total_s)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A point-in-time service metrics snapshot."""
        with self._cond:
            counters = dict(self._counters)
            depth = self._queue.depths()
            inflight = len(self._inflight)
        return ServiceStats(
            submitted=counters["submitted"],
            completed=counters["completed"],
            cancelled=counters["cancelled"],
            failed=counters["failed"],
            rejected=counters["rejected"],
            retries=counters["retries"],
            worker_crashes=counters["worker_crashes"],
            delivery_violations=counters["delivery_violations"],
            inflight=inflight,
            queue_depth=depth,
            reserved_bytes=self.admission.reserved_bytes,
            budget_bytes=self.admission.budget_bytes,
            admission=self.admission.stats_snapshot(),
            plan_cache=self.plan_cache.stats.as_dict(),
            shared_groups=counters["shared_groups"],
            shared_requests=counters["shared_requests"],
            result_cache_hits=counters["result_cache_hits"],
            result_cache=(self.result_cache.stats.as_dict()
                          if self.result_cache is not None else {}),
            latency=self._latency.snapshot(),
            queue_wait=self._queue_wait.snapshot(),
            execute=self._execute.snapshot(),
            uptime_s=(time.monotonic() - self._start_t
                      if self._started else 0.0),
        )
