"""Per-request tracing for the serving tier, on the wall clock.

Reuses the :mod:`repro.obs.trace` span model and Chrome ``trace_event``
export, but with a different timeline: engine traces run on the
*simulated* cluster clock, while service traces run on the *real* clock
(``time.perf_counter`` relative to service start).  Tracks map workers
to "machines" (processes in Perfetto) and the :data:`ENGINE`
pseudo-machine to a service-global track, so a traced workload shows,
per request: the queue-wait span on the service track, then plan-cache
lookup / execute / stream spans on the worker that ran it, with crash,
retry, cancel and deadline instants in between.

All recording methods are lock-guarded — unlike the engine tracer, many
worker threads append concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from ..obs.trace import ENGINE, CounterEvent, InstantEvent, SpanEvent, Trace

__all__ = ["ENGINE", "ServiceTracer"]


class ServiceTracer:
    """Wall-clock span recorder shared by the service's threads."""

    enabled = True

    def __init__(self, num_workers: int, max_events: int | None = None):
        self.trace = Trace(num_machines=num_workers, max_events=max_events)
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()

    def now(self) -> float:
        """Seconds since service start."""
        return time.perf_counter() - self._t0

    def span(self, name: str, track: int, t0: float, t1: float,
             args: Mapping[str, Any] | None = None) -> None:
        """Record a completed wall-clock span on a worker (or ENGINE) track."""
        with self._lock:
            self.trace.add_span(SpanEvent(name, track, t0, t1, args))

    def instant(self, name: str, track: int,
                args: Mapping[str, Any] | None = None) -> None:
        with self._lock:
            self.trace.add_instant(InstantEvent(name, track, self.now(), args))

    def counter(self, name: str, track: int,
                values: Mapping[str, float]) -> None:
        with self._lock:
            self.trace.add_counter(
                CounterEvent(name, track, self.now(), dict(values)))

    def save(self, path: str, meta: Mapping[str, Any] | None = None) -> None:
        """Write the Chrome trace_event JSON (Perfetto-loadable)."""
        if meta:
            self.trace.meta.update(meta)
        self.trace.meta.setdefault("clock", "wall (service-relative)")
        self.trace.save(path)
