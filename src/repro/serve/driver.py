"""Deterministic load generation against a :class:`QueryService`.

The driver builds a seeded mixed workload — benchmark patterns across
priority classes and tenants, a fraction submitted as random isomorphic
relabellings (so the canonical plan cache gets cross-pattern hits), a
fraction carrying deadlines, and optionally injected worker crashes —
submits everything concurrently, waits for the fleet to drain, and
produces a :class:`DriverReport`.

``verify=True`` re-runs every distinct (pattern, cluster shape) solo via
:func:`~repro.serve.service.run_query_solo` and checks each served
count — and, where the outcome carries its engine result, the simulated
metrics report — is **bit-identical** to the solo run.  This is the
ISSUE's acceptance gate, wired into the CLI, CI smoke and the serving
benchmark.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..core.engine import EngineConfig
from ..graph.graph import Graph
from ..obs.flight import FlightRecorder
from ..obs.metrics import MetricsRegistry
from ..query.pattern import QueryGraph, get_query
from .request import Priority, QueryRequest, QueryStatus
from .service import FaultInjector, QueryService, run_query_solo

__all__ = ["WorkloadSpec", "DriverReport", "LoadDriver"]

#: default pattern mix (names resolved through ``get_query``)
DEFAULT_PATTERNS = ("triangle", "q1", "q2", "q3", "q4")


@dataclass
class WorkloadSpec:
    """A seeded workload description."""

    num_queries: int = 32
    dataset: str = "GO"
    patterns: tuple[str, ...] = DEFAULT_PATTERNS
    num_machines: int = 4
    workers_per_machine: int = 4
    seed: int = 1
    relabel_fraction: float = 0.5
    """Fraction of requests submitted as a random isomorphic relabelling
    of their pattern (exercises canonical plan-cache keying)."""
    deadline_fraction: float = 0.0
    deadline_s: float = 5.0
    tenants: tuple[str, ...] = ("default",)
    collect_fraction: float = 0.0
    crashes: int = 0
    """Worker crashes to inject (on the first ``crashes`` requests'
    first attempts)."""
    zipf_s: float = 0.0
    """Zipf skew for pattern choice: > 0 draws pattern ``r`` (1-based
    rank in :attr:`patterns`) with weight ``1/r**zipf_s`` instead of
    round-robin — the skewed mix that makes work sharing and result
    caching pay off (hot patterns repeat)."""

    def build(self) -> list[QueryRequest]:
        """Materialise the request list (deterministic in ``seed``)."""
        rng = random.Random(self.seed)
        priorities = [Priority.HIGH, Priority.NORMAL, Priority.NORMAL,
                      Priority.LOW]
        weights = ([1.0 / (r + 1) ** self.zipf_s
                    for r in range(len(self.patterns))]
                   if self.zipf_s > 0 else None)
        requests: list[QueryRequest] = []
        for i in range(self.num_queries):
            if weights is not None:
                name = rng.choices(self.patterns, weights=weights)[0]
            else:
                name = self.patterns[i % len(self.patterns)]
            pattern: QueryGraph | str = name
            if rng.random() < self.relabel_fraction:
                base = get_query(name)
                perm = list(range(base.num_vertices))
                rng.shuffle(perm)
                pattern = base.relabel(dict(enumerate(perm)),
                                       name=f"{base.name}~{i}")
            deadline = (self.deadline_s
                        if rng.random() < self.deadline_fraction else None)
            requests.append(QueryRequest(
                pattern=pattern, dataset=self.dataset,
                num_machines=self.num_machines,
                workers_per_machine=self.workers_per_machine,
                collect=rng.random() < self.collect_fraction,
                priority=priorities[i % len(priorities)],
                deadline_s=deadline,
                tenant=self.tenants[i % len(self.tenants)],
                tag=f"{name}#{i}"))
        return requests


@dataclass
class DriverReport:
    """Everything one driver run observed."""

    spec: WorkloadSpec
    wall_s: float
    outcomes: list[dict]
    service: dict
    verified: bool | None = None
    """``True``/``False`` after a verification pass, ``None`` if skipped."""
    verify_failures: list[str] = field(default_factory=list)

    @property
    def counts_by_status(self) -> dict[str, int]:
        by: dict[str, int] = {}
        for o in self.outcomes:
            by[o["status"]] = by.get(o["status"], 0) + 1
        return by

    def as_dict(self) -> dict:
        return {
            "num_queries": self.spec.num_queries,
            "dataset": self.spec.dataset,
            "seed": self.spec.seed,
            "wall_s": self.wall_s,
            "by_status": self.counts_by_status,
            "verified": self.verified,
            "verify_failures": self.verify_failures,
            "service": self.service,
            "outcomes": self.outcomes,
        }


class LoadDriver:
    """Drives a workload through a service and (optionally) verifies it."""

    def __init__(self, graph: Graph, spec: WorkloadSpec,
                 num_workers: int = 4,
                 memory_budget_bytes: float = float("inf"),
                 default_config: EngineConfig | None = None,
                 tenant_max_inflight: int | None = None,
                 trace: bool = False,
                 trace_max_events: int | None = 500_000,
                 metrics: MetricsRegistry | None = None,
                 flight: FlightRecorder | None = None,
                 sharing: bool = False,
                 max_share_group: int = 8,
                 result_cache_bytes: float = 0.0,
                 pool: str = "thread"):
        self.graph = graph
        self.spec = spec
        self.num_workers = num_workers
        self.memory_budget_bytes = memory_budget_bytes
        self.default_config = default_config
        self.tenant_max_inflight = tenant_max_inflight
        self.trace = trace
        #: driver traces are bounded by default: a long workload must not
        #: grow the span ring without limit (oldest events drop, counted)
        self.trace_max_events = trace_max_events
        self.metrics = metrics
        self.flight = flight
        self.sharing = sharing
        self.max_share_group = max_share_group
        self.result_cache_bytes = result_cache_bytes
        self.pool = pool
        self.service: QueryService | None = None

    def run(self, verify: bool = False,
            timeout_s: float = 300.0) -> DriverReport:
        spec = self.spec
        requests = spec.build()
        injector = FaultInjector() if spec.crashes else None
        if injector is not None:
            for req in requests[:spec.crashes]:
                injector.crash(req.seq, attempt=1, after_polls=3)

        service = QueryService(
            datasets={spec.dataset: self.graph},
            num_workers=self.num_workers,
            memory_budget_bytes=self.memory_budget_bytes,
            default_config=self.default_config,
            tenant_max_inflight=self.tenant_max_inflight,
            injector=injector, trace=self.trace,
            trace_max_events=self.trace_max_events,
            metrics=self.metrics, flight=self.flight,
            sharing=self.sharing, max_share_group=self.max_share_group,
            result_cache_bytes=self.result_cache_bytes, pool=self.pool)
        self.service = service
        t0 = time.perf_counter()
        with service:
            handles = [service.submit(req) for req in requests]
            outcomes = [h.result(timeout=timeout_s) for h in handles]
        wall = time.perf_counter() - t0

        report = DriverReport(
            spec=spec, wall_s=wall,
            outcomes=[o.as_dict() for o in outcomes],
            service=service.stats().as_dict())
        if verify:
            report.verified, report.verify_failures = self._verify(
                requests, outcomes)
        return report

    @staticmethod
    def _canonical_rows(pattern, rows):
        """Matches rebased from the request's vertex order to canonical
        order — the shared frame in which any two isomorphic requests'
        solo runs produce literally the same multiset."""
        resolved = pattern if isinstance(pattern, QueryGraph) \
            else get_query(pattern)
        _, mapping = resolved.canonical_form()
        n = resolved.num_vertices
        out = []
        for r in rows:
            c = [0] * n
            for v in range(n):
                c[mapping[v]] = r[v]
            out.append(tuple(c))
        return sorted(out)

    def _verify(self, requests, outcomes) -> tuple[bool, list[str]]:
        """Check every completed request against its solo run."""
        solo_cache: dict[tuple, object] = {}
        failures: list[str] = []
        for req, outcome in zip(requests, outcomes):
            if outcome.status is not QueryStatus.COMPLETED:
                continue
            # collect changes the engine's allocation profile, so a
            # count-only request must not reuse a collecting solo run
            key = (outcome.canonical_key, req.num_machines,
                   req.workers_per_machine, req.partition_seed, req.collect)
            cached = solo_cache.get(key)
            if cached is None:
                cached = (run_query_solo(self.graph, req,
                                         default_config=self.default_config),
                          req.pattern)
                solo_cache[key] = cached
            solo, solo_pattern = cached
            if outcome.count != solo.count:
                failures.append(
                    f"{req.label}: served count {outcome.count} != solo "
                    f"{solo.count}")
                continue
            served = outcome.collected
            if (served is not None and solo.collected is not None
                    and self._canonical_rows(req.pattern, served)
                    != self._canonical_rows(solo_pattern, solo.collected)):
                failures.append(
                    f"{req.label}: served match multiset differs from solo")
            # a share-group member's report is the group's shared ledger
            # and a result-cache hit carries no report at all — only solo
            # runs pin the full simulated-metrics comparison
            if (outcome.result is not None and solo.result is not None
                    and outcome.shared_group == 1
                    and not outcome.result_cache_hit
                    and outcome.result.report.as_dict()
                    != solo.result.report.as_dict()):
                failures.append(
                    f"{req.label}: served metrics differ from solo run")
        return not failures, failures
