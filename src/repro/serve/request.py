"""Query requests, handles and streaming result delivery.

A client builds a :class:`QueryRequest` (pattern + dataset handle +
engine overrides + deadline/priority/tenant), submits it to a
:class:`~repro.serve.service.QueryService` and receives a
:class:`QueryHandle` — a future-like object that tracks the request
through its lifecycle::

    PENDING -> QUEUED -> RUNNING -> COMPLETED
                   \\-> CANCELLED / FAILED          (terminal)
    PENDING -> REJECTED                             (admission control)

Every handle reaches **exactly one** terminal state exactly once; the
transition is guarded by a lock and double transitions are recorded as
``delivery_violations`` so the serving oracles can assert the
no-lost/no-duplicated-results invariant even across worker crashes and
retries.

Result delivery is either *direct* (``handle.result().result`` carries
the full :class:`~repro.core.engine.EnumerationResult`) or *streamed*
(``request.stream=True``): matches are pushed through a bounded chunk
queue (``max_pending_chunks`` backpressure) and consumed with
``for chunk in handle.chunks(): ...``.
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..core.engine import EngineConfig, EnumerationResult
from ..query.pattern import QueryGraph

__all__ = ["Priority", "QueryStatus", "QueryRequest", "QueryOutcome",
           "ResultChunk", "QueryHandle"]


class Priority(enum.IntEnum):
    """Scheduling priority classes (lower value = more urgent)."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


class QueryStatus(enum.Enum):
    """Lifecycle states of a submitted query."""

    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self in (QueryStatus.COMPLETED, QueryStatus.CANCELLED,
                        QueryStatus.FAILED, QueryStatus.REJECTED)


_request_seq = itertools.count()


@dataclass
class QueryRequest:
    """One subgraph-enumeration request against a registered dataset."""

    pattern: QueryGraph | str
    """The pattern, or a benchmark query name (``"q1"`` .. ``"triangle"``)."""

    dataset: str
    """Handle of a dataset registered with the service."""

    num_machines: int = 4
    """Simulated cluster shape the query runs on."""

    workers_per_machine: int = 4

    partition_seed: int = 0
    """Graph-partitioning seed (identical seed => identical partition =>
    bit-identical results to a solo run)."""

    config: EngineConfig | None = None
    """Engine overrides; the service copies it per attempt, never mutates
    the caller's object."""

    collect: bool = False
    """Collect the matched tuples (vs. count only)."""

    stream: bool = False
    """Deliver collected matches as bounded chunks via ``handle.chunks()``
    instead of on the outcome (implies :attr:`collect`)."""

    chunk_size: int = 1024
    """Tuples per streamed chunk."""

    max_pending_chunks: int = 8
    """Backpressure bound: the worker blocks once this many chunks are
    undelivered."""

    priority: Priority = Priority.NORMAL

    deadline_s: float | None = None
    """Wall-clock budget from submission; expiry cancels the query whether
    queued or mid-run (the engine's cancellation token enforces it)."""

    tenant: str = "default"
    """Fairness bucket for per-tenant in-flight caps."""

    tag: str | None = None
    """Optional client label, echoed in traces/metrics."""

    seq: int = field(default_factory=lambda: next(_request_seq))
    """Process-unique request id (assigned at construction)."""

    def __post_init__(self) -> None:
        if self.stream:
            self.collect = True
        if self.num_machines < 1 or self.workers_per_machine < 1:
            raise ValueError("need at least one machine and one worker")
        if self.chunk_size < 1 or self.max_pending_chunks < 1:
            raise ValueError("chunk sizes must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    @property
    def label(self) -> str:
        """Display name for traces and logs."""
        base = self.pattern if isinstance(self.pattern, str) else \
            self.pattern.name
        return self.tag or f"{base}@{self.dataset}#{self.seq}"


@dataclass
class ResultChunk:
    """One bounded slice of a streamed result."""

    seq: int
    """Chunk index within the request (0-based)."""

    rows: Sequence[tuple[int, ...]]
    """Matches in the *request's* query-vertex order."""

    last: bool = False
    """Whether this is the final chunk."""


@dataclass
class QueryOutcome:
    """Terminal summary of one request."""

    status: QueryStatus
    count: int = 0
    result: EnumerationResult | None = field(default=None, repr=False)
    error: str | None = None
    attempts: int = 1
    """Execution attempts consumed (> 1 means worker-crash retries)."""
    plan_cache_hit: bool = False
    result_cache_hit: bool = False
    """Served straight from the result cache (no engine run; ``result``
    is ``None`` and collected matches arrive via :attr:`matches`)."""
    shared_group: int = 1
    """Size of the share group this request executed in (1 = solo run;
    > 1 means the engine report is the *group's* shared ledger)."""
    matches: list | None = field(default=None, repr=False)
    """Matches in the request's vertex order for result-cache hits
    (fresh runs deliver them on ``result.matches`` as always)."""
    canonical_key: str | None = None
    queue_wait_s: float = 0.0
    plan_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0
    """Submit-to-terminal wall-clock latency."""

    @property
    def collected(self) -> list | None:
        """Collected matches regardless of delivery path (engine run vs
        result-cache hit)."""
        if self.matches is not None:
            return self.matches
        return self.result.matches if self.result is not None else None

    def as_dict(self) -> dict:
        """JSON-serialisable view (the engine result is summarised)."""
        return {
            "status": self.status.value,
            "count": self.count,
            "error": self.error,
            "attempts": self.attempts,
            "plan_cache_hit": self.plan_cache_hit,
            "result_cache_hit": self.result_cache_hit,
            "shared_group": self.shared_group,
            "canonical_key": self.canonical_key,
            "queue_wait_s": self.queue_wait_s,
            "plan_s": self.plan_s,
            "execute_s": self.execute_s,
            "total_s": self.total_s,
            "sim_total_time_s": (self.result.report.total_time_s
                                 if self.result is not None else None),
        }


class QueryHandle:
    """Client-side view of a submitted request (a future plus a stream)."""

    def __init__(self, request: QueryRequest, service=None):
        self.request = request
        self._service = service
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._status = QueryStatus.PENDING
        self._outcome: QueryOutcome | None = None
        #: terminal transitions after the first one (must stay 0; the
        #: exactly-once oracle asserts it)
        self.delivery_violations = 0
        self._chunks: queue.Queue[ResultChunk | None] = queue.Queue(
            maxsize=request.max_pending_chunks)

    # -- state -----------------------------------------------------------------

    @property
    def status(self) -> QueryStatus:
        return self._status

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def _set_status(self, status: QueryStatus) -> None:
        """Non-terminal transition (service internal)."""
        with self._lock:
            if not self._status.terminal:
                self._status = status

    def _finish(self, outcome: QueryOutcome) -> bool:
        """Deliver the terminal outcome exactly once.

        Returns ``False`` (and counts a violation) on a second terminal
        transition — the exactly-once guard behind crash retries.
        """
        with self._lock:
            if self._status.terminal:
                self.delivery_violations += 1
                return False
            self._status = outcome.status
            self._outcome = outcome
        self._done.set()
        return True

    # -- client API ------------------------------------------------------------

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the query reaches a terminal state."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> QueryOutcome:
        """The terminal outcome (blocks; raises ``TimeoutError`` on wait
        expiry).  Inspect ``outcome.status`` — failures do not raise."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query {self.request.label} still {self._status.value} "
                f"after {timeout}s")
        assert self._outcome is not None
        return self._outcome

    def cancel(self, reason: str = "client cancel") -> None:
        """Request cancellation (queued: dropped; running: the engine's
        cancellation token fires at its next scheduler poll)."""
        if self._service is not None:
            self._service._cancel(self, reason)

    # -- streaming -------------------------------------------------------------

    def _push_chunk(self, chunk: ResultChunk | None,
                    abort: threading.Event, timeout: float = 0.05) -> bool:
        """Producer side (service internal): blocks under backpressure but
        gives up when ``abort`` is set (service shutdown)."""
        while True:
            try:
                self._chunks.put(chunk, timeout=timeout)
                return True
            except queue.Full:
                if abort.is_set():
                    return False

    def chunks(self, timeout: float | None = None) -> Iterator[ResultChunk]:
        """Iterate the streamed result chunks (``request.stream`` runs).

        Terminates after the chunk marked ``last``; on a non-completed
        outcome the stream simply ends (check :meth:`result`).
        """
        if not self.request.stream:
            raise ValueError("request was not submitted with stream=True")
        while True:
            try:
                chunk = self._chunks.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no chunk from {self.request.label} within {timeout}s")
            if chunk is None:  # terminated without a final chunk
                return
            yield chunk
            if chunk.last:
                return
