"""``repro.serve`` — the concurrent query service.

A long-running serving tier on top of :class:`~repro.core.engine.HugeEngine`:

* **requests & handles** (:mod:`.request`) — priorities, deadlines,
  tenants, streamed chunk delivery, exactly-once outcomes;
* **admission control** (:mod:`.admission`) — Theorem-5.4-shaped memory
  reservations against a global budget;
* **plan cache** (:mod:`.plancache`) — Algorithm-1 plans keyed by the
  pattern's canonical form, shared across isomorphic requests;
* **fair scheduling** (:mod:`.queueing`) — weighted round-robin across
  priorities, EDF within, per-tenant caps;
* **the service** (:mod:`.service`) — the worker pool, dispatcher,
  cancellation and crash-retry fault tolerance;
* **work sharing** (:mod:`.sharing`) — share-group formation: canonical
  plan-prefix signatures let the dispatcher run concurrently queued
  requests with a common join-unit prefix as one engine execution;
* **result cache** (:mod:`.resultcache`) — tenant-aware cached answers
  keyed on (canonical pattern, dataset, graph version, …), with bytes
  accounted through the admission ledger;
* **standing subscriptions** (:meth:`.service.QueryService.subscribe` /
  :meth:`~.service.QueryService.apply_updates`) — streaming graph
  updates fanned out through the worker pool as incremental delta
  enumeration (:mod:`repro.stream`), with signed ``+/-`` match-delta
  delivery, exactly-once per graph version;
* **load driving** (:mod:`.driver`) — seeded (optionally Zipf-skewed)
  workloads with solo-run verification;
* **observability** (:mod:`.stats`, :mod:`.tracing`,
  :mod:`.instruments`) — latency percentiles, wall-clock Chrome traces,
  and labelled registry metrics (admission/queue/plan-cache/crash
  counters, latency histograms) plus the per-query flight recorder from
  :mod:`repro.obs.flight`.
"""

from .admission import AdmissionController, AdmissionStats, estimate_query_bytes
from .driver import DriverReport, LoadDriver, WorkloadSpec
from .instruments import ServiceInstruments
from .plancache import PlanCache, PlanCacheStats
from .queueing import PRIORITY_WEIGHTS, MultiQueue, QueueEntry
from .request import (Priority, QueryHandle, QueryOutcome, QueryRequest,
                      QueryStatus, ResultChunk)
from .resultcache import CachedResult, ResultCache, ResultCacheStats
from .service import (Executor, FaultInjector, QueryService, WorkerCrashError,
                      run_query_solo)
from .sharing import (ShareGroup, common_prefix_len, config_fingerprint,
                      group_prefix_len, plan_signature, signature_of_plan)
from .stats import LatencyRecorder, ServiceStats, percentile
from .tracing import ServiceTracer
from ..stream.subscribe import (DeltaBatch, SubscribeRequest, Subscription,
                                UpdateReport)

__all__ = [
    "AdmissionController", "AdmissionStats", "estimate_query_bytes",
    "DriverReport", "LoadDriver", "WorkloadSpec",
    "PlanCache", "PlanCacheStats",
    "PRIORITY_WEIGHTS", "MultiQueue", "QueueEntry",
    "Priority", "QueryHandle", "QueryOutcome", "QueryRequest",
    "QueryStatus", "ResultChunk",
    "Executor", "FaultInjector", "QueryService", "WorkerCrashError",
    "run_query_solo",
    "CachedResult", "ResultCache", "ResultCacheStats",
    "ShareGroup", "common_prefix_len", "config_fingerprint",
    "group_prefix_len", "plan_signature", "signature_of_plan",
    "LatencyRecorder", "ServiceStats", "percentile",
    "ServiceInstruments", "ServiceTracer",
    "DeltaBatch", "SubscribeRequest", "Subscription", "UpdateReport",
]
