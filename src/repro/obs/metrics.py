"""Labelled metrics: Counter / Gauge / Histogram with Prometheus export.

The serving tier (PR 5) and the engine both count things — admission
decisions, queue depths, plan-cache hits, batch sizes, cache hit rates —
but until now every subsystem kept its own ad-hoc counters and exposed
them through one-off snapshot dataclasses.  This module is the shared
substrate: a thread-safe :class:`MetricsRegistry` of named metric
families, each optionally labelled, exportable as Prometheus
text-exposition (:meth:`MetricsRegistry.expose`) and as a JSON snapshot
(:meth:`MetricsRegistry.snapshot`).

Two time bases coexist.  Serving-tier metrics observe **wall-clock**
seconds (`time.perf_counter` deltas); engine metrics observe **simulated**
seconds (the metrics-ledger clocks that the cost model charges).  A
family declares its base at registration (``time_base="wall"`` /
``"sim"``); the base is carried into the JSON snapshot and the HELP text
so dashboards never mix the two axes.

Histograms use **fixed log-scaled buckets** (:func:`log_buckets`): the
default time buckets span 1µs–1000s at three per decade, so p50/p99
estimates stay within ~½ decade-third everywhere without per-workload
tuning.  A histogram may additionally keep a small deterministic
reservoir (round-robin overwrite, exactly the policy
``serve.stats.LatencyRecorder`` has always used) for *exact* percentiles;
:class:`~repro.serve.stats.LatencyRecorder` is now a thin wrapper over
such a histogram.

:func:`check_exposition` is a self-contained line-format validator for
the text exposition (``python -m repro metrics --check``): CI feeds the
output of an instrumented run back through it, so a malformed escape or
non-cumulative bucket fails the build rather than a scrape.

Nothing here ever touches the simulated cost ledger: registries only
*read* observations handed to them, so a metrics-enabled run is
bit-identical to a metrics-off run (tier-1 tests assert this against the
golden metric grid).
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "REGISTRY", "log_buckets", "DEFAULT_TIME_BUCKETS",
           "DEFAULT_SIZE_BUCKETS", "check_exposition"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Fixed log-scaled bucket upper bounds from ``lo`` to at least ``hi``.

    Bounds are ``lo * 10**(i/per_decade)`` rounded to a short repr, so two
    registries built with the same arguments expose byte-identical
    ``le=`` labels.
    """
    if lo <= 0 or hi <= lo or per_decade < 1:
        raise ValueError("need 0 < lo < hi and per_decade >= 1")
    out: list[float] = []
    i = 0
    while True:
        b = float(f"{lo * 10 ** (i / per_decade):.6g}")
        if not out or b > out[-1]:
            out.append(b)
        if b >= hi:
            break
        i += 1
    return tuple(out)


#: 1µs .. 1000s, three buckets per decade (time histograms, both bases)
DEFAULT_TIME_BUCKETS = log_buckets(1e-6, 1e3, per_decade=3)

#: 1 .. 1e9 rows/bytes, two buckets per decade (size histograms)
DEFAULT_SIZE_BUCKETS = log_buckets(1.0, 1e9, per_decade=2)


def _exact_percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile over an ascending-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _fmt(v: float) -> str:
    """Prometheus sample-value formatting (ints stay integral)."""
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if isinstance(v, float) and v != v:
        return "NaN"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Family:
    """Common machinery: a named family with labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",  # noqa: A002 - prom term
                 labelnames: Iterable[str] = (),
                 time_base: str | None = None,
                 _lock: threading.Lock | None = None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.labelnames = tuple(labelnames)
        for ln in self.labelnames:
            if not _LABEL_RE.match(ln) or ln.startswith("__"):
                raise ValueError(f"invalid label name {ln!r}")
        if time_base not in (None, "wall", "sim"):
            raise ValueError(f"time_base must be 'wall'/'sim', not {time_base!r}")
        self.name = name
        self.help = help
        self.time_base = time_base
        self._lock = _lock or threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, *values: Any, **kv: Any):
        """The child for one label combination (created on first use)."""
        if kv:
            if values:
                raise ValueError("pass positional or keyword labels, not both")
            try:
                values = tuple(kv[ln] for ln in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc} for {self.name}") from None
            if len(kv) != len(self.labelnames):
                raise ValueError(f"unexpected labels for {self.name}: "
                                 f"{sorted(set(kv) - set(self.labelnames))}")
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(f"{self.name} takes labels {self.labelnames}, "
                             f"got {key}")
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
        return child

    def _default(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled {self.labelnames}; "
                             f"use .labels(...)")
        return self._children[()]

    # -- export ----------------------------------------------------------------

    def _label_str(self, key: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
        pairs = [*zip(self.labelnames, key), *extra]
        if not pairs:
            return ""
        inner = ",".join(f'{n}="{_escape(v)}"' for n, v in pairs)
        return "{" + inner + "}"

    def expose(self) -> list[str]:
        """This family's text-exposition lines (HELP, TYPE, samples)."""
        help_text = self.help
        if self.time_base:
            help_text = (f"{help_text} [{self.time_base} clock]"
                         if help_text else f"[{self.time_base} clock]")
        lines = []
        if help_text:
            lines.append(f"# HELP {self.name} {_escape(help_text)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        with self._lock:
            items = sorted(self._children.items())
        for key, child in items:
            lines.extend(self._sample_lines(key, child))
        return lines

    def _sample_lines(self, key, child) -> list[str]:
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable view of the family."""
        with self._lock:
            items = sorted(self._children.items())
        return {
            "type": self.kind,
            "help": self.help,
            "time_base": self.time_base,
            "samples": [
                {"labels": dict(zip(self.labelnames, key)),
                 **child.as_dict()}
                for key, child in items
            ],
        }


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def as_dict(self) -> dict:
        return {"value": self.value}


class Counter(_Family):
    """A monotonically increasing count (events, rows, bytes)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        child = self._default()
        with self._lock:
            child.value += amount

    def inc_child(self, child: _CounterChild, amount: float = 1.0) -> None:
        """Increment a child obtained from :meth:`labels` (hot paths keep
        the child handle instead of re-resolving labels per event)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            child.value += amount

    @property
    def value(self) -> float:
        return self._default().value

    def get(self, *values: Any, **kv: Any) -> float:
        return self.labels(*values, **kv).value

    def _sample_lines(self, key, child) -> list[str]:
        return [f"{self.name}{self._label_str(key)} {_fmt(child.value)}"]


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge(_Family):
    """A value that can go up and down (queue depth, reserved bytes)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        child = self._default()
        with self._lock:
            child.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        child = self._default()
        with self._lock:
            child.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_child(self, child: _GaugeChild, value: float) -> None:
        with self._lock:
            child.value = float(value)

    @property
    def value(self) -> float:
        return self._default().value

    def get(self, *values: Any, **kv: Any) -> float:
        return self.labels(*values, **kv).value

    def _sample_lines(self, key, child) -> list[str]:
        return [f"{self.name}{self._label_str(key)} {_fmt(child.value)}"]


class _HistogramChild:
    __slots__ = ("counts", "count", "sum", "samples", "_reservoir")

    def __init__(self, num_buckets: int, reservoir: int) -> None:
        self.counts = [0] * num_buckets          # per-bucket (non-cumulative)
        self.count = 0
        self.sum = 0.0
        self._reservoir = reservoir
        self.samples: list[float] = []           # deterministic reservoir

    def as_dict(self) -> dict:
        return {"count": self.count, "sum": self.sum,
                "buckets": list(self.counts)}


class Histogram(_Family):
    """Fixed-bucket distribution with an optional exact-percentile
    reservoir (deterministic round-robin overwrite, oldest-first)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 labelnames: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                 time_base: str | None = None,
                 reservoir: int = 0,
                 _lock: threading.Lock | None = None):
        bs = tuple(float(b) for b in buckets)
        if not bs or any(b2 <= b1 for b1, b2 in zip(bs, bs[1:])):
            raise ValueError("buckets must be non-empty and ascending")
        if bs[-1] == math.inf:
            bs = bs[:-1]
        self.buckets = bs
        self.reservoir = int(reservoir)
        super().__init__(name, help, labelnames, time_base, _lock)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(len(self.buckets) + 1, self.reservoir)

    def observe(self, value: float) -> None:
        self.observe_child(self._default(), value)

    def observe_child(self, child: _HistogramChild, value: float) -> None:
        """Observe into a child handle (hot-path form)."""
        v = float(value)
        i = bisect_left(self.buckets, v)
        with self._lock:
            child.counts[i] += 1
            child.count += 1
            child.sum += v
            if child._reservoir:
                if len(child.samples) < child._reservoir:
                    child.samples.append(v)
                else:
                    # round-robin overwrite: sample i of the stream lands in
                    # slot i mod capacity, so retention is deterministic
                    child.samples[child.count % child._reservoir] = v
        return None

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum

    def percentile(self, q: float, *label_values: Any) -> float:
        """The ``q``-th percentile: exact from the reservoir when one is
        kept, otherwise interpolated from the log buckets."""
        child = self.labels(*label_values) if label_values else self._default()
        with self._lock:
            samples = sorted(child.samples)
            counts = list(child.counts)
            total = child.count
        if samples:
            return _exact_percentile(samples, q)
        if not total:
            return 0.0
        # bucket interpolation: walk to the bucket containing rank q
        rank = (q / 100.0) * total
        seen = 0
        for i, c in enumerate(counts):
            if seen + c >= rank or i == len(counts) - 1:
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i] if i < len(self.buckets) else lo
                frac = (rank - seen) / c if c else 0.0
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            seen += c
        return 0.0

    def _sample_lines(self, key, child) -> list[str]:
        lines = []
        cum = 0
        for b, c in zip(self.buckets, child.counts):
            cum += c
            lines.append(f"{self.name}_bucket"
                         f"{self._label_str(key, (('le', _fmt(b)),))} {cum}")
        lines.append(f"{self.name}_bucket"
                     f"{self._label_str(key, (('le', '+Inf'),))} {child.count}")
        lines.append(f"{self.name}_sum{self._label_str(key)} "
                     f"{_fmt(child.sum)}")
        lines.append(f"{self.name}_count{self._label_str(key)} {child.count}")
        return lines


class MetricsRegistry:
    """A named, thread-safe collection of metric families.

    Families are get-or-create: registering the same name twice returns
    the existing family (and raises if the type or labels disagree), so
    instrumentation sites can declare their metrics independently.
    """

    def __init__(self, namespace: str = "repro"):
        if namespace and not _NAME_RE.match(namespace):
            raise ValueError(f"invalid namespace {namespace!r}")
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _full(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, cls, name: str, help: str,  # noqa: A002
                  labelnames: Iterable[str], time_base: str | None,
                  **extra: Any):
        full = self._full(name)
        with self._lock:
            fam = self._families.get(full)
            if fam is None:
                fam = cls(full, help, labelnames, time_base=time_base,
                          **extra)
                self._families[full] = fam
                return fam
        if not isinstance(fam, cls) or fam.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {full!r} already registered as {fam.kind} with "
                f"labels {fam.labelnames}")
        return fam

    def counter(self, name: str, help: str = "",  # noqa: A002
                labelnames: Iterable[str] = (),
                time_base: str | None = None) -> Counter:
        return self._register(Counter, name, help, labelnames, time_base)

    def gauge(self, name: str, help: str = "",  # noqa: A002
              labelnames: Iterable[str] = (),
              time_base: str | None = None) -> Gauge:
        return self._register(Gauge, name, help, labelnames, time_base)

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                  time_base: str | None = None,
                  reservoir: int = 0) -> Histogram:
        return self._register(Histogram, name, help, labelnames, time_base,
                              buckets=buckets, reservoir=reservoir)

    def get(self, name: str) -> _Family | None:
        """Look a family up by its full (namespaced) name."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    # -- export ----------------------------------------------------------------

    def expose(self) -> str:
        """The Prometheus text exposition of every family."""
        lines: list[str] = []
        for fam in self.families():
            lines.extend(fam.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """JSON snapshot: ``{family name: {type, help, time_base, samples}}``."""
        return {fam.name: fam.snapshot() for fam in self.families()}

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")


#: process-wide default registry (the CLI's ``--metrics`` uses fresh ones)
REGISTRY = MetricsRegistry()


# -- exposition checker ------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{.*\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$")
_LABEL_PAIR_RE = re.compile(
    r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"((?:[^"\\]|\\.)*)"\s*(,|$)')
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(raw: str) -> dict[str, str] | None:
    """Parse ``{a="x",b="y"}``; ``None`` on malformed syntax."""
    body = raw[1:-1]
    out: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        m = _LABEL_PAIR_RE.match(body, pos)
        if not m:
            return None
        out[m.group(1)] = m.group(2)
        pos = m.end()
    return out


def check_exposition(text: str) -> list[str]:
    """Validate Prometheus text-exposition format; returns error strings
    (empty list = valid).

    Checks line syntax (names, label pairs, escapes, float values), that
    ``# TYPE`` precedes its family's samples, that histogram ``_bucket``
    series are cumulative with a ``+Inf`` bucket equal to ``_count``, and
    that counter samples are finite and non-negative.
    """
    errors: list[str] = []
    types: dict[str, str] = {}
    # histogram family -> {label-subset-key -> [(le, cum)]}
    buckets: dict[str, dict[tuple, list[tuple[float, float]]]] = {}
    counts: dict[str, dict[tuple, float]] = {}

    def base_family(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    for ln, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    errors.append(f"line {ln}: malformed {parts[1]} comment")
                elif parts[1] == "TYPE":
                    mtype = parts[3].strip() if len(parts) > 3 else ""
                    if mtype not in _VALID_TYPES:
                        errors.append(
                            f"line {ln}: unknown metric type {mtype!r}")
                    elif parts[2] in types:
                        errors.append(
                            f"line {ln}: duplicate TYPE for {parts[2]}")
                    else:
                        types[parts[2]] = mtype
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {ln}: unparsable sample line {line!r}")
            continue
        name, raw_labels, raw_value = (m.group("name"), m.group("labels"),
                                       m.group("value"))
        labels: dict[str, str] = {}
        if raw_labels:
            parsed = _parse_labels(raw_labels)
            if parsed is None:
                errors.append(f"line {ln}: malformed labels {raw_labels!r}")
                continue
            labels = parsed
        try:
            value = float(raw_value.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError:
            errors.append(f"line {ln}: bad sample value {raw_value!r}")
            continue
        fam = base_family(name)
        ftype = types.get(fam)
        if ftype is None:
            errors.append(f"line {ln}: sample {name!r} precedes its TYPE")
            continue
        if ftype == "counter" and not (value >= 0 and value != math.inf):
            errors.append(f"line {ln}: counter {name} has value {raw_value}")
        if ftype == "histogram":
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            if name == f"{fam}_bucket":
                if "le" not in labels:
                    errors.append(f"line {ln}: bucket without le label")
                    continue
                le = float(labels["le"].replace("+Inf", "inf"))
                buckets.setdefault(fam, {}).setdefault(key, []).append(
                    (le, value))
            elif name == f"{fam}_count":
                counts.setdefault(fam, {})[key] = value

    for fam, series in buckets.items():
        for key, pairs in series.items():
            les = [le for le, _ in pairs]
            cums = [c for _, c in pairs]
            if sorted(les) != les:
                errors.append(f"{fam}{dict(key)}: le bounds not ascending")
            if any(b < a for a, b in zip(cums, cums[1:])):
                errors.append(f"{fam}{dict(key)}: bucket counts not "
                              f"cumulative")
            if les and les[-1] != math.inf:
                errors.append(f"{fam}{dict(key)}: missing +Inf bucket")
            total = counts.get(fam, {}).get(key)
            if total is not None and cums and cums[-1] != total:
                errors.append(f"{fam}{dict(key)}: +Inf bucket {cums[-1]} != "
                              f"_count {total}")
    return errors
