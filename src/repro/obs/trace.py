"""Span-based structured tracing over the simulated clock.

The engine reports only end-of-run aggregates (``RunReport``'s
T/T_R/T_C/C/M).  This module records *where* that time goes: every
scheduler round, operator batch, PULL-EXTEND fetch/intersect stage, RPC
service, shuffle ingestion and steal transfer becomes a **span** — an
interval on one machine's simulated timeline — plus instant events
(yield/backtrack/steal/evict) and counter samples (queue depths, cache
occupancy, per-worker busy ops).

Timestamps come from the metrics ledger: a machine's clock is
:meth:`~repro.cluster.metrics.Metrics.machine_time`, which only ever moves
forward as work is charged.  Tracing therefore never *charges* anything —
it reads the clock — so a traced run is bit-identical to an untraced one
(a regression test asserts this).

The default tracer is :data:`NULL_TRACER`, whose every method is a no-op
and whose ``enabled`` flag lets hot paths skip building argument dicts
entirely; tracing costs nothing unless a real :class:`Tracer` is passed to
``HugeEngine.run``.

Export targets the Chrome ``trace_event`` JSON format (``traceEvents``
with ``X``/``i``/``C`` phases), loadable directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: machines map to
processes, spans to complete events on the machine's track.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ENGINE", "SpanEvent", "InstantEvent", "CounterEvent",
           "OperatorStats", "Trace", "Tracer", "NullTracer", "NULL_TRACER",
           "check_span_nesting"]

#: pseudo-machine index used for engine-global (cluster-wide) events
ENGINE = -1


@dataclass
class SpanEvent:
    """One completed span: an interval on ``machine``'s simulated clock."""

    name: str
    machine: int
    t0: float
    t1: float
    args: Mapping[str, Any] | None = None

    @property
    def duration_s(self) -> float:
        """Span length in simulated seconds."""
        return self.t1 - self.t0

    def arg(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into ``args``."""
        return self.args.get(key, default) if self.args else default


@dataclass
class InstantEvent:
    """A point event on ``machine``'s simulated clock."""

    name: str
    machine: int
    ts: float
    args: Mapping[str, Any] | None = None


@dataclass
class CounterEvent:
    """A sampled counter value (queue depth, cache occupancy, ...)."""

    name: str
    machine: int
    ts: float
    values: Mapping[str, float] = field(default_factory=dict)


class Trace:
    """The recorded events of one engine run, plus aggregation helpers.

    ``max_events`` bounds total retained events: once exceeded, the
    **oldest event (in append order) is dropped first**, deterministically,
    and counted in :attr:`dropped_events` (exported in ``to_chrome``
    metadata).  Long serving runs pass a cap so ``--trace`` memory cannot
    grow without limit; engine runs default to unbounded.
    """

    def __init__(self, num_machines: int = 0,
                 max_events: int | None = None):
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.num_machines = num_machines
        self.max_events = max_events
        self.dropped_events = 0
        self.spans: deque[SpanEvent] = deque()
        self.instants: deque[InstantEvent] = deque()
        self.counters: deque[CounterEvent] = deque()
        #: append order of events (0=span, 1=instant, 2=counter) so the
        #: cap drops strictly oldest-first across the three streams
        self._order: deque[int] = deque()
        #: operator declarations: opid -> {"kind", "schema", ...}
        self.operators: dict[str, dict[str, Any]] = {}
        self.meta: dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    # -- recording -------------------------------------------------------------

    def _enforce_cap(self) -> None:
        if self.max_events is None:
            return
        while len(self._order) > self.max_events:
            kind = self._order.popleft()
            (self.spans, self.instants, self.counters)[kind].popleft()
            self.dropped_events += 1

    def add_span(self, span: SpanEvent) -> None:
        self.spans.append(span)
        self._order.append(0)
        self._enforce_cap()

    def add_instant(self, instant: InstantEvent) -> None:
        self.instants.append(instant)
        self._order.append(1)
        self._enforce_cap()

    def add_counter(self, counter: CounterEvent) -> None:
        self.counters.append(counter)
        self._order.append(2)
        self._enforce_cap()

    # -- aggregation -----------------------------------------------------------

    def machine_spans(self, machine: int) -> list[SpanEvent]:
        """All spans on one machine's timeline."""
        return [s for s in self.spans if s.machine == machine]

    def covered_time(self, machine: int) -> float:
        """Length of the union of all span intervals on ``machine``."""
        intervals = sorted((s.t0, s.t1) for s in self.machine_spans(machine))
        covered = 0.0
        end = float("-inf")
        for t0, t1 in intervals:
            if t0 > end:
                covered += t1 - t0
                end = t1
            elif t1 > end:
                covered += t1 - end
                end = t1
        return covered

    def coverage(self, total_time_s: float,
                 per_machine_time_s: tuple[float, ...] | None = None) -> float:
        """Fraction of the run's total time covered by spans.

        Total time is the slowest machine's clock, so coverage is measured
        on the critical-path machine (the one defining ``total_time_s``).
        """
        if total_time_s <= 0:
            return 1.0
        if per_machine_time_s:
            critical = max(range(len(per_machine_time_s)),
                           key=per_machine_time_s.__getitem__)
        else:
            critical = max(range(max(1, self.num_machines)),
                           key=self.covered_time)
        return min(1.0, self.covered_time(critical) / total_time_s)

    def per_operator(self) -> "dict[str, OperatorStats]":
        """Aggregate spans into per-operator totals (keyed by opid)."""
        stats: dict[str, OperatorStats] = {}
        for opid, decl in self.operators.items():
            stats[opid] = OperatorStats(opid=opid,
                                        kind=str(decl.get("kind", "")),
                                        schema=tuple(decl.get("schema", ())))
        for s in self.spans:
            opid = s.arg("op")
            if opid is None:
                continue
            st = stats.get(opid)
            if st is None:
                st = stats[opid] = OperatorStats(opid=opid, kind="", schema=())
            if s.name == "fetch":
                st.fetch_time_s += s.duration_s
                st.cache_hits += int(s.arg("hits", 0))
                st.cache_misses += int(s.arg("misses", 0))
            elif s.name == "intersect":
                st.intersect_time_s += s.duration_s
            elif s.name == "schedule":
                st.schedule_time_s += s.duration_s
            elif s.name == "build":
                st.build_time_s += s.duration_s
            elif s.name == "probe":
                st.probe_time_s += s.duration_s
            else:
                st.time_s += s.duration_s
                st.batches += 1
                st.tuples_in += int(s.arg("in", 0))
                st.tuples_out += int(s.arg("out", 0))
                st.bytes += int(s.arg("bytes", 0))
        return stats

    def per_machine(self) -> list[float]:
        """Covered span time per machine (busy-time series)."""
        return [self.covered_time(m) for m in range(self.num_machines)]

    def per_worker_ops(self) -> dict[int, list[tuple[float, tuple[float, ...]]]]:
        """Per-machine time series of cumulative per-worker busy ops,
        sampled from the ``worker ops`` counter events."""
        series: dict[int, list[tuple[float, tuple[float, ...]]]] = {}
        for c in self.counters:
            if c.name != "worker ops":
                continue
            values = tuple(v for _, v in sorted(c.values.items()))
            series.setdefault(c.machine, []).append((c.ts, values))
        return series

    # -- export ----------------------------------------------------------------

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome ``trace_event`` representation (Perfetto-loadable).

        Machines become processes; the engine-global pseudo-machine gets
        its own process after the real ones.  Timestamps are microseconds
        of simulated time.
        """
        k = self.num_machines
        engine_pid = k

        def pid(machine: int) -> int:
            return engine_pid if machine == ENGINE else machine

        events: list[dict[str, Any]] = []
        for m in range(k):
            events.append({"ph": "M", "name": "process_name", "pid": m,
                           "tid": 0, "args": {"name": f"machine {m}"}})
        events.append({"ph": "M", "name": "process_name", "pid": engine_pid,
                       "tid": 0, "args": {"name": "engine"}})
        for s in self.spans:
            ev: dict[str, Any] = {
                "ph": "X", "name": s.name, "pid": pid(s.machine), "tid": 0,
                "ts": s.t0 * 1e6, "dur": (s.t1 - s.t0) * 1e6,
            }
            if s.args:
                ev["args"] = dict(s.args)
            events.append(ev)
        for i in self.instants:
            ev = {"ph": "i", "name": i.name, "pid": pid(i.machine), "tid": 0,
                  "ts": i.ts * 1e6, "s": "t"}
            if i.args:
                ev["args"] = dict(i.args)
            events.append(ev)
        for c in self.counters:
            events.append({"ph": "C", "name": c.name, "pid": pid(c.machine),
                           "tid": 0, "ts": c.ts * 1e6,
                           "args": dict(c.values)})
        other = dict(self.meta)
        other["operators"] = self.operators
        other["dropped_events"] = self.dropped_events
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": other}

    def save(self, path: str) -> None:
        """Write the Chrome trace_event JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")


@dataclass
class OperatorStats:
    """Aggregated actuals for one dataflow operator."""

    opid: str
    kind: str
    schema: tuple[int, ...]
    time_s: float = 0.0
    fetch_time_s: float = 0.0
    intersect_time_s: float = 0.0
    schedule_time_s: float = 0.0
    build_time_s: float = 0.0
    probe_time_s: float = 0.0
    batches: int = 0
    tuples_in: int = 0
    tuples_out: int = 0
    bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fetch-stage hit rate of this operator (0 when it never fetched)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class Tracer:
    """Records spans/instants/counters against the simulated clock.

    Bind it to a run's :class:`~repro.cluster.metrics.Metrics` (the engine
    does this) and pass it to ``HugeEngine.run(tracer=...)``.
    """

    enabled = True

    def __init__(self, max_events: int | None = None) -> None:
        self.trace = Trace(max_events=max_events)
        self._metrics = None

    def bind(self, metrics) -> None:
        """Attach to the metrics ledger whose clocks timestamp events."""
        self._metrics = metrics
        self.trace.num_machines = metrics.num_machines

    # -- clock -----------------------------------------------------------------

    def now(self, machine: int) -> float:
        """Current simulated time on ``machine`` (cluster elapsed time for
        the engine-global pseudo-machine)."""
        if machine == ENGINE:
            return self._metrics.elapsed()
        return self._metrics.machine_time(machine)

    def now_all(self) -> list[float]:
        """Snapshot of every machine's clock."""
        return [self._metrics.machine_time(m)
                for m in range(self.trace.num_machines)]

    def bytes_moved(self, machine: int) -> int:
        """Cumulative bytes sent+received by ``machine`` (for span args)."""
        m = self._metrics.machines[machine]
        return m.bytes_sent + m.bytes_received

    # -- recording -------------------------------------------------------------

    def complete(self, name: str, machine: int, t0: float, t1: float,
                 args: Mapping[str, Any] | None = None) -> None:
        """Record a completed span with explicit bounds."""
        self.trace.add_span(SpanEvent(name, machine, t0, t1, args))

    def instant(self, name: str, machine: int,
                args: Mapping[str, Any] | None = None) -> None:
        """Record a point event at the machine's current time."""
        self.trace.add_instant(
            InstantEvent(name, machine, self.now(machine), args))

    def counter(self, name: str, machine: int,
                values: Mapping[str, float]) -> None:
        """Record a counter sample at the machine's current time."""
        self.trace.add_counter(
            CounterEvent(name, machine, self.now(machine), dict(values)))

    def declare_operator(self, opid: str, kind: str,
                         schema: tuple[int, ...],
                         **extra: Any) -> None:
        """Register a dataflow operator so aggregations can report it even
        if it never processes a batch."""
        self.trace.operators[opid] = {"kind": kind, "schema": list(schema),
                                      **extra}


class NullTracer:
    """The default no-op tracer: every method returns immediately.

    ``enabled`` is ``False`` so instrumented code can skip building
    argument dicts; the engine's hot path stays allocation-free.
    """

    enabled = False
    trace = None

    def bind(self, metrics) -> None:  # noqa: D102 - no-op protocol
        pass

    def now(self, machine: int) -> float:
        return 0.0

    def now_all(self) -> list[float]:
        return []

    def bytes_moved(self, machine: int) -> int:
        return 0

    def complete(self, name, machine, t0, t1, args=None) -> None:
        pass

    def instant(self, name, machine, args=None) -> None:
        pass

    def counter(self, name, machine, values) -> None:
        pass

    def declare_operator(self, opid, kind, schema, **extra) -> None:
        pass


#: shared no-op tracer instance (stateless, safe to reuse everywhere)
NULL_TRACER = NullTracer()


def check_span_nesting(trace: Trace) -> list[str]:
    """Verify spans strictly nest per machine timeline.

    Two spans on the same machine must be disjoint or one must contain the
    other (sharing endpoints is allowed).  Returns human-readable
    violation descriptions (empty = well-nested).
    """
    violations: list[str] = []
    by_machine: dict[int, list[SpanEvent]] = {}
    for s in trace.spans:
        by_machine.setdefault(s.machine, []).append(s)
    for machine, spans in by_machine.items():
        ordered = sorted(spans, key=lambda s: (s.t0, -s.t1))
        stack: list[SpanEvent] = []
        for s in ordered:
            while stack and stack[-1].t1 <= s.t0:
                stack.pop()
            if stack and s.t1 > stack[-1].t1:
                p = stack[-1]
                violations.append(
                    f"machine {machine}: span {s.name!r} "
                    f"[{s.t0:.9f}, {s.t1:.9f}] partially overlaps "
                    f"{p.name!r} [{p.t0:.9f}, {p.t1:.9f}]")
                continue
            stack.append(s)
    return violations
