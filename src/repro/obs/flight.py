"""Per-query flight recorder: bounded event rings, slow-query log,
dump-on-crash.

Aggregate metrics (:mod:`repro.obs.metrics`) answer "how is the service
doing?"; the flight recorder answers "why was *this* query slow?" after
the fact.  Every request owns a :class:`QueryFlight` — a short structured
event list (admission → queue → dispatch → plan → execute → stream →
terminal, plus crash/retry/cancel instants) timestamped on the service's
wall clock.  Completed flights are retained in a bounded ring
(deterministic oldest-first drop, a ``dropped`` counter preserved), so a
long-running service holds a fixed-size black box of its recent history.

Two capture paths survive the ring:

* **slow-query log** — a query whose end-to-end latency exceeds
  ``deadline_fraction`` of its deadline (or an absolute
  ``slow_threshold_s``) has its full span breakdown (queue wait / plan /
  execute / stream and every raw event) copied into a bounded
  ``slow_queries`` list at completion time.
* **dump-on-crash** — a worker crash snapshots the victim query's
  events-so-far into ``crash_dumps`` immediately, so the flight survives
  even if the retry later completes (or the ring wraps).

Export is JSONL — one JSON object per event with the owning query's
``seq``/``label`` inlined — via :meth:`FlightRecorder.dump`.

The recorder is thread-safe and purely observational: it never touches
request state, the admission ledger, or the simulated cost model.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["FlightEvent", "QueryFlight", "FlightRecorder"]


@dataclass
class FlightEvent:
    """One structured event on a query's timeline (wall-clock seconds
    since the recorder's epoch)."""

    ts: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"ts": self.ts, "kind": self.kind, **self.data}


@dataclass
class QueryFlight:
    """The recorded lifecycle of one request."""

    seq: int
    label: str
    tenant: str = "default"
    deadline_s: float | None = None
    status: str | None = None
    events: list[FlightEvent] = field(default_factory=list)

    def phase_seconds(self) -> dict[str, float]:
        """Span breakdown derived from event timestamps: time between
        consecutive lifecycle events, keyed ``<from>→<to>``-style by the
        phase that elapsed (``queued``, ``plan``, ``execute``, ...)."""
        out: dict[str, float] = {}
        prev: FlightEvent | None = None
        for ev in self.events:
            if prev is not None:
                # the gap *ending* at this event belongs to the phase the
                # query was in since the previous event
                out[prev.kind] = out.get(prev.kind, 0.0) + (ev.ts - prev.ts)
            prev = ev
        return out

    @property
    def total_s(self) -> float:
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].ts - self.events[0].ts

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "label": self.label,
            "tenant": self.tenant,
            "deadline_s": self.deadline_s,
            "status": self.status,
            "total_s": self.total_s,
            "phases": self.phase_seconds(),
            "events": [e.as_dict() for e in self.events],
        }


class FlightRecorder:
    """Bounded per-query event recorder for the serving tier."""

    def __init__(self, capacity: int = 256,
                 slow_log_capacity: int = 64,
                 crash_dump_capacity: int = 64,
                 deadline_fraction: float = 0.8,
                 slow_threshold_s: float | None = None,
                 clock: Callable[[], float] | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < deadline_fraction:
            raise ValueError("deadline_fraction must be positive")
        self.capacity = capacity
        self.slow_log_capacity = slow_log_capacity
        self.crash_dump_capacity = crash_dump_capacity
        self.deadline_fraction = deadline_fraction
        self.slow_threshold_s = slow_threshold_s
        self._clock = clock or time.perf_counter
        self._t0 = self._clock()
        self._lock = threading.Lock()
        #: live (in-progress) flights, keyed by request seq
        self._active: dict[int, QueryFlight] = {}
        #: completed flights, oldest first (the bounded ring)
        self._done: OrderedDict[int, QueryFlight] = OrderedDict()
        self.dropped = 0
        self.slow_queries: list[dict[str, Any]] = []
        self.slow_dropped = 0
        self.crash_dumps: list[dict[str, Any]] = []
        self.crash_dropped = 0

    def now(self) -> float:
        """Seconds since the recorder's epoch."""
        return self._clock() - self._t0

    # -- recording -------------------------------------------------------------

    def begin(self, seq: int, label: str, tenant: str = "default",
              deadline_s: float | None = None,
              **data: Any) -> None:
        """Open a flight for request ``seq`` with an ``admitted`` event."""
        flight = QueryFlight(seq=seq, label=label, tenant=tenant,
                             deadline_s=deadline_s)
        flight.events.append(FlightEvent(self.now(), "admitted", dict(data)))
        with self._lock:
            self._active[seq] = flight

    def event(self, seq: int, kind: str, **data: Any) -> None:
        """Append one event to an open flight (unknown seq is a no-op —
        recording must never throw into the service's control flow)."""
        ts = self.now()
        with self._lock:
            flight = self._active.get(seq)
            if flight is not None:
                flight.events.append(FlightEvent(ts, kind, dict(data)))

    def crash(self, seq: int, **data: Any) -> None:
        """Record a worker crash and snapshot the flight immediately."""
        self.event(seq, "crash", **data)
        with self._lock:
            flight = self._active.get(seq)
            if flight is None:
                return
            if len(self.crash_dumps) >= self.crash_dump_capacity:
                self.crash_dumps.pop(0)
                self.crash_dropped += 1
            self.crash_dumps.append(flight.as_dict())

    def finish(self, seq: int, status: str, **data: Any) -> None:
        """Close a flight: terminal event, ring insertion, slow-query
        capture."""
        ts = self.now()
        with self._lock:
            flight = self._active.pop(seq, None)
            if flight is None:
                return
            flight.status = status
            flight.events.append(FlightEvent(ts, status, dict(data)))
            self._done[seq] = flight
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
                self.dropped += 1
            threshold = self.slow_threshold_s
            if flight.deadline_s is not None:
                frac = self.deadline_fraction * flight.deadline_s
                threshold = frac if threshold is None else min(threshold,
                                                               frac)
            if threshold is not None and flight.total_s >= threshold:
                if len(self.slow_queries) >= self.slow_log_capacity:
                    self.slow_queries.pop(0)
                    self.slow_dropped += 1
                record = flight.as_dict()
                record["slow_threshold_s"] = threshold
                self.slow_queries.append(record)

    # -- introspection ---------------------------------------------------------

    def get(self, seq: int) -> QueryFlight | None:
        """The flight for ``seq`` (active or retained), if any."""
        with self._lock:
            return self._active.get(seq) or self._done.get(seq)

    def flights(self) -> list[QueryFlight]:
        """Retained completed flights, oldest first."""
        with self._lock:
            return list(self._done.values())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "active": len(self._active),
                "retained": len(self._done),
                "dropped": self.dropped,
                "slow_queries": len(self.slow_queries),
                "slow_dropped": self.slow_dropped,
                "crash_dumps": len(self.crash_dumps),
                "crash_dropped": self.crash_dropped,
            }

    # -- export ----------------------------------------------------------------

    def iter_jsonl(self) -> Iterator[str]:
        """One JSON line per event of every retained (then active) flight."""
        with self._lock:
            flights = list(self._done.values()) + list(self._active.values())
        for flight in flights:
            for ev in flight.events:
                rec = {"seq": flight.seq, "label": flight.label,
                       "tenant": flight.tenant, **ev.as_dict()}
                yield json.dumps(rec, sort_keys=True)

    def dump(self, path: str) -> int:
        """Write the JSONL ring to ``path``; returns the line count."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.iter_jsonl():
                fh.write(line + "\n")
                n += 1
        return n
