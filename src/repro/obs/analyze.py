"""``explain --analyze``: run a query under tracing and annotate the plan.

Each plan node is matched to the dataflow operator that produces its
partial results (by output schema), then shown with the optimiser's
cardinality estimate next to the traced actuals — tuples, batches,
simulated time (split into fetch/intersect for ``PULL-EXTEND``), bytes
moved and cache hit rate.  This is the span-level evidence behind the
paper's §4–§5 arguments, per plan node instead of per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .trace import OperatorStats, Tracer

__all__ = ["NodeActuals", "AnalyzeReport", "analyze"]


@dataclass
class NodeActuals:
    """One plan node's estimate vs traced actuals."""

    label: str
    opid: str | None
    kind: str
    est_cardinality: float
    stats: OperatorStats | None

    def render(self) -> list[str]:
        """The indented lines describing this node."""
        head = f"{self.label}"
        if self.opid is None:
            return [head, "    (never materialised — fused into a pulling "
                          "extend)"]
        st = self.stats
        head += f"  ->  {self.opid} [{self.kind}]"
        lines = [head]
        lines.append(f"    est |R| = {self.est_cardinality:.4g}"
                     f"    actual = {st.tuples_out} tuples"
                     f" in {st.batches} batches")
        time_bits = [f"time {st.time_s:.6f}s"]
        if st.fetch_time_s or st.intersect_time_s:
            time_bits.append(f"(fetch {st.fetch_time_s:.6f}s"
                             f" + intersect {st.intersect_time_s:.6f}s)")
        if st.build_time_s or st.probe_time_s:
            time_bits.append(f"(build {st.build_time_s:.6f}s"
                             f" + probe {st.probe_time_s:.6f}s)")
        lines.append("    " + " ".join(time_bits)
                     + f"  bytes {st.bytes}")
        accesses = st.cache_hits + st.cache_misses
        if accesses:
            lines.append(f"    cache hit-rate {st.cache_hit_rate:.1%}"
                         f" ({st.cache_hits}/{accesses})")
        return lines


@dataclass
class AnalyzeReport:
    """The full ``explain --analyze`` output for one traced run."""

    result: Any
    rows: list[NodeActuals]
    coverage: float

    def render(self) -> str:
        """Human-readable report."""
        r = self.result
        lines = [r.plan.describe(), "", "analyze (estimate vs traced run):"]
        for row in self.rows:
            lines.extend("  " + ln for ln in row.render())
        lines.append("")
        rep = r.report
        lines.append(
            f"  matches: {r.count}   total {rep.total_time_s:.6f}s "
            f"(compute {rep.compute_time_s:.6f}s, "
            f"comm {rep.comm_time_s:.6f}s)")
        lines.append(
            f"  comm {rep.bytes_transferred} bytes in {rep.messages} msgs   "
            f"peak mem {rep.peak_memory_bytes:.0f} bytes   "
            f"cache hit-rate {rep.cache_hit_rate:.1%}")
        lines.append(f"  span coverage of critical machine: "
                     f"{self.coverage:.1%}")
        return "\n".join(lines)


def analyze(engine, query=None, plan=None) -> AnalyzeReport:
    """Run ``query``/``plan`` on ``engine`` with tracing and build the
    node-by-node estimate-vs-actual report."""
    tracer = Tracer()
    result = engine.run(query=query, plan=plan, tracer=tracer)
    trace = result.trace
    stats = trace.per_operator()
    # declaration order == chain order (segments post-order, then source ->
    # extends); a plan node maps to the LAST operator with its vertex set,
    # so verify extends and pulling-join rewrites resolve to the operator
    # that finishes the node's partial results
    decls = list(trace.operators.items())

    def find_op(vertices) -> str | None:
        target = set(vertices)
        match = None
        for opid, decl in decls:
            if set(decl.get("schema", ())) == target:
                match = opid
        return match

    def fmt(sub) -> str:
        return "{" + ",".join(f"{u}-{v}" for u, v in sorted(sub.edges)) + "}"

    join_no = {id(n): i for i, n in enumerate(result.plan.joins(), 1)}
    rows: list[NodeActuals] = []
    for node in result.plan.root.nodes():
        if node.is_leaf:
            label = f"unit {fmt(node.sub)}"
        else:
            label = f"J{join_no[id(node)]} {fmt(node.sub)} {node.setting}"
        pattern, _ = node.sub.to_query_graph()
        est = engine.estimator.estimate(pattern)
        opid = find_op(node.sub.vertices)
        rows.append(NodeActuals(
            label=label,
            opid=opid,
            kind=trace.operators[opid]["kind"] if opid else "",
            est_cardinality=est,
            stats=stats.get(opid) if opid else None,
        ))
    coverage = trace.coverage(result.report.total_time_s,
                              result.report.per_machine_time_s)
    return AnalyzeReport(result=result, rows=rows, coverage=coverage)
