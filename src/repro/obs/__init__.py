"""Observability: structured tracing and run introspection.

:mod:`repro.obs.trace` records span/instant/counter events against the
simulated clock and exports Chrome ``trace_event`` JSON (Perfetto);
:mod:`repro.obs.analyze` runs a query under tracing and annotates the
plan with actuals next to the optimiser's estimates (``explain
--analyze``).
"""

from .trace import (ENGINE, NULL_TRACER, CounterEvent, InstantEvent,
                    NullTracer, OperatorStats, SpanEvent, Trace, Tracer,
                    check_span_nesting)

__all__ = [
    "ENGINE",
    "NULL_TRACER",
    "CounterEvent",
    "InstantEvent",
    "NullTracer",
    "OperatorStats",
    "SpanEvent",
    "Trace",
    "Tracer",
    "check_span_nesting",
]
