"""Observability: tracing, metrics, and per-query flight recording.

:mod:`repro.obs.trace` records span/instant/counter events against the
simulated clock and exports Chrome ``trace_event`` JSON (Perfetto);
:mod:`repro.obs.analyze` runs a query under tracing and annotates the
plan with actuals next to the optimiser's estimates (``explain
--analyze``); :mod:`repro.obs.metrics` is the labelled
Counter/Gauge/Histogram registry with Prometheus text exposition and
JSON snapshots; :mod:`repro.obs.bridge` aggregates the engine's span
stream into that registry; :mod:`repro.obs.flight` is the serving tier's
bounded per-query flight recorder with slow-query log and dump-on-crash.
"""

from .bridge import MetricsTracer, record_census, record_result
from .flight import FlightEvent, FlightRecorder, QueryFlight
from .metrics import (DEFAULT_SIZE_BUCKETS, DEFAULT_TIME_BUCKETS, REGISTRY,
                      Counter, Gauge, Histogram, MetricsRegistry,
                      check_exposition, log_buckets)
from .trace import (ENGINE, NULL_TRACER, CounterEvent, InstantEvent,
                    NullTracer, OperatorStats, SpanEvent, Trace, Tracer,
                    check_span_nesting)

__all__ = [
    "ENGINE",
    "NULL_TRACER",
    "REGISTRY",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "CounterEvent",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "MetricsTracer",
    "NullTracer",
    "OperatorStats",
    "QueryFlight",
    "SpanEvent",
    "Trace",
    "Tracer",
    "check_exposition",
    "check_span_nesting",
    "log_buckets",
    "record_census",
    "record_result",
]
