"""Bridge from the engine's span instrumentation to the metrics registry.

The engine hot path is already instrumented for tracing: every scheduler
round, SCAN/PULL-EXTEND/VERIFY/JOIN-OUT batch, fetch/intersect stage and
steal/yield/backtrack instant flows through the
:class:`~repro.obs.trace.Tracer` protocol, timestamped on the simulated
clocks, and that path is proven bit-identical to an untraced run.
:class:`MetricsTracer` reuses those exact hook points: it implements the
tracer protocol but **aggregates instead of recording** — span durations
land in log-bucket histograms, batch rows/bytes in size histograms,
fetch hits/misses in counters — so memory stays O(metric families)
instead of O(events), and a metrics-enabled run inherits the tracer
path's bit-identity guarantee (the golden metric grid is asserted
unchanged with this tracer attached).

Pass ``inner=Tracer()`` to record a full span trace *and* metrics in one
run (``--trace`` + ``--metrics``); events are then forwarded after
aggregation.

:func:`record_result` adds the end-of-run aggregates (match count,
simulated T/T_R/T_C/C/M, cache hit rate) that only exist once the run
finishes; :func:`record_census` does the same for the motif-census
workload's memo counters.
"""

from __future__ import annotations

from typing import Any, Mapping

from .metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from .trace import Tracer

__all__ = ["MetricsTracer", "record_result", "record_census"]

#: operator-batch span names (carry ``in``/``out``/``bytes`` args)
_BATCH_SPANS = frozenset(("SCAN", "JOIN-OUT", "PULL-EXTEND", "VERIFY"))


class MetricsTracer(Tracer):
    """A tracer that feeds a :class:`MetricsRegistry` instead of a trace.

    Attach with ``engine.run(query, tracer=MetricsTracer(registry))``;
    the same instance can be reused across runs (counters accumulate).
    """

    enabled = True

    def __init__(self, registry: MetricsRegistry,
                 inner: Tracer | None = None):
        super().__init__()
        self.registry = registry
        self.inner = inner
        if inner is not None:
            self.trace = inner.trace

        self._span_seconds = registry.histogram(
            "engine_span_seconds",
            "simulated duration of engine spans by span name",
            ("name",), time_base="sim")
        self._batch_rows = registry.histogram(
            "engine_batch_rows", "rows per operator batch (output side)",
            ("op",), buckets=DEFAULT_SIZE_BUCKETS)
        self._rounds = registry.counter(
            "engine_scheduler_rounds_total",
            "operator scheduling rounds executed (one per machine sweep)")
        self._rounds_child = self._rounds.labels()
        self._cache = registry.counter(
            "engine_cache_requests_total",
            "PULL-EXTEND neighbour fetches by cache outcome", ("result",))
        self._cache_hit = self._cache.labels("hit")
        self._cache_miss = self._cache.labels("miss")
        self._events = registry.counter(
            "engine_events_total",
            "engine instant events (yield/backtrack/steal/evict/...)",
            ("kind",))
        self._bytes = registry.counter(
            "engine_batch_bytes_total",
            "bytes moved by operator batches (simulated wire accounting)")
        self._bytes_child = self._bytes.labels()
        self._tuples = registry.counter(
            "engine_tuples_total", "tuples entering/leaving operator "
            "batches", ("direction",))
        self._tuples_in = self._tuples.labels("in")
        self._tuples_out = self._tuples.labels("out")
        # per-label child handles, resolved once per distinct name
        self._span_children: dict[str, Any] = {}
        self._rows_children: dict[str, Any] = {}
        self._event_children: dict[str, Any] = {}

    # -- tracer protocol -------------------------------------------------------

    def bind(self, metrics) -> None:
        super().bind(metrics)
        if self.inner is not None:
            self.inner.bind(metrics)

    def complete(self, name: str, machine: int, t0: float, t1: float,
                 args: Mapping[str, Any] | None = None) -> None:
        child = self._span_children.get(name)
        if child is None:
            child = self._span_children[name] = \
                self._span_seconds.labels(name)
        self._span_seconds.observe_child(child, t1 - t0)
        if name in _BATCH_SPANS:
            rc = self._rows_children.get(name)
            if rc is None:
                rc = self._rows_children[name] = self._batch_rows.labels(name)
            if args:
                out = args.get("out")
                if out is not None:
                    self._batch_rows.observe_child(rc, out)
                    self._tuples.inc_child(self._tuples_out, out)
                n_in = args.get("in")
                if n_in is not None:
                    self._tuples.inc_child(self._tuples_in, n_in)
                nbytes = args.get("bytes")
                if nbytes:
                    self._bytes.inc_child(self._bytes_child, nbytes)
        elif name == "fetch" and args:
            hits = args.get("hits", 0)
            misses = args.get("misses", 0)
            if hits:
                self._cache.inc_child(self._cache_hit, hits)
            if misses:
                self._cache.inc_child(self._cache_miss, misses)
        elif name == "schedule":
            self._rounds.inc_child(self._rounds_child)
        if self.inner is not None:
            self.inner.complete(name, machine, t0, t1, args)

    def instant(self, name: str, machine: int,
                args: Mapping[str, Any] | None = None) -> None:
        child = self._event_children.get(name)
        if child is None:
            child = self._event_children[name] = self._events.labels(name)
        self._events.inc_child(child)
        if self.inner is not None:
            self.inner.instant(name, machine, args)

    def counter(self, name: str, machine: int,
                values: Mapping[str, float]) -> None:
        # sampled sim counters (queue depths, worker ops) stay trace-only:
        # they are per-machine time series, not aggregates
        if self.inner is not None:
            self.inner.counter(name, machine, values)

    def declare_operator(self, opid: str, kind: str,
                         schema: tuple[int, ...], **extra: Any) -> None:
        if self.inner is not None:
            self.inner.declare_operator(opid, kind, schema, **extra)
        else:
            super().declare_operator(opid, kind, schema, **extra)


def record_result(registry: MetricsRegistry, result) -> None:
    """Record an :class:`~repro.core.engine.EnumerationResult`'s
    end-of-run aggregates into ``registry``."""
    report = result.report
    registry.counter("engine_runs_total", "completed engine runs").inc()
    registry.counter("engine_matches_total",
                     "symmetry-broken matches enumerated").inc(result.count)
    sim = registry.counter(
        "engine_sim_seconds_total",
        "simulated time accumulated across runs", ("component",),
        time_base="sim")
    sim.inc_child(sim.labels("total"), report.total_time_s)
    sim.inc_child(sim.labels("compute"), report.compute_time_s)
    sim.inc_child(sim.labels("comm"), report.comm_time_s)
    registry.counter("engine_bytes_transferred_total",
                     "simulated bytes shipped between machines").inc(
        report.bytes_transferred)
    registry.counter("engine_messages_total",
                     "simulated inter-machine messages").inc(report.messages)
    registry.gauge("engine_last_cache_hit_rate",
                   "fetch-stage cache hit rate of the last run").set(
        result.cache_hit_rate)
    registry.gauge("engine_last_peak_memory_bytes",
                   "peak simulated machine memory of the last run").set(
        report.peak_memory_bytes)


def record_census(registry: MetricsRegistry, census) -> None:
    """Record a :class:`~repro.apps.mining.CensusResult`'s counters."""
    registry.counter("census_runs_total", "completed census runs").inc()
    registry.counter("census_subgraphs_total",
                     "connected k-subgraphs enumerated").inc(
        census.total_subgraphs)
    memo = registry.counter("census_canonical_total",
                            "canonicaliser activity", ("result",))
    memo.inc_child(memo.labels("call"), census.canonical_calls)
    memo.inc_child(memo.labels("memo_hit"), census.memo_hits)
    registry.gauge("census_classes",
                   "isomorphism classes in the last census").set(
        len(census.counts))
