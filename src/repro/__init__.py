"""HUGE: an efficient and scalable subgraph enumeration system.

Python reproduction of Yang, Lai, Lin, Hao & Zhang, SIGMOD 2021.

Subpackages
-----------
``repro.graph``
    CSR graph storage, generators, partitioning, datasets.
``repro.query``
    Query patterns, symmetry breaking, cardinality estimation.
``repro.cluster``
    The simulated shared-nothing cluster: cost model, metrics, RPC.
``repro.core``
    HUGE itself: optimiser (Algorithm 1), dataflow translation
    (Algorithm 2), LRBU cache (Algorithm 3), two-stage PULL-EXTEND
    (Algorithm 4), DFS/BFS-adaptive scheduler (Algorithm 5), work
    stealing, and the engine façade.
``repro.baselines``
    SEED, BiGJoin, BENU, RADS, the external KV store, and the brute-force
    reference enumerator.
``repro.apps``
    §6 applications: shortest paths, hop-constrained paths, mining.
"""

from .api import count_subgraphs, enumerate_subgraphs, make_cluster
from .cluster import Cluster, CostModel, OutOfMemoryError, OvertimeError
from .core import EngineConfig, EnumerationResult, HugeEngine
from .graph import Graph, load_dataset
from .query import QueryGraph, get_query

__version__ = "1.0.0"

__all__ = [
    "count_subgraphs",
    "enumerate_subgraphs",
    "make_cluster",
    "Cluster",
    "CostModel",
    "OutOfMemoryError",
    "OvertimeError",
    "EngineConfig",
    "EnumerationResult",
    "HugeEngine",
    "Graph",
    "load_dataset",
    "QueryGraph",
    "get_query",
    "__version__",
]
