"""Edge-list file I/O.

Real deployments load SNAP/WebGraph-style edge lists; the loaders here
accept the common "one edge per line, whitespace- or comma-separated,
``#``-comments" format used by the SNAP datasets the paper downloads.
"""

from __future__ import annotations

import os
from typing import TextIO

from .builder import GraphBuilder
from .graph import Graph

__all__ = ["load_edge_list", "save_edge_list"]


def _parse_stream(stream: TextIO, relabel: bool) -> Graph:
    builder = GraphBuilder(relabel=relabel)
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected two vertex ids, got {line!r}")
        u, v = parts[0], parts[1]
        if relabel:
            builder.add_edge(u, v)
        else:
            builder.add_edge(int(u), int(v))
    return builder.build()


def load_edge_list(path: str | os.PathLike, relabel: bool = True) -> Graph:
    """Load an undirected graph from an edge-list text file.

    Parameters
    ----------
    path:
        File with one edge per line; ``#`` or ``%`` lines are comments.
    relabel:
        When true, vertex tokens may be arbitrary strings and are assigned
        dense IDs in first-seen order; when false they must be integers and
        are used as-is.
    """
    with open(path, "r", encoding="utf-8") as f:
        return _parse_stream(f, relabel)


def save_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write each undirected edge once as ``u v`` per line."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v in graph.edges():
            f.write(f"{u} {v}\n")
