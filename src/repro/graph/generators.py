"""Synthetic graph generators.

The paper evaluates on seven real-world graphs (Table 3) spanning three
families: social networks (LJ, OR, FS — heavy-tailed degree, high
clustering), web graphs (GO, UK, CW — extreme hub vertices), and a road
network (EU — near-uniform low degree).  The generators below produce
scaled-down graphs with the same degree character so the benchmark harness
can reproduce the *shape* of the paper's results:

* :func:`erdos_renyi` — uniform random baseline.
* :func:`barabasi_albert` — preferential attachment; power-law tail like
  the social graphs.
* :func:`power_law_cluster` — preferential attachment with triad closure,
  adding the clustering that drives clique-query cost.
* :func:`hub_web` — a web-graph analogue with a small set of very
  high-degree hubs on top of a sparse background (UK's ``d_max`` is ~12000×
  its ``d_avg``; CW's ~1.7M×).
* :func:`road_grid` — 2D lattice with random perturbations; max degree ≈ 4
  as in EU-road.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "power_law_cluster",
    "hub_web",
    "road_grid",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "path_graph",
]


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) uniform random graph."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    iu = np.triu_indices(n, k=1)
    mask = rng.random(len(iu[0])) < p
    edges = np.stack([iu[0][mask], iu[1][mask]], axis=1)
    return Graph.from_edges(map(tuple, edges), num_vertices=n)


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Barabási–Albert preferential attachment: each new vertex attaches to
    ``m`` existing vertices chosen proportional to degree.

    Produces the power-law degree tail characteristic of social graphs.
    """
    if m < 1 or n < m + 1:
        raise ValueError(f"need n > m >= 1, got n={n}, m={m}")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    # repeated-nodes list: each vertex appears once per incident edge,
    # so uniform sampling from it is degree-proportional sampling.
    repeated: list[int] = list(range(m + 1))
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            edges.append((u, v))
            repeated.extend((u, v))
    for u in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(repeated[rng.integers(len(repeated))])
        for v in targets:
            edges.append((u, v))
            repeated.extend((u, v))
    return Graph.from_edges(edges, num_vertices=n)


def power_law_cluster(n: int, m: int, triad_p: float = 0.5, seed: int = 0) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but after each preferential attachment,
    with probability ``triad_p`` the next link closes a triangle with a
    neighbour of the previous target.  High clustering makes clique and
    near-clique queries (q3 and friends) produce realistic result volumes.
    """
    if not 0.0 <= triad_p <= 1.0:
        raise ValueError(f"triad_p must be in [0, 1], got {triad_p}")
    if m < 1 or n < m + 1:
        raise ValueError(f"need n > m >= 1, got n={n}, m={m}")
    rng = np.random.default_rng(seed)
    adj: list[set[int]] = [set() for _ in range(n)]
    repeated: list[int] = list(range(m + 1))

    def link(a: int, b: int) -> None:
        if a != b and b not in adj[a]:
            adj[a].add(b)
            adj[b].add(a)
            repeated.extend((a, b))

    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            link(u, v)
    for u in range(m + 1, n):
        added = 0
        last_target = -1
        while added < m:
            if last_target >= 0 and rng.random() < triad_p and adj[last_target]:
                # triad closure: connect to a random neighbour of the
                # previous target, forming a triangle.
                cand = list(adj[last_target])
                v = cand[rng.integers(len(cand))]
            else:
                v = repeated[rng.integers(len(repeated))]
            if v != u and v not in adj[u]:
                link(u, v)
                last_target = v
                added += 1
    edges = [(u, v) for u in range(n) for v in adj[u] if u < v]
    return Graph.from_edges(edges, num_vertices=n)


def hub_web(n: int, num_hubs: int, hub_degree: int, background_m: int = 2,
            seed: int = 0) -> Graph:
    """Web-graph analogue: a sparse power-law background plus ``num_hubs``
    vertices wired to ``hub_degree`` random vertices each.

    Reproduces the extreme ``d_max / d_avg`` skew of UK and CW, which is
    what stresses load balancing (Exp-8) and makes static heuristics OOM.
    """
    if num_hubs >= n:
        raise ValueError("num_hubs must be smaller than n")
    if hub_degree >= n:
        raise ValueError("hub_degree must be smaller than n")
    rng = np.random.default_rng(seed)
    base = barabasi_albert(n, background_m, seed=seed)
    edges = list(base.edges())
    hubs = rng.choice(n, size=num_hubs, replace=False)
    for h in hubs:
        targets = rng.choice(n, size=hub_degree, replace=False)
        for t in targets:
            if int(t) != int(h):
                edges.append((int(h), int(t)))
    return Graph.from_edges(edges, num_vertices=n)


def road_grid(rows: int, cols: int, extra_p: float = 0.02, drop_p: float = 0.05,
              seed: int = 0) -> Graph:
    """Road-network analogue: a ``rows × cols`` lattice with a few random
    shortcut edges added and a few lattice edges dropped.

    Max degree stays tiny (EU-road has ``d_max = 20``), so pulling-based
    plans touch very few remote vertices per partial result.
    """
    rng = np.random.default_rng(seed)
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols and rng.random() >= drop_p:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows and rng.random() >= drop_p:
                edges.append((vid(r, c), vid(r + 1, c)))
    num_extra = int(extra_p * n)
    for _ in range(num_extra):
        u, v = rng.integers(n), rng.integers(n)
        if u != v:
            edges.append((int(u), int(v)))
    return Graph.from_edges(edges, num_vertices=n)


# -- tiny deterministic shapes (useful for tests and docs) ------------------

def complete_graph(n: int) -> Graph:
    """K_n."""
    return Graph.from_edges(
        [(u, v) for u in range(n) for v in range(u + 1, n)], num_vertices=n)


def star_graph(leaves: int) -> Graph:
    """A star with vertex 0 as the root and ``leaves`` leaf vertices."""
    return Graph.from_edges([(0, i) for i in range(1, leaves + 1)],
                            num_vertices=leaves + 1)


def cycle_graph(n: int) -> Graph:
    """C_n."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return Graph.from_edges([(i, (i + 1) % n) for i in range(n)],
                            num_vertices=n)


def path_graph(n: int) -> Graph:
    """P_n: a simple path on ``n`` vertices."""
    return Graph.from_edges([(i, i + 1) for i in range(n - 1)],
                            num_vertices=n)
