"""Compressed-sparse-row (CSR) graph storage.

The data graph in HUGE is an unlabelled, undirected, simple graph stored in
CSR format (paper §7.1: "we partition and store the data graph in the
compressed sparse row (CSR) format and keep them in-memory").  Vertices are
dense integer IDs ``0 .. n-1``; each adjacency list is sorted ascending so
that set intersections (the inner loop of worst-case-optimal joins) can be
computed by linear merges, and membership tests by binary search.

``Graph`` is immutable after construction.  Neighbour access returns a
read-only numpy *view* into the CSR ``indices`` array — no copy is made,
mirroring the zero-copy design goal of the paper's cache layer.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["Graph"]


class Graph:
    """An immutable undirected graph in CSR form.

    Parameters
    ----------
    indptr:
        CSR row-pointer array of length ``n + 1``.
    indices:
        CSR column-index array; ``indices[indptr[u]:indptr[u+1]]`` are the
        neighbours of ``u``, sorted ascending.

    Use :func:`Graph.from_edges` (or :mod:`repro.graph.builder`) to build a
    graph from an edge list rather than calling the constructor directly.
    """

    __slots__ = ("_indptr", "_indices", "_composite")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("malformed CSR: bad indptr bounds")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("malformed CSR: indptr must be non-decreasing")
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        #: lazily built sorted ``u * n + v`` edge-composite index, cached
        #: here (and shm-preloaded in process workers) because it derives
        #: purely from the immutable CSR arrays
        self._composite: np.ndarray | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], num_vertices: int | None = None
    ) -> "Graph":
        """Build a graph from an iterable of undirected edges.

        Self-loops are dropped and duplicate edges collapsed.  If
        ``num_vertices`` is not given it is inferred as ``max id + 1``.
        """
        pairs = np.asarray(
            [(u, v) for (u, v) in edges if u != v], dtype=np.int64
        ).reshape(-1, 2)
        if pairs.size:
            both = np.vstack([pairs, pairs[:, ::-1]])
            both = np.unique(both, axis=0)
            src, dst = both[:, 0], both[:, 1]
            n = int(both.max()) + 1
        else:
            src = dst = np.empty(0, dtype=np.int64)
            n = 0
        if num_vertices is not None:
            if num_vertices < n:
                raise ValueError(
                    f"num_vertices={num_vertices} smaller than max id + 1 = {n}"
                )
            n = num_vertices
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # `both` is sorted lexicographically by (src, dst), so dst is already
        # grouped by src with each group ascending — exactly CSR order.
        return cls(indptr, dst)

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "Graph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return cls(np.zeros(num_vertices + 1, dtype=np.int64),
                   np.empty(0, dtype=np.int64))

    # -- basic accessors ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return len(self._indices) // 2

    @property
    def indptr(self) -> np.ndarray:
        """The CSR row-pointer array (read-only)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """The CSR column-index array (read-only)."""
        return self._indices

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return int(self._indptr[u + 1] - self._indptr[u])

    def neighbours(self, u: int) -> np.ndarray:
        """Sorted neighbours of ``u`` as a read-only view (zero-copy)."""
        return self._indices[self._indptr[u]:self._indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists (binary search)."""
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            return False
        nbrs = self.neighbours(u)
        i = int(np.searchsorted(nbrs, v))
        return i < len(nbrs) and nbrs[i] == v

    # -- statistics ---------------------------------------------------------

    @property
    def max_degree(self) -> int:
        """Maximum degree ``D_G``."""
        if self.num_vertices == 0:
            return 0
        return int(np.max(np.diff(self._indptr)))

    @property
    def avg_degree(self) -> float:
        """Average degree ``d̄_G``."""
        if self.num_vertices == 0:
            return 0.0
        return len(self._indices) / self.num_vertices

    def degrees(self) -> np.ndarray:
        """Array of all vertex degrees."""
        return np.diff(self._indptr)

    # -- iteration ----------------------------------------------------------

    def vertices(self) -> range:
        """Iterate vertex IDs ``0 .. n-1``."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in self.vertices():
            for v in self.neighbours(u):
                if u < v:
                    yield u, int(v)

    # -- dunder -------------------------------------------------------------

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Graph(|V|={self.num_vertices}, |E|={self.num_edges}, "
                f"D={self.max_degree})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (np.array_equal(self._indptr, other._indptr)
                and np.array_equal(self._indices, other._indices))

    def __hash__(self) -> int:
        return hash((self._indptr.tobytes(), self._indices.tobytes()))
