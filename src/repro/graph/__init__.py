"""Graph substrate: CSR storage, builders, generators, partitioning, I/O."""

from .graph import Graph
from .builder import GraphBuilder
from .partition import PartitionedGraph, hash_partition
from .datasets import DATASETS, DatasetSpec, dataset_table, load_dataset
from .io import load_edge_list, save_edge_list
from . import generators

__all__ = [
    "Graph",
    "GraphBuilder",
    "PartitionedGraph",
    "hash_partition",
    "DATASETS",
    "DatasetSpec",
    "dataset_table",
    "load_dataset",
    "load_edge_list",
    "save_edge_list",
    "generators",
]
