"""Graph substrate: CSR storage, builders, generators, partitioning, I/O."""

from .graph import Graph
from .builder import GraphBuilder
from .partition import PartitionedGraph, hash_partition
from .datasets import (DATASETS, DatasetSpec, TemporalStream, UpdateBatch,
                       dataset_table, load_dataset, temporal_edge_stream)
from .io import load_edge_list, save_edge_list
from .updates import GraphDelta, apply_updates, normalise_edges
from . import generators

__all__ = [
    "Graph",
    "GraphBuilder",
    "GraphDelta",
    "apply_updates",
    "normalise_edges",
    "TemporalStream",
    "UpdateBatch",
    "temporal_edge_stream",
    "PartitionedGraph",
    "hash_partition",
    "DATASETS",
    "DatasetSpec",
    "dataset_table",
    "load_dataset",
    "load_edge_list",
    "save_edge_list",
    "generators",
]
