"""Named synthetic stand-ins for the paper's evaluation datasets (Table 3).

The paper uses seven real graphs up to 42.5 billion edges; those are not
reachable from a pure-Python single-process reproduction, so each dataset
name maps to a deterministic synthetic generator whose *degree character*
matches the original family:

====  ===========================  ==========================  ===========
Name  Paper graph                  Family / character          Stand-in
====  ===========================  ==========================  ===========
GO    web-Google (875K/4.3M)       web, moderate hubs          hub_web
LJ    LiveJournal (4.8M/43M)       social, power-law, clustered power_law_cluster
OR    Orkut (3M/117M)              social, denser              power_law_cluster
UK    UK02 (18.5M/298M)            web, extreme hubs           hub_web
EU    EU-road (174M/348M)          road, max degree 20         road_grid
FS    Friendster (65M/1.8B)        social, largest social      power_law_cluster
CW    ClueWeb12 (978M/42.5B)       web-scale, d_max 75M        hub_web (hubbier)
====  ===========================  ==========================  ===========

Relative *scale ordering* is preserved (GO < LJ < OR < UK ≈ EU < FS < CW)
at roughly 1:10⁴ of the original vertex counts so every experiment finishes
in seconds.  ``load_dataset(name, scale=...)`` lets benchmarks grow or
shrink a dataset uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .graph import Graph
from . import generators as gen

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata + factory for one named dataset."""

    name: str
    family: str
    paper_vertices: int
    paper_edges: int
    paper_dmax: int
    paper_davg: float
    factory: Callable[[float, int], Graph]

    def load(self, scale: float = 1.0, seed: int = 7) -> Graph:
        """Build the stand-in graph at the given relative scale."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.factory(scale, seed)


def _social(n: int, m: int, triad_p: float,
            hubs: int = 2, hub_deg_frac: float = 0.3
            ) -> Callable[[float, int], Graph]:
    """Power-law clustered background plus a few celebrity hubs.

    Real social graphs have ``d_max / d_avg`` in the hundreds-to-thousands
    (LJ: 20333 vs 17.9); the clustered Holme–Kim tail alone tops out far
    lower at stand-in sizes, so celebrity vertices are wired explicitly —
    they drive the star explosion (``Σ C(d, k)``) that dominates the
    paper's join-based baselines.
    """
    def make(scale: float, seed: int) -> Graph:
        nv = max(m + 2, int(n * scale))
        base = gen.power_law_cluster(nv, m, triad_p=triad_p, seed=seed)
        if not hubs:
            return base
        import numpy as np
        rng = np.random.default_rng(seed + 1)
        edges = list(base.edges())
        hub_ids = rng.choice(nv, size=hubs, replace=False)
        hub_degree = max(4, int(nv * hub_deg_frac))
        for h in hub_ids:
            targets = rng.choice(nv, size=min(hub_degree, nv - 1),
                                 replace=False)
            edges.extend((int(h), int(t)) for t in targets if int(t) != int(h))
        return Graph.from_edges(edges, num_vertices=nv)
    return make


def _web(n: int, hubs: int, hub_deg_frac: float,
         background_m: int) -> Callable[[float, int], Graph]:
    def make(scale: float, seed: int) -> Graph:
        nv = max(16, int(n * scale))
        hub_degree = max(4, int(nv * hub_deg_frac))
        return gen.hub_web(nv, num_hubs=max(1, hubs),
                           hub_degree=min(hub_degree, nv - 1),
                           background_m=background_m, seed=seed)
    return make


def _road(rows: int, cols: int) -> Callable[[float, int], Graph]:
    def make(scale: float, seed: int) -> Graph:
        s = max(0.05, scale) ** 0.5
        return gen.road_grid(max(4, int(rows * s)), max(4, int(cols * s)),
                             seed=seed)
    return make


DATASETS: dict[str, DatasetSpec] = {
    "GO": DatasetSpec("GO", "web", 875_713, 4_322_051, 6_332, 5.0,
                      _web(n=600, hubs=5, hub_deg_frac=0.10, background_m=2)),
    "LJ": DatasetSpec("LJ", "social", 4_847_571, 43_369_619, 20_333, 17.9,
                      _social(n=1600, m=3, triad_p=0.3, hubs=20,
                              hub_deg_frac=0.10)),
    "OR": DatasetSpec("OR", "social", 3_072_441, 117_185_083, 33_313, 38.1,
                      _social(n=1000, m=5, triad_p=0.4, hubs=12,
                              hub_deg_frac=0.12)),
    "UK": DatasetSpec("UK", "web", 18_520_486, 298_113_762, 194_955, 16.1,
                      _web(n=1400, hubs=10, hub_deg_frac=0.12,
                           background_m=2)),
    "EU": DatasetSpec("EU", "road", 173_789_185, 347_997_111, 20, 3.9,
                      _road(rows=42, cols=42)),
    "FS": DatasetSpec("FS", "social", 65_608_366, 1_806_067_135, 5_214, 27.5,
                      _social(n=2000, m=3, triad_p=0.25, hubs=16,
                              hub_deg_frac=0.08)),
    "CW": DatasetSpec("CW", "web", 978_409_098, 42_574_107_469, 75_611_696, 43.5,
                      _web(n=2400, hubs=5, hub_deg_frac=0.45, background_m=2)),
}


def load_dataset(name: str, scale: float = 1.0, seed: int = 7) -> Graph:
    """Load a named stand-in dataset.

    ``scale`` multiplies the default (already scaled-down) vertex count;
    ``scale=1.0`` keeps experiments in the sub-second range.
    """
    try:
        spec = DATASETS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return spec.load(scale=scale, seed=seed)


def dataset_table(scale: float = 1.0, seed: int = 7) -> list[dict]:
    """Regenerate Table 3 rows: paper stats alongside stand-in stats."""
    rows = []
    for spec in DATASETS.values():
        g = spec.load(scale=scale, seed=seed)
        rows.append({
            "dataset": spec.name,
            "family": spec.family,
            "paper_V": spec.paper_vertices,
            "paper_E": spec.paper_edges,
            "paper_dmax": spec.paper_dmax,
            "paper_davg": spec.paper_davg,
            "standin_V": g.num_vertices,
            "standin_E": g.num_edges,
            "standin_dmax": g.max_degree,
            "standin_davg": round(g.avg_degree, 1),
        })
    return rows
