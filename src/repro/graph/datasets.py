"""Named synthetic stand-ins for the paper's evaluation datasets (Table 3).

The paper uses seven real graphs up to 42.5 billion edges; those are not
reachable from a pure-Python single-process reproduction, so each dataset
name maps to a deterministic synthetic generator whose *degree character*
matches the original family:

====  ===========================  ==========================  ===========
Name  Paper graph                  Family / character          Stand-in
====  ===========================  ==========================  ===========
GO    web-Google (875K/4.3M)       web, moderate hubs          hub_web
LJ    LiveJournal (4.8M/43M)       social, power-law, clustered power_law_cluster
OR    Orkut (3M/117M)              social, denser              power_law_cluster
UK    UK02 (18.5M/298M)            web, extreme hubs           hub_web
EU    EU-road (174M/348M)          road, max degree 20         road_grid
FS    Friendster (65M/1.8B)        social, largest social      power_law_cluster
CW    ClueWeb12 (978M/42.5B)       web-scale, d_max 75M        hub_web (hubbier)
====  ===========================  ==========================  ===========

Relative *scale ordering* is preserved (GO < LJ < OR < UK ≈ EU < FS < CW)
at roughly 1:10⁴ of the original vertex counts so every experiment finishes
in seconds.  ``load_dataset(name, scale=...)`` lets benchmarks grow or
shrink a dataset uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .graph import Graph
from .updates import apply_updates
from . import generators as gen

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_table",
           "UpdateBatch", "TemporalStream", "temporal_edge_stream"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata + factory for one named dataset."""

    name: str
    family: str
    paper_vertices: int
    paper_edges: int
    paper_dmax: int
    paper_davg: float
    factory: Callable[[float, int], Graph]

    def load(self, scale: float = 1.0, seed: int = 7) -> Graph:
        """Build the stand-in graph at the given relative scale."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.factory(scale, seed)


def _social(n: int, m: int, triad_p: float,
            hubs: int = 2, hub_deg_frac: float = 0.3
            ) -> Callable[[float, int], Graph]:
    """Power-law clustered background plus a few celebrity hubs.

    Real social graphs have ``d_max / d_avg`` in the hundreds-to-thousands
    (LJ: 20333 vs 17.9); the clustered Holme–Kim tail alone tops out far
    lower at stand-in sizes, so celebrity vertices are wired explicitly —
    they drive the star explosion (``Σ C(d, k)``) that dominates the
    paper's join-based baselines.
    """
    def make(scale: float, seed: int) -> Graph:
        nv = max(m + 2, int(n * scale))
        base = gen.power_law_cluster(nv, m, triad_p=triad_p, seed=seed)
        if not hubs:
            return base
        import numpy as np
        rng = np.random.default_rng(seed + 1)
        edges = list(base.edges())
        hub_ids = rng.choice(nv, size=hubs, replace=False)
        hub_degree = max(4, int(nv * hub_deg_frac))
        for h in hub_ids:
            targets = rng.choice(nv, size=min(hub_degree, nv - 1),
                                 replace=False)
            edges.extend((int(h), int(t)) for t in targets if int(t) != int(h))
        return Graph.from_edges(edges, num_vertices=nv)
    return make


def _web(n: int, hubs: int, hub_deg_frac: float,
         background_m: int) -> Callable[[float, int], Graph]:
    def make(scale: float, seed: int) -> Graph:
        nv = max(16, int(n * scale))
        hub_degree = max(4, int(nv * hub_deg_frac))
        return gen.hub_web(nv, num_hubs=max(1, hubs),
                           hub_degree=min(hub_degree, nv - 1),
                           background_m=background_m, seed=seed)
    return make


def _road(rows: int, cols: int) -> Callable[[float, int], Graph]:
    def make(scale: float, seed: int) -> Graph:
        s = max(0.05, scale) ** 0.5
        return gen.road_grid(max(4, int(rows * s)), max(4, int(cols * s)),
                             seed=seed)
    return make


DATASETS: dict[str, DatasetSpec] = {
    "GO": DatasetSpec("GO", "web", 875_713, 4_322_051, 6_332, 5.0,
                      _web(n=600, hubs=5, hub_deg_frac=0.10, background_m=2)),
    "LJ": DatasetSpec("LJ", "social", 4_847_571, 43_369_619, 20_333, 17.9,
                      _social(n=1600, m=3, triad_p=0.3, hubs=20,
                              hub_deg_frac=0.10)),
    "OR": DatasetSpec("OR", "social", 3_072_441, 117_185_083, 33_313, 38.1,
                      _social(n=1000, m=5, triad_p=0.4, hubs=12,
                              hub_deg_frac=0.12)),
    "UK": DatasetSpec("UK", "web", 18_520_486, 298_113_762, 194_955, 16.1,
                      _web(n=1400, hubs=10, hub_deg_frac=0.12,
                           background_m=2)),
    "EU": DatasetSpec("EU", "road", 173_789_185, 347_997_111, 20, 3.9,
                      _road(rows=42, cols=42)),
    "FS": DatasetSpec("FS", "social", 65_608_366, 1_806_067_135, 5_214, 27.5,
                      _social(n=2000, m=3, triad_p=0.25, hubs=16,
                              hub_deg_frac=0.08)),
    "CW": DatasetSpec("CW", "web", 978_409_098, 42_574_107_469, 75_611_696, 43.5,
                      _web(n=2400, hubs=5, hub_deg_frac=0.45, background_m=2)),
}


def load_dataset(name: str, scale: float = 1.0, seed: int = 7) -> Graph:
    """Load a named stand-in dataset.

    ``scale`` multiplies the default (already scaled-down) vertex count;
    ``scale=1.0`` keeps experiments in the sub-second range.
    """
    try:
        spec = DATASETS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return spec.load(scale=scale, seed=seed)


# -- temporal edge streams --------------------------------------------------


@dataclass(frozen=True)
class UpdateBatch:
    """One batch of a temporal edge stream: edges to insert and delete.

    ``inserts`` and ``deletes`` are disjoint within a batch (normalised
    ``u < v`` tuples), so replaying a batch through
    :func:`~repro.graph.updates.apply_updates` is order-independent.
    """

    inserts: tuple[tuple[int, int], ...]
    deletes: tuple[tuple[int, int], ...]

    @property
    def size(self) -> int:
        return len(self.inserts) + len(self.deletes)


@dataclass(frozen=True)
class TemporalStream:
    """A seeded, replayable edge-update stream over a fixed vertex set.

    ``base`` is the starting snapshot; replaying ``batches`` in order via
    :func:`~repro.graph.updates.apply_updates` yields a deterministic
    final graph (:meth:`final_graph`).  The vertex count never changes,
    so standing-subscription label arrays stay valid throughout.
    """

    base: Graph
    batches: tuple[UpdateBatch, ...]

    @property
    def num_updates(self) -> int:
        return sum(b.size for b in self.batches)

    def final_graph(self) -> Graph:
        """Replay every batch from the base snapshot."""
        g = self.base
        for batch in self.batches:
            g, _ = apply_updates(g, batch.inserts, batch.deletes)
        return g


def temporal_edge_stream(
    graph: Graph,
    num_updates: int,
    batch_size: int = 8,
    delete_fraction: float = 0.3,
    seed: int = 7,
    skew: float = 0.0,
) -> TemporalStream:
    """Derive a seeded temporal update stream from a final-state graph.

    Roughly ``num_updates * (1 - delete_fraction)`` edges of ``graph``
    are held out to form the base snapshot and re-inserted over the
    stream; the remaining updates delete edges present in the evolving
    graph (possibly ones inserted by an earlier batch, exercising
    retraction of previously delivered matches).  With ``skew > 0`` the
    held-out edges are sampled with probability proportional to
    ``(deg(u) + deg(v)) ** skew`` — a hub-heavy update stream whose
    deltas touch the high-degree core, the adversarial case for
    incremental enumeration.

    Within each batch inserts and deletes are disjoint; across the
    stream each operation is a real state change (no duplicate inserts
    of present edges, no deletes of absent ones).
    """
    import numpy as np

    if num_updates < 0:
        raise ValueError("num_updates must be non-negative")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError("delete_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    all_edges = sorted(graph.edges())
    num_inserts = min(len(all_edges),
                      int(round(num_updates * (1.0 - delete_fraction))))

    if num_inserts and all_edges:
        if skew > 0.0:
            deg = np.diff(graph.indptr)
            arr = np.asarray(all_edges, dtype=np.int64)
            w = (deg[arr[:, 0]] + deg[arr[:, 1]]).astype(np.float64) ** skew
            p = w / w.sum()
        else:
            p = None
        held_idx = rng.choice(len(all_edges), size=num_inserts,
                              replace=False, p=p)
        held_out = [all_edges[i] for i in sorted(held_idx.tolist())]
    else:
        held_out = []
    held_set = set(held_out)
    current = set(all_edges) - held_set
    base = Graph.from_edges(sorted(current), num_vertices=graph.num_vertices)

    # interleave the re-inserts with deletes of currently-present edges
    insert_queue = list(held_out)
    rng.shuffle(insert_queue)
    ops: list[UpdateBatch] = []
    remaining = num_updates
    while remaining > 0:
        ins: list[tuple[int, int]] = []
        dels: list[tuple[int, int]] = []
        for _ in range(min(batch_size, remaining)):
            want_insert = insert_queue and (
                rng.random() >= delete_fraction or not current)
            if want_insert:
                ins.append(insert_queue.pop())
            else:
                # delete a present edge not touched earlier in this batch
                pool = sorted(current - set(ins) - set(dels))
                if not pool:
                    if insert_queue:
                        ins.append(insert_queue.pop())
                    continue
                dels.append(pool[int(rng.integers(len(pool)))])
        if not ins and not dels:
            break
        for e in ins:
            current.add(e)
        for e in dels:
            current.discard(e)
        remaining -= len(ins) + len(dels)
        ops.append(UpdateBatch(tuple(sorted(ins)), tuple(sorted(dels))))
    return TemporalStream(base=base, batches=tuple(ops))


def dataset_table(scale: float = 1.0, seed: int = 7) -> list[dict]:
    """Regenerate Table 3 rows: paper stats alongside stand-in stats."""
    rows = []
    for spec in DATASETS.values():
        g = spec.load(scale=scale, seed=seed)
        rows.append({
            "dataset": spec.name,
            "family": spec.family,
            "paper_V": spec.paper_vertices,
            "paper_E": spec.paper_edges,
            "paper_dmax": spec.paper_dmax,
            "paper_davg": spec.paper_davg,
            "standin_V": g.num_vertices,
            "standin_E": g.num_edges,
            "standin_dmax": g.max_degree,
            "standin_davg": round(g.avg_degree, 1),
        })
    return rows
