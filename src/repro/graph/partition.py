"""Random vertex partitioning of the data graph.

Paper §2 (*Graph Storage*): "We randomly partition a data graph G in a
distributed context as most existing works.  For each vertex u ∈ V_G, we
store it with its adjacency list (u; N(u)) in one of the partitions."

A vertex whose adjacency list lives in the local partition is a *local
vertex*; all others are *remote* and must be pulled (via the ``GetNbrs``
RPC) or reached by pushing partial results to their owner.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .graph import Graph

__all__ = ["hash_partition", "PartitionedGraph"]


def hash_partition(num_vertices: int, num_partitions: int,
                   seed: int = 0) -> np.ndarray:
    """Assign each vertex to a partition pseudo-randomly but deterministically.

    Returns an array ``owner`` with ``owner[v]`` ∈ ``[0, num_partitions)``.
    A seeded permutation-based hash is used instead of ``v % k`` so that
    partition sizes are balanced regardless of any structure in vertex IDs.
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(num_vertices) if num_vertices else np.empty(0, np.int64)
    return (perm % num_partitions).astype(np.int64)


class PartitionedGraph:
    """A data graph split across ``k`` machines by vertex ownership.

    Every machine holds the adjacency lists of the vertices it owns.  The
    full CSR stays materialised once in-process (this is a simulation of a
    shared-nothing cluster, not a multi-host deployment); accesses are
    routed through :meth:`neighbours_local` so that the simulated runtime
    cannot accidentally read a remote adjacency list without paying for it.
    """

    def __init__(self, graph: Graph, num_partitions: int, seed: int = 0,
                 owner: np.ndarray | None = None):
        if owner is None:
            owner = hash_partition(graph.num_vertices, num_partitions, seed)
        owner = np.asarray(owner, dtype=np.int64)
        if len(owner) != graph.num_vertices:
            raise ValueError("owner array must have one entry per vertex")
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if len(owner) and (owner.min() < 0 or owner.max() >= num_partitions):
            raise ValueError("owner ids out of range")
        self._graph = graph
        self._num_partitions = num_partitions
        self._owner = owner
        self._owner.setflags(write=False)
        self._locals: list[np.ndarray] = [
            np.flatnonzero(owner == p).astype(np.int64)
            for p in range(num_partitions)
        ]

    # -- topology-wide accessors (used by planners / estimators only) -------

    @property
    def graph(self) -> Graph:
        """The underlying global graph (planner/estimator use only)."""
        return self._graph

    @property
    def num_partitions(self) -> int:
        """Number of partitions (machines) ``k``."""
        return self._num_partitions

    @property
    def owner(self) -> np.ndarray:
        """Vertex → owning partition array (read-only)."""
        return self._owner

    # -- per-partition API ---------------------------------------------------

    def owner_of(self, v: int) -> int:
        """Partition that owns vertex ``v``."""
        return int(self._owner[v])

    def is_local(self, v: int, partition: int) -> bool:
        """Whether ``v``'s adjacency list resides on ``partition``."""
        return int(self._owner[v]) == partition

    def local_vertices(self, partition: int) -> np.ndarray:
        """Sorted array of vertices owned by ``partition``."""
        return self._locals[partition]

    def neighbours_local(self, v: int, partition: int) -> np.ndarray:
        """Adjacency list of ``v``, readable only by its owner.

        Raises ``KeyError`` if ``partition`` does not own ``v`` — remote
        reads must go through the RPC layer so communication is accounted.
        """
        if int(self._owner[v]) != partition:
            raise KeyError(
                f"vertex {v} is remote to partition {partition} "
                f"(owned by {int(self._owner[v])}); use GetNbrs")
        return self._graph.neighbours(v)

    def local_edges(self, partition: int) -> Iterable[tuple[int, int]]:
        """Iterate directed edges ``(u, v)`` with ``u`` owned by ``partition``.

        This is the SCAN operator's raw input: each machine scans the
        adjacency lists in its own partition (paper §4.2).
        """
        for u in self._locals[partition]:
            u = int(u)
            for v in self._graph.neighbours(u):
                yield u, int(v)

    def partition_size_bytes(self, partition: int, bytes_per_id: int = 8) -> int:
        """Approximate in-memory size of a partition's CSR slice."""
        deg = sum(self._graph.degree(int(u)) for u in self._locals[partition])
        return (deg + len(self._locals[partition])) * bytes_per_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PartitionedGraph(k={self._num_partitions}, "
                f"|V|={self._graph.num_vertices}, |E|={self._graph.num_edges})")
