"""Incremental construction of :class:`~repro.graph.graph.Graph`.

``GraphBuilder`` accumulates edges (deduplicating, dropping self-loops) and
optionally relabels arbitrary hashable vertex names to dense integer IDs.
It is the ingestion path used by the file loaders in :mod:`repro.graph.io`
and by tests that assemble small graphs by hand.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from .graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulate undirected edges and produce an immutable :class:`Graph`.

    Parameters
    ----------
    relabel:
        When true (default), vertex names may be arbitrary hashable values
        and are assigned dense integer IDs in first-seen order.  When false,
        vertices must already be non-negative integers.
    """

    def __init__(self, relabel: bool = True):
        self._relabel = relabel
        self._ids: dict[Hashable, int] = {}
        self._edges: set[tuple[int, int]] = set()
        self._max_id = -1

    def _vertex_id(self, name: Hashable) -> int:
        if self._relabel:
            vid = self._ids.get(name)
            if vid is None:
                vid = len(self._ids)
                self._ids[name] = vid
        else:
            vid = int(name)  # type: ignore[arg-type]
            if vid < 0:
                raise ValueError(f"vertex id must be non-negative, got {vid}")
        self._max_id = max(self._max_id, vid)
        return vid

    def add_vertex(self, name: Hashable) -> int:
        """Register an (possibly isolated) vertex; returns its integer ID."""
        return self._vertex_id(name)

    def add_edge(self, u: Hashable, v: Hashable) -> "GraphBuilder":
        """Add the undirected edge ``(u, v)``; self-loops are ignored."""
        ui, vi = self._vertex_id(u), self._vertex_id(v)
        if ui != vi:
            self._edges.add((min(ui, vi), max(ui, vi)))
        return self

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> "GraphBuilder":
        """Add many undirected edges."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges added so far."""
        return len(self._edges)

    @property
    def vertex_ids(self) -> dict[Hashable, int]:
        """Mapping of original vertex names to assigned IDs (relabel mode)."""
        return dict(self._ids)

    def build(self) -> Graph:
        """Materialise the accumulated edges as an immutable CSR graph."""
        return Graph.from_edges(self._edges, num_vertices=self._max_id + 1)
