"""Versioned update path for the immutable CSR graph.

:class:`~repro.graph.graph.Graph` snapshots never mutate; a streaming
update batch instead produces a *new* snapshot plus a compact
:class:`GraphDelta` describing exactly which undirected edges changed.
Batch semantics are set-based with deletes winning inside a batch:

    ``E' = (E ∪ I) \\ D``

so inserting an edge that is then deleted in the same batch is a net
no-op, inserting an already-present edge contributes nothing, and
deleting an absent edge contributes nothing.  The delta records only the
*effective* changes — ``inserted = E' \\ E`` and ``deleted = E \\ E'`` —
which is what the incremental enumeration core in
:mod:`repro.stream.delta` consumes (per-batch work proportional to
``|Δ|``, not ``|E|``).

Edges are normalised to ``(u, v)`` with ``u < v``; self-loops are
dropped, duplicates collapse.  Inserts may reference vertex IDs beyond
the current snapshot — the new snapshot grows to fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .graph import Graph

__all__ = ["GraphDelta", "apply_updates", "normalise_edges"]

Edge = tuple[int, int]


def normalise_edges(edges: Iterable[Edge]) -> set[Edge]:
    """Normalise an edge iterable to a set of ``(u, v)`` with ``u < v``.

    Self-loops are dropped and duplicates collapse; negative vertex IDs
    are rejected.
    """
    out: set[Edge] = set()
    for u, v in edges:
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise ValueError(f"negative vertex id in edge ({u}, {v})")
        if u == v:
            continue
        out.add((u, v) if u < v else (v, u))
    return out


@dataclass(frozen=True)
class GraphDelta:
    """The effective change set of one update batch.

    ``inserted`` holds edges present after but not before the batch;
    ``deleted`` holds edges present before but not after.  Both are
    normalised ``u < v`` tuples in sorted order, and the two sets are
    disjoint by construction.
    """

    inserted: tuple[Edge, ...]
    deleted: tuple[Edge, ...]

    @property
    def size(self) -> int:
        """``|Δ|`` — total number of changed edges."""
        return len(self.inserted) + len(self.deleted)

    @property
    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    def as_dict(self) -> dict:
        return {
            "inserted": [list(e) for e in self.inserted],
            "deleted": [list(e) for e in self.deleted],
        }


def _edge_array(graph: Graph) -> np.ndarray:
    """All undirected edges of ``graph`` as an ``(m, 2)`` array, u < v."""
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    dst = graph.indices
    mask = src < dst
    return np.stack([src[mask], dst[mask]], axis=1)


def apply_updates(
    graph: Graph,
    inserts: Iterable[Edge] = (),
    deletes: Iterable[Edge] = (),
) -> tuple[Graph, GraphDelta]:
    """Apply one update batch, returning ``(new_snapshot, delta)``.

    The input snapshot is untouched.  ``E' = (E ∪ I) \\ D`` — deletes
    win within the batch; the returned delta contains only effective
    changes (see module docstring).
    """
    ins = normalise_edges(inserts)
    dels = normalise_edges(deletes)
    eff_del = sorted(e for e in dels if graph.has_edge(*e))
    eff_ins = sorted(
        e for e in ins if e not in dels and not graph.has_edge(*e)
    )
    delta = GraphDelta(tuple(eff_ins), tuple(eff_del))

    n = graph.num_vertices
    if eff_ins:
        n = max(n, max(v for _, v in eff_ins) + 1)
    if delta.is_empty:
        # nothing changed: reuse the snapshot (callers still get a fresh
        # version number from the serving tier if they registered it)
        return graph, delta

    pairs = _edge_array(graph)
    if eff_del:
        keys = pairs[:, 0] * n + pairs[:, 1]
        del_arr = np.asarray(eff_del, dtype=np.int64)
        del_keys = del_arr[:, 0] * n + del_arr[:, 1]
        pairs = pairs[~np.isin(keys, del_keys)]
    if eff_ins:
        pairs = np.concatenate(
            [pairs, np.asarray(eff_ins, dtype=np.int64)], axis=0)
    new_graph = Graph.from_edges(pairs, num_vertices=n)
    return new_graph, delta
