"""Top-level convenience API.

For quick use::

    from repro import enumerate_subgraphs, count_subgraphs
    from repro.graph import generators

    g = generators.barabasi_albert(500, 4, seed=1)
    n = count_subgraphs(g, "q1")                 # squares
    result = enumerate_subgraphs(g, "triangle", num_machines=4)
    print(result.count, result.report.total_time_s)

Everything here wraps the full system: a simulated cluster is built, the
query planned by Algorithm 1, and executed by the hybrid engine with the
adaptive scheduler.  For fine-grained control use
:class:`repro.core.HugeEngine` directly.
"""

from __future__ import annotations

from dataclasses import replace

from .cluster.cluster import Cluster
from .cluster.cost import CostModel
from .core.engine import EngineConfig, EnumerationResult, HugeEngine
from .graph.graph import Graph
from .query.pattern import QueryGraph, get_query

__all__ = ["enumerate_subgraphs", "count_subgraphs", "make_cluster"]


def _as_query(query: QueryGraph | str) -> QueryGraph:
    if isinstance(query, str):
        return get_query(query)
    return query


def make_cluster(graph: Graph, num_machines: int = 4,
                 workers_per_machine: int = 4,
                 cost: CostModel | None = None, seed: int = 0) -> Cluster:
    """Build a simulated cluster over ``graph``."""
    return Cluster(graph, num_machines=num_machines,
                   workers_per_machine=workers_per_machine,
                   cost=cost, seed=seed)


def enumerate_subgraphs(graph: Graph, query: QueryGraph | str,
                        num_machines: int = 4, workers_per_machine: int = 4,
                        collect: bool = False,
                        config: EngineConfig | None = None,
                        cost: CostModel | None = None,
                        seed: int = 0) -> EnumerationResult:
    """Enumerate all instances of ``query`` in ``graph`` with HUGE.

    Parameters
    ----------
    graph:
        The data graph.
    query:
        A :class:`~repro.query.pattern.QueryGraph` or a benchmark query
        name (``"q1"`` .. ``"q8"``, ``"triangle"``).
    num_machines / workers_per_machine:
        Simulated cluster shape.
    collect:
        Keep the matched tuples on the result (``result.matches``).
    config / cost:
        Engine and cost-model overrides.
    seed:
        Graph partitioning seed.

    Returns
    -------
    EnumerationResult
        With ``count``, ``matches`` (if collected), the executed ``plan``
        and the paper-style metrics ``report``.
    """
    cluster = make_cluster(graph, num_machines, workers_per_machine, cost,
                           seed)
    if config is None:
        config = EngineConfig(collect_results=collect)
    elif collect and not config.collect_results:
        # never mutate the caller's config object
        config = replace(config, collect_results=True)
    engine = HugeEngine(cluster, config)
    return engine.run(_as_query(query))


def count_subgraphs(graph: Graph, query: QueryGraph | str,
                    num_machines: int = 4, **kwargs) -> int:
    """Number of instances of ``query`` in ``graph`` (via the full engine)."""
    return enumerate_subgraphs(graph, query, num_machines=num_machines,
                               **kwargs).count
