"""Serving-semantics oracles for :mod:`repro.serve`.

The conformance oracles in :mod:`repro.testing.oracles` check one engine
run; these check a whole **service run** — a :class:`DriverReport` (or a
service + its outcomes directly) — against the serving tier's contract:

* ``accounted`` — every submitted request reached exactly one terminal
  state (completed + cancelled + failed + rejected = submitted) and no
  handle saw a duplicate terminal delivery (``delivery_violations == 0``
  — the no-lost/no-duplicated-results invariant, including across
  worker-crash retries);
* ``ledger`` — the admission ledger drained back to zero after the run
  and never double-released (``underflows == 0``);
* ``solo-identical`` — every completed query's count and collected
  match multiset (and, where the engine result is available, its full
  simulated metrics report) is bit-identical to the same request
  executed solo through :func:`~repro.serve.service.run_query_solo` —
  concurrency, share-group execution and result-cache hits must not
  change what any query computes.  Requests that executed in a share
  group (``shared_group > 1``) or were served from the result cache
  skip only the metrics-report comparison: their report is the group's
  shared ledger (or absent), but count and matches must still be
  bit-identical;
* ``crash-recovered`` — every injected crash was observed
  (``worker_crashes >= injected``) and recovered: a crashed query either
  completed on a retry (``attempts > 1``) or failed only after
  exhausting its retry budget.
"""

from __future__ import annotations

from ..graph.graph import Graph
from ..query.pattern import QueryGraph, get_query
from ..serve.driver import DriverReport
from ..serve.request import QueryStatus
from ..serve.service import run_query_solo
from .oracles import OracleFailure

__all__ = ["SERVING_ORACLES", "check_service_run", "check_driver_report"]

#: serving oracle names, in checking order
SERVING_ORACLES = ("accounted", "ledger", "solo-identical", "crash-recovered")


def _canonical_rows(pattern, rows):
    """Matches rebased from the request's vertex order to canonical
    order — isomorphic requests' solo runs agree in this frame."""
    resolved = pattern if isinstance(pattern, QueryGraph) \
        else get_query(pattern)
    _, mapping = resolved.canonical_form()
    n = resolved.num_vertices
    out = []
    for r in rows:
        c = [0] * n
        for v in range(n):
            c[mapping[v]] = r[v]
        out.append(tuple(c))
    return sorted(out)


def check_service_run(service, requests, outcomes, graph: Graph,
                      injected_crashes: int = 0,
                      check_solo: bool = True,
                      default_config=None) -> list[OracleFailure]:
    """Check one drained service run; returns violated invariants.

    ``service`` must be stopped (drained); ``requests``/``outcomes`` are
    the parallel submitted/terminal lists.
    """
    failures: list[OracleFailure] = []
    stats = service.stats()

    terminal = (stats.completed + stats.cancelled + stats.failed
                + stats.rejected)
    if terminal != stats.submitted:
        failures.append(OracleFailure(
            "accounted",
            f"{stats.submitted} submitted but {terminal} terminal "
            f"({stats.completed}C/{stats.cancelled}X/{stats.failed}F/"
            f"{stats.rejected}R)"))
    if stats.delivery_violations:
        failures.append(OracleFailure(
            "accounted",
            f"{stats.delivery_violations} duplicate terminal deliveries"))
    for req, outcome in zip(requests, outcomes):
        if not outcome.status.terminal:
            failures.append(OracleFailure(
                "accounted", f"{req.label} ended non-terminal: "
                f"{outcome.status.value}"))

    if stats.reserved_bytes != 0.0:
        failures.append(OracleFailure(
            "ledger", f"admission ledger holds {stats.reserved_bytes}B "
            f"after drain (expected 0)"))
    underflows = stats.admission.get("underflows", 0)
    if underflows:
        failures.append(OracleFailure(
            "ledger", f"{underflows} admission double-releases"))

    if check_solo:
        solo_cache: dict[tuple, object] = {}
        for req, outcome in zip(requests, outcomes):
            if outcome.status is not QueryStatus.COMPLETED:
                continue
            # collect changes the engine's allocation profile, so a
            # count-only request must not reuse a collecting solo run
            key = (outcome.canonical_key, req.num_machines,
                   req.workers_per_machine, req.partition_seed, req.collect)
            cached = solo_cache.get(key)
            if cached is None:
                cached = (run_query_solo(graph, req,
                                         default_config=default_config),
                          req.pattern)
                solo_cache[key] = cached
            solo, solo_pattern = cached
            if outcome.count != solo.count:
                failures.append(OracleFailure(
                    "solo-identical",
                    f"{req.label}: served {outcome.count} != solo "
                    f"{solo.count}"))
                continue
            served_matches = outcome.collected
            if (served_matches is not None and solo.collected is not None
                    and _canonical_rows(req.pattern, served_matches)
                    != _canonical_rows(solo_pattern, solo.collected)):
                failures.append(OracleFailure(
                    "solo-identical",
                    f"{req.label}: served match multiset differs from solo"))
            elif (outcome.result is not None
                  and outcome.shared_group == 1
                  and not outcome.result_cache_hit
                  and outcome.result.report.as_dict()
                  != solo.result.report.as_dict()):
                failures.append(OracleFailure(
                    "solo-identical",
                    f"{req.label}: simulated metrics differ from solo"))

    if injected_crashes:
        if stats.worker_crashes < injected_crashes:
            failures.append(OracleFailure(
                "crash-recovered",
                f"{injected_crashes} crashes injected but only "
                f"{stats.worker_crashes} observed"))
        for req, outcome in zip(requests, outcomes):
            if outcome.status is QueryStatus.COMPLETED:
                continue
            if (outcome.status is QueryStatus.FAILED
                    and "crashed" in (outcome.error or "")
                    and outcome.attempts <= service.max_retries):
                failures.append(OracleFailure(
                    "crash-recovered",
                    f"{req.label} failed after {outcome.attempts} attempts "
                    f"with retries left"))
    return failures


def check_driver_report(report: DriverReport) -> list[OracleFailure]:
    """The subset of serving oracles checkable from a serialised
    :class:`DriverReport` (accounting, ledger, recorded verification)."""
    failures: list[OracleFailure] = []
    svc = report.service
    terminal = sum(report.counts_by_status.values())
    if terminal != svc["submitted"]:
        failures.append(OracleFailure(
            "accounted", f"{svc['submitted']} submitted, {terminal} "
            f"terminal outcomes"))
    if svc["delivery_violations"]:
        failures.append(OracleFailure(
            "accounted",
            f"{svc['delivery_violations']} duplicate deliveries"))
    if svc["reserved_bytes"] != 0.0:
        failures.append(OracleFailure(
            "ledger", f"ledger holds {svc['reserved_bytes']}B after drain"))
    if svc["admission"].get("underflows", 0):
        failures.append(OracleFailure(
            "ledger", f"{svc['admission']['underflows']} double-releases"))
    if report.verified is False:
        for msg in report.verify_failures:
            failures.append(OracleFailure("solo-identical", msg))
    return failures
