"""Invariant oracles checked against every conformance case.

Each oracle inspects one :class:`CaseOutcome` (what an engine run
produced) against the brute-force :class:`Reference` (ground truth) and
the workload/configuration that produced it:

* ``error`` — the engine must not crash;
* ``count`` — the symmetry-broken match count equals the reference;
* ``embeddings`` — the collected embedding *multiset* equals the
  reference's (HUGE runs; baselines only report counts);
* ``symmetry`` — ``ordered embeddings = matches × |Aut(q)|``, i.e.
  symmetry breaking keeps exactly one embedding per instance;
* ``memory-bound`` — the memory ledger never underflows (``mem_underflows
  == 0``: a ``free`` larger than the balance means double-free
  accounting), and HUGE's peak per-machine memory respects the
  Theorem 5.4 ``O(|V_q|² · D_G)`` queue bound (plus the configured
  constant reservations: cache capacity and PUSH-JOIN buffers).  The
  peak check is skipped for pure-BFS runs (infinite queues void the
  theorem's premise) and for baselines (whose unbounded intermediates
  are the paper's point);
* ``cache-overflow`` — the LRBU cache never overflows its capacity by
  more than one batch's worth of distinct remote vertices (§4.4);
* ``time-conservation`` — the report satisfies ``T = T_R + T_C`` and
  ``T = max_m T_m`` exactly (modulo float rounding).

Census specs (``engine="census"``) run a different workload — the ESU
motif census over the data graph — and are checked against their own
family of oracles, built on an *independent* brute-force classifier (the
``itertools.combinations`` sweep plus the O(k!) permutation-minimal
canonical form the census itself no longer uses):

* ``census-total`` — the census enumerated exactly as many connected
  k-subgraphs as the combinations sweep finds, and the per-class counts
  sum to that total;
* ``census-classes`` — the per-class counts match the brute-force
  classification class by class (bridged through ``canonical_key``, so a
  canonicaliser collision merges classes and trips the comparison);
* ``census-memo`` — the canonical memo's guarantee holds exactly:
  canonicaliser invocations equal the number of distinct classes seen
  and every other classification was a memo hit;
* ``census-automorphism`` — each class's brute-force automorphism count
  matches :func:`~repro.query.automorphism.automorphism_count`, and
  (when the graph is small enough to afford the ordered sweep) the
  per-class labelled-embedding count equals ``census × |Aut|`` — i.e.
  labelled counts divide by the automorphism order exactly.

Delta specs (``engine="delta"``, the incremental streaming family) end
their batch schedule at the workload graph, so their accumulated
standing matches go through the standard ``count`` / ``embeddings`` /
``symmetry`` oracles unchanged — incremental ≡ from-scratch,
bit-identically — plus one family-specific oracle:

* ``delta-once`` — per batch, no addition is emitted twice, no emitted
  addition was already standing, every retraction retracts a standing
  match, and the running count folds exactly (the
  :class:`~repro.stream.delta.IncrementalMatcher` violation counter
  stays zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, permutations
from math import comb, factorial

from ..baselines.reference import (count_ordered_embeddings,
                                   enumerate_matches)
from ..cluster.metrics import RunReport
from ..query.automorphism import automorphism_count
from ..query.pattern import QueryGraph
from .configs import EngineSpec
from .workloads import Workload

__all__ = ["CENSUS_ORACLES", "DELTA_ORACLES", "ORACLES", "CaseOutcome",
           "CensusReference", "OracleFailure", "Reference", "check_case",
           "check_census_case", "compute_census_reference",
           "compute_reference"]

#: the oracle names, in checking order
ORACLES = ("error", "count", "embeddings", "symmetry", "memory-bound",
           "cache-overflow", "time-conservation")

#: the census-family oracle names, in checking order
CENSUS_ORACLES = ("error", "census-total", "census-classes", "census-memo",
                  "census-automorphism")

#: the delta-family oracle names (checked on top of the standard ones)
DELTA_ORACLES = ("delta-once",)

#: permutation budget above which the labelled-embedding sweep of the
#: census reference is skipped (``C(n, k) · k!`` grows fast at k=5)
_CENSUS_LABELLED_BUDGET = 100_000

#: relative tolerance for simulated-time identities
_REL_TOL = 1e-9


@dataclass(frozen=True)
class OracleFailure:
    """One violated invariant."""

    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


@dataclass(frozen=True)
class Reference:
    """Brute-force ground truth for one workload."""

    count: int
    ordered_count: int
    automorphisms: int
    matches: tuple[tuple[int, ...], ...]
    """Symmetry-broken embeddings in query-vertex order, sorted."""


@dataclass
class CaseOutcome:
    """What one engine run produced (as much as the engine exposes)."""

    spec_name: str
    count: int = 0
    matches: list[tuple[int, ...]] | None = None
    report: RunReport | None = None
    num_push_joins: int = 0
    cache_overflow_ids: int = 0
    cache_reserved_ids: int = 0
    join_buffer_tuples: int = 0
    bytes_per_id: int = 8
    error: str | None = None
    failures: list[OracleFailure] = field(default_factory=list)
    # census-spec observables (None/0 on pattern-enumeration runs)
    census_total: int = 0
    census_counts: dict[str, int] | None = None
    """Per-class census counts, motif name → count."""
    census_class_keys: dict[str, str] | None = None
    """Motif name → production canonical key."""
    census_memo_hits: int = 0
    census_canon_calls: int = 0
    # delta-spec observables (None on non-incremental runs)
    delta_batches: list[dict] | None = None
    """Per-batch bookkeeping: edge/match delta sizes, duplicate/stale
    addition counters, missing-retraction counters, running count."""
    delta_violations: int = 0
    """The IncrementalMatcher's fold-time exactly-once violation count."""

    @property
    def ok(self) -> bool:
        """Whether every oracle passed."""
        return not self.failures


def compute_reference(workload: Workload) -> Reference:
    """Run the brute-force reference enumerator on a workload."""
    graph = workload.graph()
    pattern = workload.pattern()
    labels = workload.label_array()
    matches = sorted(enumerate_matches(graph, pattern, labels=labels))
    ordered = count_ordered_embeddings(graph, pattern, labels=labels)
    return Reference(
        count=len(matches),
        ordered_count=ordered,
        automorphisms=automorphism_count(pattern),
        matches=tuple(matches),
    )


# -- individual oracles --------------------------------------------------------


def _check_count(outcome: CaseOutcome, ref: Reference) -> OracleFailure | None:
    if outcome.count != ref.count:
        return OracleFailure(
            "count", f"engine counted {outcome.count} symmetry-broken "
                     f"matches, reference says {ref.count}")
    return None


def _check_embeddings(outcome: CaseOutcome,
                      ref: Reference) -> OracleFailure | None:
    if outcome.matches is None:
        return None
    got = sorted(tuple(int(x) for x in f) for f in outcome.matches)
    want = list(ref.matches)
    if got != want:
        missing = set(want) - set(got)
        extra = set(got) - set(want)
        return OracleFailure(
            "embeddings",
            f"embedding multiset diverges from reference: "
            f"{len(missing)} missing (e.g. {sorted(missing)[:3]}), "
            f"{len(extra)} unexpected (e.g. {sorted(extra)[:3]}), "
            f"{len(got)} vs {len(want)} total")
    return None


def _check_symmetry(ref: Reference) -> OracleFailure | None:
    if ref.count * ref.automorphisms != ref.ordered_count:
        return OracleFailure(
            "symmetry",
            f"symmetry breaking kept {ref.count} of {ref.ordered_count} "
            f"ordered embeddings, expected ordered/|Aut| = "
            f"{ref.ordered_count}/{ref.automorphisms}")
    return None


def _check_memory_bound(workload: Workload, spec: EngineSpec,
                        outcome: CaseOutcome) -> OracleFailure | None:
    if outcome.report is None:
        return None
    # double-free accounting invalidates every memory observable, so it is
    # checked first and regardless of queue mode or engine family
    if outcome.report.mem_underflows:
        return OracleFailure(
            "memory-bound",
            f"{outcome.report.mem_underflows} memory-ledger underflow(s): "
            f"some Metrics.free released more bytes than were allocated "
            f"(double-free accounting bug)")
    if not spec.is_huge:
        return None
    if spec.output_queue_capacity == float("inf"):
        return None  # pure BFS: the theorem's bounded-queue premise is off
    graph = workload.graph()
    q = workload.pattern_num_vertices
    deg = max(1, graph.max_degree)
    bpi = outcome.bytes_per_id
    # Theorem 5.4: every operator queue holds at most its capacity plus the
    # expansion of one in-flight batch (≤ batch · D_G tuples of ≤ |V_q| ids)
    queue_ids = (q * q) * deg * (spec.output_queue_capacity
                                 + spec.batch_size * deg)
    # configured constant reservations on top of the queue bound
    constant_ids = outcome.cache_reserved_ids
    join_ids = outcome.num_push_joins * 2 * outcome.join_buffer_tuples * q
    bound = (queue_ids + constant_ids + join_ids) * bpi
    peak = outcome.report.peak_memory_bytes
    if peak > bound:
        return OracleFailure(
            "memory-bound",
            f"peak memory {peak:.0f}B exceeds the Theorem 5.4 bound "
            f"{bound:.0f}B (|Vq|={q}, D_G={deg}, "
            f"queue={spec.output_queue_capacity}, batch={spec.batch_size})")
    return None


def _check_cache_overflow(workload: Workload, spec: EngineSpec,
                          outcome: CaseOutcome) -> OracleFailure | None:
    if not spec.is_huge:
        return None
    graph = workload.graph()
    q = workload.pattern_num_vertices
    # §4.4: Insert may overflow only while S_free is empty, i.e. by at most
    # the footprint of the in-flight batch's distinct remote vertices —
    # ≤ batch · |V_q| vertices of ≤ D_G + 1 ids each
    bound = spec.batch_size * q * (graph.max_degree + 1)
    if outcome.cache_overflow_ids > bound:
        return OracleFailure(
            "cache-overflow",
            f"LRBU overflowed capacity by {outcome.cache_overflow_ids} ids, "
            f"more than one batch's remote footprint ({bound} ids)")
    return None


def _check_time_conservation(outcome: CaseOutcome) -> OracleFailure | None:
    rep = outcome.report
    if rep is None:
        return None
    tol = _REL_TOL * max(1.0, rep.total_time_s)
    if rep.comm_time_s < 0 or rep.compute_time_s < 0:
        return OracleFailure(
            "time-conservation",
            f"negative component time: T_R={rep.compute_time_s}, "
            f"T_C={rep.comm_time_s}")
    if abs(rep.total_time_s
           - (rep.compute_time_s + rep.comm_time_s)) > tol:
        return OracleFailure(
            "time-conservation",
            f"T != T_R + T_C: {rep.total_time_s} vs "
            f"{rep.compute_time_s} + {rep.comm_time_s}")
    if rep.per_machine_time_s and abs(
            rep.total_time_s - max(rep.per_machine_time_s)) > tol:
        return OracleFailure(
            "time-conservation",
            f"T != max per-machine time: {rep.total_time_s} vs "
            f"{max(rep.per_machine_time_s)}")
    return None


def check_case(workload: Workload, spec: EngineSpec, outcome: CaseOutcome,
               ref: Reference | None) -> list[OracleFailure]:
    """Run every applicable oracle; returns the violations (empty = pass).

    Census specs are routed to the census oracle family (``ref`` is the
    pattern-enumeration ground truth and is ignored for them)."""
    if spec.is_census:
        return check_census_case(workload, spec, outcome)
    if outcome.error is not None:
        return [OracleFailure("error", outcome.error)]
    failures = []
    for failure in (
        _check_count(outcome, ref),
        _check_embeddings(outcome, ref),
        _check_symmetry(ref),
        _check_memory_bound(workload, spec, outcome),
        _check_cache_overflow(workload, spec, outcome),
        _check_time_conservation(outcome),
    ):
        if failure is not None:
            failures.append(failure)
    if spec.is_delta:
        failure = _check_delta_once(outcome)
        if failure is not None:
            failures.append(failure)
    return failures


def _check_delta_once(outcome: CaseOutcome) -> OracleFailure | None:
    """Per-batch exactly-once bookkeeping of an incremental run.

    Each batch must emit every addition once and only for matches that
    were not already standing, and every retraction exactly once for a
    match that *was* standing; the matcher's own fold must agree (zero
    violations) and the final batch's running count must equal the
    outcome's accumulated count.
    """
    if outcome.delta_violations:
        return OracleFailure(
            "delta-once", f"matcher recorded {outcome.delta_violations} "
            f"fold violations (duplicate addition or unmatched retraction)")
    records = outcome.delta_batches or []
    for i, rec in enumerate(records):
        for key in ("duplicate_additions", "duplicate_retractions",
                    "stale_additions", "missing_retractions"):
            if rec.get(key, 0):
                return OracleFailure(
                    "delta-once",
                    f"batch {i}: {rec[key]} {key.replace('_', ' ')} "
                    f"(additions={rec['additions']}, "
                    f"retractions={rec['retractions']})")
    if records and records[-1].get("count_after") != outcome.count:
        return OracleFailure(
            "delta-once",
            f"running count after final batch "
            f"({records[-1].get('count_after')}) != accumulated count "
            f"({outcome.count})")
    return None


# -- the census family ---------------------------------------------------------


#: one isomorphism class in the census reference: its permutation-minimal
#: edge list, which doubles as a representative pattern on k vertices
_ClassKey = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class CensusReference:
    """Brute-force ground truth for one size-k census workload."""

    k: int
    total: int
    """Number of connected k-vertex subsets of the data graph."""
    counts: dict[_ClassKey, int]
    """Census count per class, keyed by permutation-minimal edge list."""
    labelled_counts: dict[_ClassKey, int] | None
    """Ordered induced embedding count per class (brute-force over all
    injections), or ``None`` when the sweep exceeded the perm budget."""


def _perm_min_edges(k: int, edges: _ClassKey) -> _ClassKey:
    """Lexicographically smallest relabelling of ``edges`` over all k!
    permutations — the O(k!) canonical form the census itself no longer
    uses, kept as the oracles' independent classifier."""
    best = None
    for perm in permutations(range(k)):
        mapped = tuple(sorted(
            (perm[a], perm[b]) if perm[a] < perm[b] else (perm[b], perm[a])
            for a, b in edges))
        if best is None or mapped < best:
            best = mapped
    return best


def _edges_connected(k: int, edges: _ClassKey) -> bool:
    """Whether ``edges`` connect all ``k`` local vertices (DFS)."""
    adj: list[list[int]] = [[] for _ in range(k)]
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        for v in adj[stack.pop()]:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == k


def _map_edges(edges: _ClassKey, perm) -> frozenset:
    """``edges`` relabelled by ``perm``, as an order-free set."""
    return frozenset(
        (perm[a], perm[b]) if perm[a] < perm[b] else (perm[b], perm[a])
        for a, b in edges)


def compute_census_reference(workload: Workload, k: int) -> CensusReference:
    """Brute-force size-``k`` census of the workload's data graph.

    Sweeps every ``itertools.combinations`` k-subset, keeps the connected
    ones and classifies each by :func:`_perm_min_edges` — sharing nothing
    with the ESU walk, the bitset adjacency or the WL+BnB canonicaliser
    under test.  When ``C(n, k) · k!`` fits the permutation budget it also
    counts ordered induced embeddings per class (every injective map from
    the class representative onto a subset), which the automorphism oracle
    divides back down.
    """
    graph = workload.graph()
    n = graph.num_vertices
    adj = [frozenset(int(v) for v in graph.neighbours(u)) for u in range(n)]
    locals_ = list(combinations(range(k), 2))
    sweep = k <= n and comb(n, k) * factorial(k) <= _CENSUS_LABELLED_BUDGET
    all_perms = list(permutations(range(k))) if sweep else []
    counts: dict[_ClassKey, int] = {}
    labelled: dict[_ClassKey, int] = {}
    total = 0
    for combo in combinations(range(n), k):
        edges = tuple((i, j) for i, j in locals_
                      if combo[j] in adj[combo[i]])
        if not _edges_connected(k, edges):
            continue
        key = _perm_min_edges(k, edges)
        counts[key] = counts.get(key, 0) + 1
        total += 1
        if sweep:
            eset = frozenset(edges)
            labelled[key] = labelled.get(key, 0) + sum(
                1 for perm in all_perms if _map_edges(key, perm) == eset)
    return CensusReference(k=k, total=total, counts=counts,
                           labelled_counts=labelled if sweep else None)


def _check_census_total(outcome: CaseOutcome,
                        ref: CensusReference) -> OracleFailure | None:
    if outcome.census_total != ref.total:
        return OracleFailure(
            "census-total",
            f"census enumerated {outcome.census_total} connected "
            f"{ref.k}-subgraphs, brute force finds {ref.total}")
    if outcome.census_counts is not None \
            and sum(outcome.census_counts.values()) != outcome.census_total:
        return OracleFailure(
            "census-total",
            f"per-class counts sum to "
            f"{sum(outcome.census_counts.values())}, not the reported "
            f"total {outcome.census_total}")
    return None


def _check_census_classes(outcome: CaseOutcome,
                          ref: CensusReference) -> OracleFailure | None:
    if outcome.census_counts is None or outcome.census_class_keys is None:
        return OracleFailure(
            "census-classes", "census run exposed no per-class counts")
    key_to_name = {key: name
                   for name, key in outcome.census_class_keys.items()}
    expected = dict.fromkeys(outcome.census_counts, 0)
    for rep, count in ref.counts.items():
        prod_key = QueryGraph(ref.k, list(rep)).canonical_key()
        name = key_to_name.get(prod_key)
        if name is None:
            return OracleFailure(
                "census-classes",
                f"brute-force class {rep} canonicalises to a key unknown "
                f"to the census ({prod_key!r})")
        # += so a canonicaliser collision (two brute-force classes landing
        # on one key) inflates that class and trips the comparison below
        expected[name] += count
    diverged = {name: (outcome.census_counts.get(name), want)
                for name, want in expected.items()
                if outcome.census_counts.get(name) != want}
    if diverged:
        return OracleFailure(
            "census-classes",
            f"per-class counts diverge from brute force "
            f"(got, want): {diverged}")
    return None


def _check_census_memo(outcome: CaseOutcome,
                       ref: CensusReference) -> OracleFailure | None:
    classes = len(ref.counts)
    if outcome.census_canon_calls != classes:
        return OracleFailure(
            "census-memo",
            f"canonicaliser ran {outcome.census_canon_calls} times for "
            f"{classes} distinct classes (must be exactly once per class)")
    if outcome.census_memo_hits != ref.total - classes:
        return OracleFailure(
            "census-memo",
            f"{outcome.census_memo_hits} memo hits for {ref.total} "
            f"subgraphs over {classes} classes; every classification "
            f"after the first per class must hit")
    return None


def _check_census_automorphism(ref: CensusReference) -> OracleFailure | None:
    ident = tuple(range(ref.k))
    for rep, count in ref.counts.items():
        brute_aut = sum(1 for perm in permutations(ident)
                        if _map_edges(rep, perm) == frozenset(rep))
        prod_aut = automorphism_count(QueryGraph(ref.k, list(rep)))
        if brute_aut != prod_aut:
            return OracleFailure(
                "census-automorphism",
                f"|Aut| mismatch for class {rep}: brute force {brute_aut}, "
                f"automorphism_count says {prod_aut}")
        if ref.labelled_counts is None:
            continue
        labelled = ref.labelled_counts[rep]
        if labelled != count * brute_aut:
            return OracleFailure(
                "census-automorphism",
                f"class {rep}: {labelled} labelled embeddings != census "
                f"{count} × |Aut| {brute_aut} (labelled counts must "
                f"divide by the automorphism order exactly)")
    return None


def check_census_case(workload: Workload, spec: EngineSpec,
                      outcome: CaseOutcome,
                      ref: CensusReference | None = None
                      ) -> list[OracleFailure]:
    """Run the census oracle family on one census-spec outcome."""
    if outcome.error is not None:
        return [OracleFailure("error", outcome.error)]
    if ref is None:
        ref = compute_census_reference(workload, spec.census_k)
    return [failure for failure in (
        _check_census_total(outcome, ref),
        _check_census_classes(outcome, ref),
        _check_census_memo(outcome, ref),
        _check_census_automorphism(ref),
    ) if failure is not None]
