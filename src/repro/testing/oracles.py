"""Invariant oracles checked against every conformance case.

Each oracle inspects one :class:`CaseOutcome` (what an engine run
produced) against the brute-force :class:`Reference` (ground truth) and
the workload/configuration that produced it:

* ``error`` — the engine must not crash;
* ``count`` — the symmetry-broken match count equals the reference;
* ``embeddings`` — the collected embedding *multiset* equals the
  reference's (HUGE runs; baselines only report counts);
* ``symmetry`` — ``ordered embeddings = matches × |Aut(q)|``, i.e.
  symmetry breaking keeps exactly one embedding per instance;
* ``memory-bound`` — the memory ledger never underflows (``mem_underflows
  == 0``: a ``free`` larger than the balance means double-free
  accounting), and HUGE's peak per-machine memory respects the
  Theorem 5.4 ``O(|V_q|² · D_G)`` queue bound (plus the configured
  constant reservations: cache capacity and PUSH-JOIN buffers).  The
  peak check is skipped for pure-BFS runs (infinite queues void the
  theorem's premise) and for baselines (whose unbounded intermediates
  are the paper's point);
* ``cache-overflow`` — the LRBU cache never overflows its capacity by
  more than one batch's worth of distinct remote vertices (§4.4);
* ``time-conservation`` — the report satisfies ``T = T_R + T_C`` and
  ``T = max_m T_m`` exactly (modulo float rounding).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.reference import (count_ordered_embeddings,
                                   enumerate_matches)
from ..cluster.metrics import RunReport
from ..query.automorphism import automorphism_count
from .configs import EngineSpec
from .workloads import Workload

__all__ = ["ORACLES", "CaseOutcome", "OracleFailure", "Reference",
           "check_case", "compute_reference"]

#: the oracle names, in checking order
ORACLES = ("error", "count", "embeddings", "symmetry", "memory-bound",
           "cache-overflow", "time-conservation")

#: relative tolerance for simulated-time identities
_REL_TOL = 1e-9


@dataclass(frozen=True)
class OracleFailure:
    """One violated invariant."""

    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


@dataclass(frozen=True)
class Reference:
    """Brute-force ground truth for one workload."""

    count: int
    ordered_count: int
    automorphisms: int
    matches: tuple[tuple[int, ...], ...]
    """Symmetry-broken embeddings in query-vertex order, sorted."""


@dataclass
class CaseOutcome:
    """What one engine run produced (as much as the engine exposes)."""

    spec_name: str
    count: int = 0
    matches: list[tuple[int, ...]] | None = None
    report: RunReport | None = None
    num_push_joins: int = 0
    cache_overflow_ids: int = 0
    cache_reserved_ids: int = 0
    join_buffer_tuples: int = 0
    bytes_per_id: int = 8
    error: str | None = None
    failures: list[OracleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every oracle passed."""
        return not self.failures


def compute_reference(workload: Workload) -> Reference:
    """Run the brute-force reference enumerator on a workload."""
    graph = workload.graph()
    pattern = workload.pattern()
    labels = workload.label_array()
    matches = sorted(enumerate_matches(graph, pattern, labels=labels))
    ordered = count_ordered_embeddings(graph, pattern, labels=labels)
    return Reference(
        count=len(matches),
        ordered_count=ordered,
        automorphisms=automorphism_count(pattern),
        matches=tuple(matches),
    )


# -- individual oracles --------------------------------------------------------


def _check_count(outcome: CaseOutcome, ref: Reference) -> OracleFailure | None:
    if outcome.count != ref.count:
        return OracleFailure(
            "count", f"engine counted {outcome.count} symmetry-broken "
                     f"matches, reference says {ref.count}")
    return None


def _check_embeddings(outcome: CaseOutcome,
                      ref: Reference) -> OracleFailure | None:
    if outcome.matches is None:
        return None
    got = sorted(tuple(int(x) for x in f) for f in outcome.matches)
    want = list(ref.matches)
    if got != want:
        missing = set(want) - set(got)
        extra = set(got) - set(want)
        return OracleFailure(
            "embeddings",
            f"embedding multiset diverges from reference: "
            f"{len(missing)} missing (e.g. {sorted(missing)[:3]}), "
            f"{len(extra)} unexpected (e.g. {sorted(extra)[:3]}), "
            f"{len(got)} vs {len(want)} total")
    return None


def _check_symmetry(ref: Reference) -> OracleFailure | None:
    if ref.count * ref.automorphisms != ref.ordered_count:
        return OracleFailure(
            "symmetry",
            f"symmetry breaking kept {ref.count} of {ref.ordered_count} "
            f"ordered embeddings, expected ordered/|Aut| = "
            f"{ref.ordered_count}/{ref.automorphisms}")
    return None


def _check_memory_bound(workload: Workload, spec: EngineSpec,
                        outcome: CaseOutcome) -> OracleFailure | None:
    if outcome.report is None:
        return None
    # double-free accounting invalidates every memory observable, so it is
    # checked first and regardless of queue mode or engine family
    if outcome.report.mem_underflows:
        return OracleFailure(
            "memory-bound",
            f"{outcome.report.mem_underflows} memory-ledger underflow(s): "
            f"some Metrics.free released more bytes than were allocated "
            f"(double-free accounting bug)")
    if not spec.is_huge:
        return None
    if spec.output_queue_capacity == float("inf"):
        return None  # pure BFS: the theorem's bounded-queue premise is off
    graph = workload.graph()
    q = workload.pattern_num_vertices
    deg = max(1, graph.max_degree)
    bpi = outcome.bytes_per_id
    # Theorem 5.4: every operator queue holds at most its capacity plus the
    # expansion of one in-flight batch (≤ batch · D_G tuples of ≤ |V_q| ids)
    queue_ids = (q * q) * deg * (spec.output_queue_capacity
                                 + spec.batch_size * deg)
    # configured constant reservations on top of the queue bound
    constant_ids = outcome.cache_reserved_ids
    join_ids = outcome.num_push_joins * 2 * outcome.join_buffer_tuples * q
    bound = (queue_ids + constant_ids + join_ids) * bpi
    peak = outcome.report.peak_memory_bytes
    if peak > bound:
        return OracleFailure(
            "memory-bound",
            f"peak memory {peak:.0f}B exceeds the Theorem 5.4 bound "
            f"{bound:.0f}B (|Vq|={q}, D_G={deg}, "
            f"queue={spec.output_queue_capacity}, batch={spec.batch_size})")
    return None


def _check_cache_overflow(workload: Workload, spec: EngineSpec,
                          outcome: CaseOutcome) -> OracleFailure | None:
    if not spec.is_huge:
        return None
    graph = workload.graph()
    q = workload.pattern_num_vertices
    # §4.4: Insert may overflow only while S_free is empty, i.e. by at most
    # the footprint of the in-flight batch's distinct remote vertices —
    # ≤ batch · |V_q| vertices of ≤ D_G + 1 ids each
    bound = spec.batch_size * q * (graph.max_degree + 1)
    if outcome.cache_overflow_ids > bound:
        return OracleFailure(
            "cache-overflow",
            f"LRBU overflowed capacity by {outcome.cache_overflow_ids} ids, "
            f"more than one batch's remote footprint ({bound} ids)")
    return None


def _check_time_conservation(outcome: CaseOutcome) -> OracleFailure | None:
    rep = outcome.report
    if rep is None:
        return None
    tol = _REL_TOL * max(1.0, rep.total_time_s)
    if rep.comm_time_s < 0 or rep.compute_time_s < 0:
        return OracleFailure(
            "time-conservation",
            f"negative component time: T_R={rep.compute_time_s}, "
            f"T_C={rep.comm_time_s}")
    if abs(rep.total_time_s
           - (rep.compute_time_s + rep.comm_time_s)) > tol:
        return OracleFailure(
            "time-conservation",
            f"T != T_R + T_C: {rep.total_time_s} vs "
            f"{rep.compute_time_s} + {rep.comm_time_s}")
    if rep.per_machine_time_s and abs(
            rep.total_time_s - max(rep.per_machine_time_s)) > tol:
        return OracleFailure(
            "time-conservation",
            f"T != max per-machine time: {rep.total_time_s} vs "
            f"{max(rep.per_machine_time_s)}")
    return None


def check_case(workload: Workload, spec: EngineSpec, outcome: CaseOutcome,
               ref: Reference) -> list[OracleFailure]:
    """Run every applicable oracle; returns the violations (empty = pass)."""
    if outcome.error is not None:
        return [OracleFailure("error", outcome.error)]
    failures = []
    for failure in (
        _check_count(outcome, ref),
        _check_embeddings(outcome, ref),
        _check_symmetry(ref),
        _check_memory_bound(workload, spec, outcome),
        _check_cache_overflow(workload, spec, outcome),
        _check_time_conservation(outcome),
    ):
        if failure is not None:
            failures.append(failure)
    return failures
