"""Hypothesis strategies shared between ``tests/`` and the harness.

Kept inside the package so property tests and the conformance subsystem
draw structurally identical inputs — a divergence between "what the tests
explore" and "what the fuzzer explores" is itself a coverage bug.  This
module is the only part of :mod:`repro.testing` that imports hypothesis;
the harness proper runs without it (the CLI must work in production
images where only numpy is installed).
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from ..graph.graph import Graph
from ..query.pattern import QueryGraph

__all__ = ["graphs", "degenerate_graphs", "labelled_graphs", "patterns",
           "labelled_patterns", "engine_knobs"]


@st.composite
def graphs(draw, min_vertices: int = 4, max_vertices: int = 14,
           min_edges: int = 3):
    """Random simple graphs (the original ``test_property`` strategy)."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), min_size=min_edges,
                          max_size=len(possible), unique=True))
    return Graph.from_edges(edges, num_vertices=n)


@st.composite
def degenerate_graphs(draw, max_vertices: int = 14):
    """Graphs real datasets never look like: guaranteed isolated vertices
    and typically several small components (self-loop-free)."""
    n = draw(st.integers(min_value=5, max_value=max_vertices))
    isolated = draw(st.integers(min_value=1, max_value=max(1, n // 3)))
    live = n - isolated
    if live >= 2:
        possible = [(u, v) for u in range(live) for v in range(u + 1, live)]
        # few edges relative to vertices → usually > 1 component
        edges = draw(st.lists(st.sampled_from(possible), min_size=0,
                              max_size=max(1, live), unique=True))
    else:
        edges = []
    return Graph.from_edges(edges, num_vertices=n)


@st.composite
def labelled_graphs(draw, max_vertices: int = 14, num_labels: int = 3):
    """A graph plus a per-vertex label array."""
    g = draw(graphs(max_vertices=max_vertices))
    labels = draw(st.lists(
        st.integers(min_value=0, max_value=num_labels - 1),
        min_size=g.num_vertices, max_size=g.num_vertices))
    return g, np.asarray(labels, dtype=np.int64)


@st.composite
def patterns(draw, min_vertices: int = 3, max_vertices: int = 4):
    """Small connected patterns (spanning path + random extra edges)."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = {(i, i + 1) for i in range(n - 1)}
    extra = draw(st.lists(st.sampled_from(possible), max_size=4))
    edges.update(extra)
    return QueryGraph(n, edges)


@st.composite
def labelled_patterns(draw, max_vertices: int = 4, num_labels: int = 3):
    """Connected patterns with a mix of label constraints and wildcards."""
    q = draw(patterns(max_vertices=max_vertices))
    labels = draw(st.lists(
        st.one_of(st.none(),
                  st.integers(min_value=0, max_value=num_labels - 1)),
        min_size=q.num_vertices, max_size=q.num_vertices))
    return QueryGraph(q.num_vertices, q.edges, labels=labels)


@st.composite
def engine_knobs(draw):
    """Random scheduler/cache knobs within the supported envelope, as
    kwargs for :class:`~repro.core.engine.EngineConfig`."""
    from ..core.cache import CACHE_VARIANTS
    from ..core.stealing import STEALING_MODES

    return {
        "batch_size": draw(st.sampled_from([1, 8, 64, 1024])),
        "output_queue_capacity": draw(
            st.sampled_from([0.0, 16.0, 16384.0, float("inf")])),
        "stealing": draw(st.sampled_from(STEALING_MODES)),
        "cache_variant": draw(st.sampled_from(CACHE_VARIANTS)),
        "cache_capacity_ids": draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=64))),
    }
