"""The differential conformance runner, shrinker and replay artifacts.

:func:`run_case` executes one (workload, engine-spec) pair through the
appropriate engine, collects the oracle observables into a
:class:`~repro.testing.oracles.CaseOutcome` and checks every oracle.
:class:`ConformanceHarness` fans a stream of random workloads across the
engine matrix; on the first violation it greedily shrinks the workload to
a minimal reproducing case (:func:`shrink_workload`) and serialises a
replayable JSON artifact (:func:`save_artifact`) that
``python -m repro.conformance replay`` re-executes.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..apps.mining import motif_census
from ..baselines import (BenuEngine, BigJoinEngine, RadsEngine, SeedEngine)
from ..cluster.cluster import Cluster
from ..core.engine import HugeEngine
from ..core.plan.physical import ExecutionPlan, configure_plan
from ..core.plan.plans import (benu_plan, rads_plan, seed_plan,
                               starjoin_plan, wco_plan)
from ..query.estimate import SamplingEstimator
from .configs import EngineSpec, default_matrix
from .oracles import (CaseOutcome, OracleFailure, Reference, check_case,
                      compute_reference)
from .workloads import Workload, random_workload

__all__ = ["ARTIFACT_VERSION", "CaseFailure", "ConformanceHarness",
           "HarnessReport", "load_artifact", "replay_artifact", "run_case",
           "save_artifact", "shrink_workload"]

ARTIFACT_VERSION = 1

_BASELINES: dict[str, Callable] = {
    "seed": SeedEngine,
    "bigjoin": BigJoinEngine,
    "benu": BenuEngine,
    "rads": RadsEngine,
}


def _build_plan(spec: EngineSpec, engine: HugeEngine, query,
                graph) -> ExecutionPlan:
    """Resolve the spec's plan mode into a configured execution plan."""
    if spec.plan == "optimal":
        plan = engine.plan(query)
    else:
        if spec.plan == "wco":
            logical = wco_plan(query)
        elif spec.plan == "benu":
            logical = benu_plan(query)
        elif spec.plan == "rads":
            logical = rads_plan(query)
        elif spec.plan == "starjoin":
            logical = starjoin_plan(query)
        elif spec.plan == "seed":
            logical = seed_plan(
                query, SamplingEstimator(graph, trials=80, seed=11))
        else:  # pragma: no cover - EngineSpec validates plan names
            raise ValueError(f"unknown plan mode {spec.plan!r}")
        plan = configure_plan(logical)
    if spec.disable_symmetry:
        plan = ExecutionPlan(query=plan.query, root=plan.root,
                             conditions=frozenset(),
                             name=plan.name + "-nosym",
                             estimated_cost=plan.estimated_cost)
    return plan


def execute(workload: Workload, spec: EngineSpec,
            tracer=None) -> CaseOutcome:
    """Run one engine on one workload, capturing the oracle observables.

    Engine exceptions are captured as the outcome's ``error`` (a crash is
    a conformance failure, not a harness failure).  ``tracer`` (HUGE and
    census specs) records a span trace of the run for failure artifacts.
    """
    outcome = CaseOutcome(spec_name=spec.name)
    graph = workload.graph()
    query = workload.pattern()
    cluster = Cluster(graph, num_machines=workload.num_machines,
                      workers_per_machine=workload.workers_per_machine,
                      seed=workload.partition_seed,
                      labels=workload.label_array())
    try:
        if spec.is_delta:
            from .deltas import run_delta
            run_delta(workload, spec, outcome)
        elif spec.is_census:
            census = motif_census(cluster, spec.census_k, tracer=tracer)
            outcome.count = census.total_subgraphs
            outcome.report = census.report
            outcome.census_total = census.total_subgraphs
            outcome.census_counts = dict(census.counts)
            outcome.census_class_keys = dict(census.class_keys)
            outcome.census_memo_hits = census.memo_hits
            outcome.census_canon_calls = census.canonical_calls
        elif spec.is_huge:
            config = spec.engine_config(collect=True)
            engine = HugeEngine(cluster, config,
                                estimator=SamplingEstimator(
                                    graph, trials=60, seed=7))
            plan = _build_plan(spec, engine, query, graph)
            result = engine.run(query, plan=plan, tracer=tracer)
            outcome.count = result.count
            outcome.matches = result.matches
            outcome.report = result.report
            outcome.num_push_joins = result.plan.num_push_joins()
            outcome.cache_overflow_ids = result.cache_overflow_ids
            outcome.cache_reserved_ids = result.cache_capacity_ids
            outcome.join_buffer_tuples = config.join_buffer_tuples
        else:
            result = _BASELINES[spec.engine](cluster).run(query)
            outcome.count = result.count
            outcome.report = result.report
        outcome.bytes_per_id = cluster.cost.bytes_per_id
    except Exception as exc:  # noqa: BLE001 - crashes become oracle failures
        outcome.error = f"{type(exc).__name__}: {exc}"
    return outcome


def run_case(workload: Workload, spec: EngineSpec,
             ref: Reference | None = None) -> CaseOutcome:
    """Execute one case and check every oracle; failures land on the
    returned outcome."""
    if ref is None and not spec.is_census:
        # census specs carry their own brute-force reference (computed
        # inside check_census_case); don't pay for the pattern one
        ref = compute_reference(workload)
    outcome = execute(workload, spec)
    outcome.failures = check_case(workload, spec, outcome, ref)
    return outcome


# -- shrinking -----------------------------------------------------------------


def shrink_workload(workload: Workload, spec: EngineSpec,
                    max_trials: int = 300) -> Workload:
    """Greedily minimise a failing workload while it keeps failing.

    Passes: strip labels, drop graph edges one at a time (repeating until
    a fixed point), then compact away isolated vertices.  Every candidate
    is re-verified end to end (engine run + reference + oracles), so the
    shrunk case is guaranteed to still reproduce.
    """
    trials = 0

    def still_fails(cand: Workload) -> bool:
        nonlocal trials
        trials += 1
        return bool(run_case(cand, spec).failures)

    if not still_fails(workload):
        raise ValueError("workload does not fail; nothing to shrink")

    cand = workload.without_labels()
    if (workload.labels is not None or workload.pattern_labels is not None) \
            and still_fails(cand):
        workload = cand

    improved = True
    while improved and trials < max_trials:
        improved = False
        for edge in list(workload.edges):
            if trials >= max_trials:
                break
            fewer = tuple(e for e in workload.edges if e != edge)
            cand = workload.with_edges(fewer)
            if still_fails(cand):
                workload = cand
                improved = True

    cand = workload.compact()
    if cand is not workload and still_fails(cand):
        workload = cand
    return workload


# -- artifacts -----------------------------------------------------------------


def save_artifact(path: str, workload: Workload, spec: EngineSpec,
                  failures: Iterable[OracleFailure], trace=None) -> None:
    """Serialise a failing case (workload + engine config + violations).

    ``trace`` (a :class:`~repro.obs.trace.Trace`) embeds the failing
    run's span timeline in Chrome ``trace_event`` form; the key is
    optional, so version-1 readers stay compatible.
    """
    payload = {
        "version": ARTIFACT_VERSION,
        "workload": workload.to_dict(),
        "engine": spec.to_dict(),
        "failures": [{"oracle": f.oracle, "message": f.message}
                     for f in failures],
    }
    if trace is not None:
        payload["trace"] = trace.to_chrome()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> tuple[Workload, EngineSpec,
                                      list[OracleFailure]]:
    """Deserialise an artifact written by :func:`save_artifact`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("version")
    if version != ARTIFACT_VERSION:
        raise ValueError(f"unsupported artifact version {version!r}")
    return (
        Workload.from_dict(payload["workload"]),
        EngineSpec.from_dict(payload["engine"]),
        [OracleFailure(f["oracle"], f["message"])
         for f in payload.get("failures", [])],
    )


def replay_artifact(path: str) -> CaseOutcome:
    """Re-execute an artifact's case; the outcome's failures say whether
    it still reproduces."""
    workload, spec, _ = load_artifact(path)
    return run_case(workload, spec)


# -- the harness ---------------------------------------------------------------


@dataclass
class CaseFailure:
    """One failing case, already shrunk when shrinking was enabled."""

    workload: Workload
    spec: EngineSpec
    failures: list[OracleFailure]
    artifact_path: str | None = None

    def describe(self) -> str:
        """Multi-line human summary."""
        lines = [f"{self.spec.name} on {self.workload.describe()}"]
        lines += [f"  {f}" for f in self.failures]
        if self.artifact_path:
            lines.append(f"  artifact: {self.artifact_path}")
        return "\n".join(lines)


@dataclass
class HarnessReport:
    """Summary of one harness run."""

    cases_run: int = 0
    workloads: int = 0
    skipped: int = 0
    elapsed_s: float = 0.0
    failures: list[CaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every case passed every oracle."""
        return not self.failures

    def summary(self) -> str:
        """One-line result summary."""
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} cases)"
        return (f"{status}: {self.cases_run} cases over {self.workloads} "
                f"workloads ({self.skipped} unsupported pairs skipped) "
                f"in {self.elapsed_s:.1f}s")


class ConformanceHarness:
    """Engine-matrix fuzzer: random workloads × engine configurations.

    Parameters
    ----------
    specs:
        Engine matrix to fan each workload across (default: the full
        :func:`~repro.testing.configs.default_matrix`).
    seed:
        Base seed; workload ``i`` is generated from ``seed + i`` so runs
        are reproducible and individually replayable.
    max_vertices:
        Data-graph size cap (kept small: every case also pays for the
        brute-force reference).
    shrink:
        Shrink failing workloads before reporting them.
    artifact_dir:
        Where to write replay artifacts for failing cases (``None``
        disables artifact emission).
    """

    def __init__(self, specs: list[EngineSpec] | None = None, seed: int = 0,
                 max_vertices: int = 14, shrink: bool = True,
                 artifact_dir: str | None = None):
        self.specs = list(specs) if specs is not None else default_matrix()
        if not self.specs:
            raise ValueError("need at least one engine spec")
        self.seed = seed
        self.max_vertices = max_vertices
        self.shrink = shrink
        self.artifact_dir = artifact_dir

    def workload(self, index: int) -> Workload:
        """The ``index``-th workload of this harness's deterministic stream."""
        return random_workload(self.seed + index,
                               max_vertices=self.max_vertices)

    def run(self, num_cases: int = 100, max_seconds: float | None = None,
            stop_on_failure: bool = True,
            progress: Callable[[str], None] | None = None) -> HarnessReport:
        """Run at least ``num_cases`` workload × config cases.

        Workloads are consumed in order; each is fanned across every
        supported spec (so one workload contributes ``len(specs)``-ish
        cases and its reference is computed once).  Stops early once both
        the case target is met or ``max_seconds`` is exceeded.
        """
        report = HarnessReport()
        start = time.perf_counter()
        index = 0
        while report.cases_run < num_cases:
            if max_seconds is not None and \
                    time.perf_counter() - start > max_seconds:
                break
            workload = self.workload(index)
            index += 1
            report.workloads += 1
            ref = compute_reference(workload)
            for spec in self.specs:
                if not spec.supports(workload):
                    report.skipped += 1
                    continue
                outcome = run_case(workload, spec, ref=ref)
                report.cases_run += 1
                if outcome.ok:
                    continue
                failure = self._handle_failure(workload, spec,
                                               outcome.failures, progress)
                report.failures.append(failure)
                if stop_on_failure:
                    report.elapsed_s = time.perf_counter() - start
                    return report
            if progress is not None:
                progress(f"workload {index}: {workload.describe()} — "
                         f"{report.cases_run}/{num_cases} cases, "
                         f"{len(report.failures)} failures")
        report.elapsed_s = time.perf_counter() - start
        return report

    def _handle_failure(self, workload: Workload, spec: EngineSpec,
                        failures: list[OracleFailure],
                        progress: Callable[[str], None] | None
                        ) -> CaseFailure:
        if self.shrink:
            if progress is not None:
                progress(f"shrinking failing case for {spec.name} ...")
            shrunk = shrink_workload(workload, spec)
            # report the violations of the *shrunk* case
            failures = run_case(shrunk, spec).failures or failures
            workload = shrunk
        artifact_path = None
        if self.artifact_dir is not None:
            import os

            trace = None
            if spec.is_huge or spec.is_census:
                # re-run the (shrunk) case traced so the artifact carries
                # the failing run's span timeline
                from ..obs.trace import Tracer

                tracer = Tracer()
                execute(workload, spec, tracer=tracer)
                trace = tracer.trace
            os.makedirs(self.artifact_dir, exist_ok=True)
            artifact_path = os.path.join(
                self.artifact_dir,
                f"conformance-{spec.name}-seed{workload.seed}.json")
            save_artifact(artifact_path, workload, spec, failures,
                          trace=trace)
        return CaseFailure(workload, spec, failures, artifact_path)
