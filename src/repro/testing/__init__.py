"""Differential conformance testing for the HUGE reproduction.

The paper's core claim is configuration-independence: one engine with many
physical configurations — hash vs wco joins, pushing vs pulling, BFS/DFS
adaptive scheduling, the LRBU cache ablations — plus the four baseline
systems must all produce the same symmetry-broken embeddings as the
brute-force reference, while respecting the Theorem 5.4 memory bound.
This package is the correctness backstop behind that claim:

* :mod:`repro.testing.workloads` — randomized, replayable workloads
  (graph × pattern × cluster shape), JSON round-trippable;
* :mod:`repro.testing.configs` — the engine-configuration matrix
  (baselines, HUGE across plan × scheduler × cache dimensions, and the
  ESU motif-census workload family);
* :mod:`repro.testing.oracles` — the invariant oracles every run is
  checked against;
* :mod:`repro.testing.harness` — the differential runner, the greedy
  workload shrinker and the replayable failure artifacts;
* :mod:`repro.testing.strategies` — hypothesis strategies shared with
  ``tests/`` (imported lazily; requires hypothesis);
* :mod:`repro.testing.serving` — service-level oracles for
  :mod:`repro.serve` (exactly-once accounting, admission-ledger drain,
  concurrency == solo bit-identity, crash recovery).

Long soak runs and artifact replay are driven by the CLI::

    python -m repro.conformance run --cases 200 --seed 1
    python -m repro.conformance replay artifact.json
"""

from .configs import (EngineSpec, census_matrix, default_matrix,
                      smoke_matrix)
from .harness import (CaseFailure, ConformanceHarness, HarnessReport,
                      load_artifact, replay_artifact, run_case,
                      save_artifact, shrink_workload)
from .oracles import (CensusReference, OracleFailure, Reference, check_case,
                      check_census_case, compute_census_reference,
                      compute_reference)
from .serving import (SERVING_ORACLES, check_driver_report,
                      check_service_run)
from .workloads import Workload, random_pattern, random_workload

__all__ = [
    "EngineSpec",
    "census_matrix",
    "default_matrix",
    "smoke_matrix",
    "CaseFailure",
    "ConformanceHarness",
    "HarnessReport",
    "load_artifact",
    "replay_artifact",
    "run_case",
    "save_artifact",
    "shrink_workload",
    "CensusReference",
    "OracleFailure",
    "Reference",
    "check_case",
    "check_census_case",
    "compute_census_reference",
    "compute_reference",
    "SERVING_ORACLES",
    "check_driver_report",
    "check_service_run",
    "Workload",
    "random_pattern",
    "random_workload",
]
