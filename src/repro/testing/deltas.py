"""The delta (incremental) conformance family: schedules and runner.

A ``delta`` spec does not run an engine over the workload graph — it
*derives* a deterministic update-batch schedule whose replay ends at the
workload graph, then drives :class:`~repro.stream.delta.IncrementalMatcher`
through it:

* ``insert``  — hold out up to half the workload's edges; the base
  snapshot is the rest and the batches re-insert the held-out edges.
* ``delete``  — plant extra non-edges into the base snapshot; the
  batches delete them again.
* ``mixed``   — both at once, plus *churn* pairs (a planted extra edge
  inserted in one batch and deleted in a later one) so retraction of
  previously delivered matches is exercised on every mixed case.

Because every schedule's final graph **is** the workload graph, the
accumulated standing matches feed straight into the standard count /
embeddings / symmetry oracles against the brute-force
:class:`~repro.testing.oracles.Reference` — asserting incremental ≡
from-scratch bit-identically.  The per-batch bookkeeping recorded here
additionally feeds the ``delta-once`` oracle (no double-counted
addition, no retraction of an undelivered match, exact accumulation).
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..stream.delta import IncrementalMatcher
from .configs import EngineSpec
from .workloads import Workload

__all__ = ["delta_schedule", "run_delta"]

Edge = tuple[int, int]

_SCHEDULE_SALT = {"insert": 1, "delete": 2, "mixed": 3}


def _split(rng: np.random.Generator, items: list, batches: int
           ) -> list[list]:
    """Deterministically spread ``items`` over ``batches`` buckets."""
    out: list[list] = [[] for _ in range(batches)]
    for i, item in enumerate(items):
        out[int(rng.integers(batches))].append(item)
    return out


def delta_schedule(workload: Workload, spec: EngineSpec
                   ) -> tuple[Graph, list[tuple[list[Edge], list[Edge]]]]:
    """Derive ``(base_snapshot, [(inserts, deletes), ...])`` for a spec.

    Deterministic in ``(workload.seed, spec.delta_schedule)``; replaying
    the batches from the base snapshot ends exactly at the workload
    graph.
    """
    kind = spec.delta_schedule
    rng = np.random.default_rng(
        workload.seed * 7919 + _SCHEDULE_SALT[kind])
    n = workload.num_vertices
    final_edges = sorted({(min(u, v), max(u, v))
                          for (u, v) in workload.edges if u != v})
    edge_set = set(final_edges)
    batches = spec.delta_batches

    held_out: list[Edge] = []
    if kind in ("insert", "mixed") and final_edges:
        k = max(1, len(final_edges) // 2)
        idx = rng.choice(len(final_edges), size=k, replace=False)
        held_out = [final_edges[i] for i in sorted(idx.tolist())]

    extras: list[Edge] = []
    churn: list[Edge] = []
    if kind in ("delete", "mixed"):
        non_edges = [(u, v) for u in range(n) for v in range(u + 1, n)
                     if (u, v) not in edge_set]
        rng.shuffle(non_edges)
        want = max(1, len(final_edges) // 2) if non_edges else 0
        extras = non_edges[:want]
        if kind == "mixed" and batches >= 2 and len(non_edges) > want:
            # churn edges are inserted mid-stream and deleted again later
            churn = non_edges[want:want + max(1, want // 2)]

    base = Graph.from_edges(
        [e for e in final_edges if e not in set(held_out)] + extras,
        num_vertices=n)

    ins_parts = _split(rng, held_out, batches)
    del_parts = _split(rng, extras, batches)
    plan: list[tuple[list[Edge], list[Edge]]] = [
        (sorted(ins_parts[b]), sorted(del_parts[b])) for b in range(batches)]
    for i, e in enumerate(churn):
        b_in = int(rng.integers(batches - 1))
        b_out = int(rng.integers(b_in + 1, batches))
        plan[b_in][0].append(e)
        plan[b_out][1].append(e)
    if churn and batches >= 1:
        # same-batch churn: insert-then-delete inside one batch must be a
        # net no-op (deletes win), so plant one in the last batch too
        non = [(u, v) for u in range(min(n, 12))
               for v in range(u + 1, min(n, 12))
               if (u, v) not in edge_set and (u, v) not in set(extras)
               and (u, v) not in set(churn)]
        if non:
            e = non[int(rng.integers(len(non)))]
            plan[-1][0].append(e)
            plan[-1][1].append(e)
    return base, plan


def run_delta(workload: Workload, spec: EngineSpec, outcome) -> None:
    """Replay the spec's schedule into ``outcome`` (a ``CaseOutcome``).

    Fills ``outcome.count`` / ``outcome.matches`` with the accumulated
    final state (consumed by the standard oracles) and
    ``outcome.delta_batches`` / ``outcome.delta_violations`` with the
    per-batch bookkeeping the ``delta-once`` oracle checks.
    """
    from ..query.symmetry import symmetry_break

    pattern = workload.pattern()
    conditions = frozenset() if spec.disable_symmetry else \
        symmetry_break(pattern)
    base, plan = delta_schedule(workload, spec)
    matcher = IncrementalMatcher(pattern, base, conditions=conditions,
                                 labels=workload.label_array())
    records: list[dict] = []
    for inserts, deletes in plan:
        before = set(matcher.matches)
        result = matcher.apply(inserts, deletes)
        adds, rets = result.additions, result.retractions
        records.append({
            "inserted": len(result.delta.inserted),
            "deleted": len(result.delta.deleted),
            "additions": len(adds),
            "retractions": len(rets),
            "duplicate_additions": len(adds) - len(set(adds)),
            "duplicate_retractions": len(rets) - len(set(rets)),
            "stale_additions": sum(1 for m in adds if m in before),
            "missing_retractions": sum(1 for m in rets if m not in before),
            "count_after": result.count_after,
        })
    outcome.count = matcher.count
    outcome.matches = sorted(matcher.matches)
    outcome.delta_batches = records
    outcome.delta_violations = matcher.violations
