"""Bit-identity goldens: frozen simulated metrics for fixed workloads.

The columnar batch runtime must charge *exactly* the ops/bytes/messages/
memory the tuple-at-a-time runtime charged — the simulated metrics are the
experiment results, so any drift silently rewrites the paper's tables.
This module captures, for a fixed set of seeded workloads × the HUGE
engine matrix, the full :class:`~repro.cluster.metrics.RunReport` (plus
match counts and cache counters) into a JSON file that a tier-1 test
compares against with **exact float equality** (JSON round-trips shortest
``repr`` floats losslessly).

Regenerate intentionally with::

    PYTHONPATH=src python -m repro.testing.goldens --write tests/golden/metrics.json

Regeneration is a reviewable event: the diff shows precisely which
configurations' accounting changed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from ..graph import generators
from ..query.pattern import get_query
from .configs import EngineSpec, default_matrix
from .harness import execute
from .workloads import Workload, random_workload

__all__ = ["GOLDEN_SEEDS", "capture_goldens", "golden_specs",
           "golden_workloads"]

#: workload-generator seeds frozen into the golden file
GOLDEN_SEEDS = (1, 2, 3, 5, 8, 13)


def golden_specs() -> list[EngineSpec]:
    """The HUGE side of the engine matrix (baselines keep their own
    enumeration code and are covered by the conformance oracles)."""
    return [s for s in default_matrix() if s.is_huge]


def golden_workloads() -> list[tuple[str, Workload]]:
    """The frozen workload set: seeded random cases plus two larger
    structured cases that exercise spilling, stealing and eviction."""
    cases: list[tuple[str, Workload]] = [
        (f"seed-{s}", random_workload(s)) for s in GOLDEN_SEEDS
    ]
    big = generators.power_law_cluster(60, 3, triad_p=0.6, seed=97)
    cases.append(("plc60-q1", Workload.from_parts(
        big, get_query("q1"), num_machines=3, workers_per_machine=2,
        partition_seed=4, seed=97)))
    dense = generators.erdos_renyi(36, 0.3, seed=53)
    cases.append(("er36-q2", Workload.from_parts(
        dense, get_query("q2"), num_machines=2, workers_per_machine=3,
        partition_seed=2, seed=53)))
    return cases


def _record(workload: Workload, spec: EngineSpec) -> dict[str, Any]:
    """One engine run reduced to its accounting-relevant observables."""
    outcome = execute(workload, spec)
    if outcome.error is not None:
        return {"error": outcome.error}
    report = outcome.report.as_dict()
    return {
        "count": outcome.count,
        "report": report,
        "cache_overflow_ids": outcome.cache_overflow_ids,
    }


def capture_goldens() -> dict[str, Any]:
    """Run every golden (workload, spec) pair and collect the records."""
    specs = golden_specs()
    out: dict[str, Any] = {"cases": {}}
    for wname, workload in golden_workloads():
        case: dict[str, Any] = {"workload": workload.describe(), "specs": {}}
        for spec in specs:
            case["specs"][spec.name] = _record(workload, spec)
        out["cases"][wname] = case
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", metavar="PATH", required=True,
                        help="write the golden JSON to PATH")
    ns = parser.parse_args(argv)
    goldens = capture_goldens()
    with open(ns.write, "w", encoding="utf-8") as f:
        json.dump(goldens, f, indent=1, sort_keys=True)
        f.write("\n")
    n = sum(len(c["specs"]) for c in goldens["cases"].values())
    print(f"wrote {n} golden records to {ns.write}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
