"""Bit-identity goldens: frozen simulated metrics for fixed workloads.

The columnar batch runtime must charge *exactly* the ops/bytes/messages/
memory the tuple-at-a-time runtime charged — the simulated metrics are the
experiment results, so any drift silently rewrites the paper's tables.
This module captures, for a fixed set of seeded workloads × the HUGE
engine matrix, the full :class:`~repro.cluster.metrics.RunReport` (plus
match counts and cache counters) into a JSON file that a tier-1 test
compares against with **exact float equality** (JSON round-trips shortest
``repr`` floats losslessly).

Regenerate intentionally with::

    PYTHONPATH=src python -m repro.testing.goldens --write tests/golden/metrics.json

Regeneration is a reviewable event: the diff shows precisely which
configurations' accounting changed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from ..cluster.cluster import Cluster
from ..cluster.cost import CostModel
from ..graph import generators
from ..query.pattern import get_query
from .configs import BASELINE_ENGINES, EngineSpec, default_matrix
from .harness import _BASELINES, execute
from .workloads import Workload, random_workload

__all__ = ["GOLDEN_SEEDS", "capture_goldens", "golden_budget_cases",
           "golden_specs", "golden_workloads"]

#: workload-generator seeds frozen into the golden file
GOLDEN_SEEDS = (1, 2, 3, 5, 8, 13)


def golden_specs() -> list[EngineSpec]:
    """The full engine matrix: every HUGE configuration plus the four
    baseline systems.  The baselines' simulated accounting is pinned the
    same way the HUGE runtime's is — their columnar rewrites must replay
    the scalar cost chains bit for bit.  Census specs are excluded: they
    run a pattern-independent workload whose determinism is gated by
    ``benchmarks/bench_census.py`` (two fresh runs bit-identical) and the
    census conformance family instead.  Delta specs are excluded for the
    same reason: the delta family's incremental-vs-from-scratch oracles
    plus ``benchmarks/bench_stream.py`` pin their determinism, and the
    incremental passes don't produce a simulated cost report."""
    return [s for s in default_matrix()
            if not s.is_census and not s.is_delta]


def golden_workloads() -> list[tuple[str, Workload]]:
    """The frozen workload set: seeded random cases plus two larger
    structured cases that exercise spilling, stealing and eviction."""
    cases: list[tuple[str, Workload]] = [
        (f"seed-{s}", random_workload(s)) for s in GOLDEN_SEEDS
    ]
    big = generators.power_law_cluster(60, 3, triad_p=0.6, seed=97)
    cases.append(("plc60-q1", Workload.from_parts(
        big, get_query("q1"), num_machines=3, workers_per_machine=2,
        partition_seed=4, seed=97)))
    dense = generators.erdos_renyi(36, 0.3, seed=53)
    cases.append(("er36-q2", Workload.from_parts(
        dense, get_query("q2"), num_machines=2, workers_per_machine=3,
        partition_seed=2, seed=53)))
    return cases


def golden_budget_cases() -> list[tuple[str, Workload, float, float]]:
    """Budget-constrained baseline cases: ``(name, workload, memory_budget,
    time_budget)``.  These pin the OOM/overtime *trip points* — a rewrite
    that charges identical totals but trips a budget one allocation earlier
    or later changes the abort-time snapshot and fails the golden."""
    cases = []
    dense = generators.erdos_renyi(36, 0.3, seed=53)
    cases.append(("er36-q2-mem5k", Workload.from_parts(
        dense, get_query("q2"), num_machines=2, workers_per_machine=3,
        partition_seed=2, seed=53), 5e3, float("inf")))
    big = generators.power_law_cluster(60, 3, triad_p=0.6, seed=97)
    cases.append(("plc60-q1-time.8ms", Workload.from_parts(
        big, get_query("q1"), num_machines=3, workers_per_machine=2,
        partition_seed=4, seed=97), float("inf"), 8e-4))
    return cases


def _budget_record(workload: Workload, engine: str, memory_budget: float,
                   time_budget: float) -> dict[str, Any]:
    """One budget-constrained baseline run: the error (or count) plus the
    abort-time metrics snapshot, so *where* the budget tripped is pinned,
    not just whether it did."""
    cost = CostModel(memory_budget_bytes=memory_budget,
                     time_budget_s=time_budget)
    cluster = Cluster(workload.graph(),
                      num_machines=workload.num_machines,
                      workers_per_machine=workload.workers_per_machine,
                      cost=cost, seed=workload.partition_seed,
                      labels=workload.label_array())
    record: dict[str, Any] = {}
    try:
        result = _BASELINES[engine](cluster).run(workload.pattern())
        record["count"] = result.count
    except Exception as exc:  # noqa: BLE001 - the abort IS the observable
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["report"] = cluster.metrics.report().as_dict()
    return record


def _record(workload: Workload, spec: EngineSpec) -> dict[str, Any]:
    """One engine run reduced to its accounting-relevant observables."""
    if not spec.supports(workload):
        # label-constrained patterns are HUGE-only; pin that fact so a
        # baseline silently starting to "support" one shows up as drift
        return {"unsupported": True}
    outcome = execute(workload, spec)
    if outcome.error is not None:
        return {"error": outcome.error}
    report = outcome.report.as_dict()
    return {
        "count": outcome.count,
        "report": report,
        "cache_overflow_ids": outcome.cache_overflow_ids,
    }


def capture_goldens() -> dict[str, Any]:
    """Run every golden (workload, spec) pair and collect the records."""
    specs = golden_specs()
    out: dict[str, Any] = {"cases": {}}
    for wname, workload in golden_workloads():
        case: dict[str, Any] = {"workload": workload.describe(), "specs": {}}
        for spec in specs:
            case["specs"][spec.name] = _record(workload, spec)
        out["cases"][wname] = case
    out["budget_cases"] = {}
    for bname, workload, mem, tb in golden_budget_cases():
        case = {"workload": workload.describe(), "engines": {}}
        for engine in BASELINE_ENGINES:
            case["engines"][engine] = _budget_record(workload, engine,
                                                     mem, tb)
        out["budget_cases"][bname] = case
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", metavar="PATH", required=True,
                        help="write the golden JSON to PATH")
    ns = parser.parse_args(argv)
    goldens = capture_goldens()
    with open(ns.write, "w", encoding="utf-8") as f:
        json.dump(goldens, f, indent=1, sort_keys=True)
        f.write("\n")
    n = sum(len(c["specs"]) for c in goldens["cases"].values())
    print(f"wrote {n} golden records to {ns.write}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
