"""The engine-configuration matrix the harness fans every workload across.

One :class:`EngineSpec` names either a baseline system (SEED, BiGJoin,
BENU, RADS) or the HUGE engine under a specific physical configuration:

* **plan** — which logical plan the run executes.  ``optimal`` is
  Algorithm 1; ``wco`` forces a pure worst-case-optimal (all PULL-EXTEND)
  plan; ``seed`` / ``benu`` / ``rads`` / ``starjoin`` are the plug-in
  plans of Remark 3.2 and exercise the hash-join × pushing corners of the
  Equation 3 matrix that the optimiser's own plans may avoid;
* **scheduler** — output-queue capacity (``0`` = pure DFS, ``inf`` = pure
  BFS, Exp-7), batch size, and the stealing mode (full / none /
  region-group, Exp-8);
* **cache** — the Table 5 variants and a deliberately tiny capacity that
  stresses eviction and the §4.4 overflow invariant.

``disable_symmetry`` is a *mutation knob* for the harness's self-test: it
strips the symmetry-breaking partial order from the execution plan, which
the count/embedding oracles must catch (every instance is then emitted
once per automorphism).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from ..core.cache import CACHE_VARIANTS
from ..core.engine import EngineConfig
from ..core.stealing import STEALING_MODES

__all__ = ["BASELINE_ENGINES", "CENSUS_SIZES", "DELTA_SCHEDULES",
           "PLAN_MODES", "EngineSpec", "baseline_matrix", "census_matrix",
           "default_matrix", "delta_matrix", "smoke_matrix"]

#: baseline engines the harness can run (HUGE is ``"huge"``; ``"census"``
#: is the ESU motif-census workload family)
BASELINE_ENGINES = ("seed", "bigjoin", "benu", "rads")

#: census subgraph sizes the census workload family fans across
CENSUS_SIZES = (3, 4, 5)

#: update-batch schedules the delta (incremental) family fans across
DELTA_SCHEDULES = ("insert", "delete", "mixed")

#: accepted values of :attr:`EngineSpec.plan` for HUGE runs
PLAN_MODES = ("optimal", "wco", "seed", "benu", "rads", "starjoin")


@dataclass(frozen=True)
class EngineSpec:
    """One fully-specified engine configuration (JSON round-trippable)."""

    name: str
    engine: str = "huge"
    plan: str = "optimal"
    cache_variant: str = "lrbu"
    cache_capacity_ids: int | None = None
    stealing: str = "full"
    output_queue_capacity: float = 16384.0
    batch_size: int = 64
    scan_pivot_chunk: int = 16
    two_stage: bool | None = None
    disable_symmetry: bool = False
    census_k: int | None = None
    """Subgraph size for ``engine="census"`` specs (ignored otherwise)."""
    delta_schedule: str | None = None
    """Batch schedule for ``engine="delta"`` specs: ``insert`` (insert-only),
    ``delete`` (delete-only) or ``mixed`` (both, plus same-batch churn)."""
    delta_batches: int = 3
    """How many update batches the delta schedule spreads its edits over."""

    def __post_init__(self) -> None:
        if self.engine not in ("huge", "census", "delta") \
                and self.engine not in BASELINE_ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.engine == "census":
            if self.census_k is None or not 2 <= self.census_k <= 5:
                raise ValueError(f"census specs need census_k in 2..5, "
                                 f"got {self.census_k!r}")
        if self.engine == "delta":
            if self.delta_schedule not in DELTA_SCHEDULES:
                raise ValueError(
                    f"delta specs need delta_schedule in {DELTA_SCHEDULES}, "
                    f"got {self.delta_schedule!r}")
            if self.delta_batches < 1:
                raise ValueError("delta_batches must be >= 1")
        if self.engine == "huge":
            if self.plan not in PLAN_MODES:
                raise ValueError(f"unknown plan mode {self.plan!r}; "
                                 f"choose from {PLAN_MODES}")
            if self.cache_variant not in CACHE_VARIANTS:
                raise ValueError(f"unknown cache variant "
                                 f"{self.cache_variant!r}")
            if self.stealing not in STEALING_MODES:
                raise ValueError(f"unknown stealing mode {self.stealing!r}")

    @property
    def is_huge(self) -> bool:
        """Whether this spec runs the HUGE engine (vs a baseline)."""
        return self.engine == "huge"

    @property
    def is_census(self) -> bool:
        """Whether this spec runs the ESU motif census."""
        return self.engine == "census"

    @property
    def is_delta(self) -> bool:
        """Whether this spec runs the incremental (streaming delta) path."""
        return self.engine == "delta"

    def supports(self, workload) -> bool:
        """Whether this engine can run ``workload`` at all.  The baseline
        reproductions implement the papers' unlabelled algorithms, so
        label-constrained patterns are HUGE-only.  The census ignores the
        workload's pattern and labels entirely (it enumerates the data
        graph), so it supports every workload.  The delta path supports
        labels but needs a pattern with at least one edge to pin."""
        if self.is_census:
            return True
        if self.is_delta:
            return workload.pattern().num_edges > 0
        if not self.is_huge:
            return workload.pattern_labels is None
        return True

    def engine_config(self, collect: bool = True) -> EngineConfig:
        """The :class:`~repro.core.engine.EngineConfig` for a HUGE run."""
        if not self.is_huge:
            raise ValueError(f"{self.name}: only HUGE specs take an "
                             f"EngineConfig")
        return EngineConfig(
            collect_results=collect,
            cache_variant=self.cache_variant,
            cache_capacity_ids=self.cache_capacity_ids,
            two_stage=self.two_stage,
            stealing=self.stealing,
            output_queue_capacity=self.output_queue_capacity,
            batch_size=self.batch_size,
            scan_pivot_chunk=self.scan_pivot_chunk,
        )

    def mutated(self, disable_symmetry: bool = True) -> "EngineSpec":
        """Copy with the symmetry-breaking mutation toggled (self-test)."""
        return replace(self, name=self.name + "-nosym",
                       disable_symmetry=disable_symmetry)

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (``inf`` encoded as ``null``)."""
        d = asdict(self)
        if self.output_queue_capacity == float("inf"):
            d["output_queue_capacity"] = None
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "EngineSpec":
        """Inverse of :meth:`to_dict`."""
        d = dict(d)
        if d.get("output_queue_capacity") is None:
            d["output_queue_capacity"] = float("inf")
        return cls(**d)


def default_matrix() -> list[EngineSpec]:
    """The full engine matrix: the four baselines, and HUGE across the
    join-algorithm × communication-mode (via plan modes), scheduler and
    cache dimensions."""
    return [
        # -- HUGE plan dimension: wco/pull vs hash/push joins (Equation 3)
        EngineSpec("huge-default"),
        EngineSpec("huge-wco", plan="wco"),
        EngineSpec("huge-plugin-seed", plan="seed"),
        EngineSpec("huge-plugin-benu", plan="benu"),
        EngineSpec("huge-plugin-rads", plan="rads"),
        EngineSpec("huge-plugin-starjoin", plan="starjoin"),
        # -- scheduler dimension: DFS / BFS extremes, stealing modes
        EngineSpec("huge-dfs", output_queue_capacity=0.0, batch_size=8),
        EngineSpec("huge-bfs", output_queue_capacity=float("inf")),
        EngineSpec("huge-nostl", stealing="none"),
        EngineSpec("huge-rgp", stealing="region-group"),
        # -- cache dimension: Table 5 variants, tiny capacity, one-stage
        EngineSpec("huge-tiny-cache", cache_capacity_ids=2, batch_size=8),
        EngineSpec("huge-lrbu-copy", cache_variant="lrbu-copy"),
        EngineSpec("huge-lrbu-lock", cache_variant="lrbu-lock"),
        EngineSpec("huge-lru-inf", cache_variant="lru-inf"),
        EngineSpec("huge-cncr-lru", cache_variant="cncr-lru"),
        EngineSpec("huge-one-stage", two_stage=False),
        # -- the baseline systems
        EngineSpec("seed", engine="seed"),
        EngineSpec("bigjoin", engine="bigjoin"),
        EngineSpec("benu", engine="benu"),
        EngineSpec("rads", engine="rads"),
        # -- the ESU motif-census workload family (pattern-independent)
        *census_matrix(),
        # -- the incremental (streaming delta) workload family
        *delta_matrix(),
    ]


def census_matrix() -> list[EngineSpec]:
    """The census workload family: one ESU motif-census spec per size
    ``k``.  Census specs ignore the workload's pattern — they enumerate
    *all* connected k-subgraphs of the workload's data graph and are
    checked against census-specific oracles (brute-force totals,
    per-class counts, the automorphism identity, and the canonical-memo
    once-per-class guarantee)."""
    return [EngineSpec(f"census-k{k}", engine="census", census_k=k)
            for k in CENSUS_SIZES]


def delta_matrix() -> list[EngineSpec]:
    """The incremental workload family: one spec per update-batch schedule.

    Each spec derives a deterministic batch schedule from the workload
    (held-out inserts, planted-then-deleted extras, or both) whose final
    graph equals the workload graph, replays it through
    :class:`~repro.stream.delta.IncrementalMatcher`, and presents the
    accumulated standing matches as the outcome — so the standard count /
    embeddings / symmetry oracles assert incremental ≡ from-scratch,
    while the delta-once oracle asserts no batch double-counts or
    retracts an undelivered match."""
    return [EngineSpec(f"delta-{s}", engine="delta", delta_schedule=s)
            for s in DELTA_SCHEDULES]


def baseline_matrix() -> list[EngineSpec]:
    """The baseline-systems profile: the four reproduced systems plus the
    HUGE plug-in plans that replay their logical strategies.  This is the
    matrix the columnar baseline runtime is validated against — fuzzing it
    cross-checks the vectorised SEED/BiGJoin/BENU/RADS inner loops (and
    their OOM/overtime trip points) against every oracle without paying
    for the full HUGE scheduler/cache dimensions."""
    keep = {"huge-plugin-seed", "huge-plugin-benu", "huge-plugin-rads",
            "huge-plugin-starjoin", "seed", "bigjoin", "benu", "rads"}
    return [s for s in default_matrix() if s.name in keep]


def smoke_matrix() -> list[EngineSpec]:
    """A cheaper sub-matrix for the CI smoke run: one representative per
    dimension, all baselines kept (cross-system agreement is the point)."""
    keep = {"huge-default", "huge-wco", "huge-plugin-seed", "huge-dfs",
            "huge-bfs", "huge-nostl", "huge-tiny-cache", "huge-cncr-lru",
            "seed", "bigjoin", "benu", "rads"}
    return [s for s in default_matrix() if s.name in keep]
