"""Randomized conformance workloads: graph × pattern × cluster shape.

A :class:`Workload` is fully materialised (explicit edge list, labels and
pattern) so that a failing case can be shrunk edge-by-edge and serialised
into a replayable JSON artifact — regenerating from a seed would tie the
artifact to the exact generator version.  The generation seed is kept for
provenance only.

Graph families mirror the paper's dataset spread (§7.1): uniform random,
power-law (social), clustered power-law (web-ish triangles), plus a
degenerate family — sparse random edge sets with isolated vertices and
multiple components — that exercises the empty-result paths real datasets
never hit.  Patterns are the paper queries ``q1 .. q7`` (and the triangle)
plus random connected patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

import numpy as np

from ..graph import generators
from ..graph.graph import Graph
from ..query.pattern import QueryGraph, get_query

__all__ = ["GRAPH_KINDS", "PAPER_PATTERNS", "Workload", "random_pattern",
           "random_workload"]

#: graph families the generator draws from
GRAPH_KINDS = ("uniform", "power-law", "clustered", "degenerate")

#: paper queries used as-is (q8 is excluded: 6-cycle counting on the
#: brute-force reference dominates smoke-run time for little extra cover)
PAPER_PATTERNS = ("triangle", "q1", "q2", "q3", "q4", "q5", "q6", "q7")


@dataclass(frozen=True)
class Workload:
    """One fully-specified conformance case input."""

    num_vertices: int
    edges: tuple[tuple[int, int], ...]
    labels: tuple[int, ...] | None
    pattern_name: str
    pattern_num_vertices: int
    pattern_edges: tuple[tuple[int, int], ...]
    pattern_labels: tuple[int | None, ...] | None
    num_machines: int = 2
    workers_per_machine: int = 2
    partition_seed: int = 0
    seed: int = 0
    """Generation seed (provenance only; the workload is materialised)."""

    # -- materialisation -----------------------------------------------------

    def graph(self) -> Graph:
        """The data graph."""
        return Graph.from_edges(self.edges, num_vertices=self.num_vertices)

    def label_array(self) -> np.ndarray | None:
        """Per-vertex data labels, or ``None`` for unlabelled graphs."""
        if self.labels is None:
            return None
        return np.asarray(self.labels, dtype=np.int64)

    def pattern(self) -> QueryGraph:
        """The query pattern."""
        return QueryGraph(self.pattern_num_vertices, self.pattern_edges,
                          name=self.pattern_name,
                          labels=self.pattern_labels)

    @property
    def is_labelled(self) -> bool:
        """Whether the data graph carries vertex labels."""
        return self.labels is not None

    def describe(self) -> str:
        """One-line human summary."""
        lab = "labelled" if self.is_labelled else "unlabelled"
        return (f"{self.pattern_name} on |V|={self.num_vertices} "
                f"|E|={len(self.edges)} {lab} graph, "
                f"{self.num_machines}x{self.workers_per_machine} cluster, "
                f"seed={self.seed}")

    # -- shrinking support ----------------------------------------------------

    def with_edges(self, edges: Sequence[tuple[int, int]]) -> "Workload":
        """Copy with a reduced edge set (same vertex count)."""
        return replace(self, edges=tuple(tuple(e) for e in edges))

    def without_labels(self) -> "Workload":
        """Copy with all data and pattern labels stripped."""
        return replace(self, labels=None, pattern_labels=None)

    def compact(self) -> "Workload":
        """Copy with vertices untouched by any edge removed and the
        remaining ids renumbered densely (isolated vertices cannot host a
        pattern vertex, but the shrinker re-verifies the failure anyway)."""
        used = sorted({v for e in self.edges for v in e})
        if len(used) == self.num_vertices:
            return self
        remap = {old: new for new, old in enumerate(used)}
        labels = None
        if self.labels is not None:
            labels = tuple(self.labels[old] for old in used)
        return replace(
            self, num_vertices=len(used),
            edges=tuple((remap[u], remap[v]) for u, v in self.edges),
            labels=labels)

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "num_vertices": self.num_vertices,
            "edges": [list(e) for e in self.edges],
            "labels": list(self.labels) if self.labels is not None else None,
            "pattern_name": self.pattern_name,
            "pattern_num_vertices": self.pattern_num_vertices,
            "pattern_edges": [list(e) for e in self.pattern_edges],
            "pattern_labels": (list(self.pattern_labels)
                               if self.pattern_labels is not None else None),
            "num_machines": self.num_machines,
            "workers_per_machine": self.workers_per_machine,
            "partition_seed": self.partition_seed,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Workload":
        """Inverse of :meth:`to_dict`."""
        return cls(
            num_vertices=int(d["num_vertices"]),
            edges=tuple((int(u), int(v)) for u, v in d["edges"]),
            labels=(tuple(int(x) for x in d["labels"])
                    if d.get("labels") is not None else None),
            pattern_name=str(d["pattern_name"]),
            pattern_num_vertices=int(d["pattern_num_vertices"]),
            pattern_edges=tuple((int(u), int(v))
                                for u, v in d["pattern_edges"]),
            pattern_labels=(tuple(None if x is None else int(x)
                                  for x in d["pattern_labels"])
                            if d.get("pattern_labels") is not None else None),
            num_machines=int(d.get("num_machines", 2)),
            workers_per_machine=int(d.get("workers_per_machine", 2)),
            partition_seed=int(d.get("partition_seed", 0)),
            seed=int(d.get("seed", 0)),
        )

    @classmethod
    def from_parts(cls, graph: Graph, pattern: QueryGraph,
                   labels: np.ndarray | None = None,
                   num_machines: int = 2, workers_per_machine: int = 2,
                   partition_seed: int = 0, seed: int = 0) -> "Workload":
        """Build a workload from already-constructed objects."""
        return cls(
            num_vertices=graph.num_vertices,
            edges=tuple(graph.edges()),
            labels=(tuple(int(x) for x in labels)
                    if labels is not None else None),
            pattern_name=pattern.name,
            pattern_num_vertices=pattern.num_vertices,
            pattern_edges=tuple(sorted(pattern.edges)),
            pattern_labels=(pattern.labels if pattern.is_labelled else None),
            num_machines=num_machines,
            workers_per_machine=workers_per_machine,
            partition_seed=partition_seed,
            seed=seed,
        )


# -- random generation ---------------------------------------------------------


def random_pattern(rng: np.random.Generator,
                   max_vertices: int = 4) -> QueryGraph:
    """A random connected unlabelled pattern on 3..``max_vertices`` vertices
    (spanning path plus random extra edges, like the tests' strategy)."""
    n = int(rng.integers(3, max_vertices + 1))
    edges = {(i, i + 1) for i in range(n - 1)}
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extras = int(rng.integers(0, len(possible) + 1))
    for idx in rng.choice(len(possible), size=extras, replace=False):
        edges.add(possible[int(idx)])
    return QueryGraph(n, edges, name=f"rand{n}v{len(edges)}e")


def _random_graph(rng: np.random.Generator, kind: str,
                  max_vertices: int) -> Graph:
    gseed = int(rng.integers(0, 2 ** 31))
    if kind == "uniform":
        n = int(rng.integers(6, max_vertices + 1))
        p = float(rng.uniform(0.15, 0.45))
        return generators.erdos_renyi(n, p, seed=gseed)
    if kind == "power-law":
        n = int(rng.integers(6, max_vertices + 1))
        m = int(rng.integers(1, min(4, n - 1)))
        return generators.barabasi_albert(n, m, seed=gseed)
    if kind == "clustered":
        n = int(rng.integers(6, max_vertices + 1))
        m = int(rng.integers(1, min(4, n - 1)))
        return generators.power_law_cluster(
            n, m, triad_p=float(rng.uniform(0.3, 0.9)), seed=gseed)
    if kind == "degenerate":
        # sparse random edge set: isolated vertices and several components
        n = int(rng.integers(5, max_vertices + 1))
        num_edges = int(rng.integers(0, max(1, n)))
        edges = []
        for _ in range(num_edges):
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v:
                edges.append((u, v))
        return Graph.from_edges(edges, num_vertices=n)
    raise ValueError(f"unknown graph kind {kind!r}; "
                     f"choose from {GRAPH_KINDS}")


def random_workload(seed: int, max_vertices: int = 14,
                    labelled_fraction: float = 0.25,
                    num_labels: int = 3) -> Workload:
    """Generate one deterministic workload from ``seed``.

    Large patterns (≥ 5 vertices) are paired with smaller graphs to keep
    the brute-force reference fast enough for smoke runs.
    """
    rng = np.random.default_rng(seed)
    kind = GRAPH_KINDS[int(rng.integers(len(GRAPH_KINDS)))]

    if rng.random() < 0.6:
        pattern = get_query(PAPER_PATTERNS[int(rng.integers(
            len(PAPER_PATTERNS)))])
    else:
        pattern = random_pattern(rng)
    if pattern.num_vertices >= 5:
        max_vertices = min(max_vertices, 11)
    graph = _random_graph(rng, kind, max_vertices)

    labels: np.ndarray | None = None
    pattern_labels: tuple[int | None, ...] | None = None
    if rng.random() < labelled_fraction:
        labels = rng.integers(0, num_labels, size=graph.num_vertices)
        # constrain about half the pattern vertices; the rest stay wildcards
        pattern_labels = tuple(
            int(rng.integers(num_labels)) if rng.random() < 0.5 else None
            for _ in range(pattern.num_vertices))
        if any(l is not None for l in pattern_labels):
            pattern = QueryGraph(pattern.num_vertices, pattern.edges,
                                 name=pattern.name + "-lab",
                                 labels=pattern_labels)
        else:
            pattern_labels = None

    return Workload.from_parts(
        graph, pattern, labels=labels,
        num_machines=int(rng.integers(1, 4)),
        workers_per_machine=int(rng.integers(1, 3)),
        partition_seed=int(rng.integers(0, 8)),
        seed=seed)
