"""Conformance CLI: ``python -m repro.conformance <command>``.

Commands
--------
``run``
    Fuzz the engine matrix with randomized workloads::

        python -m repro.conformance run --cases 100 --seed 1
        python -m repro.conformance run --cases 5000 --matrix full \\
            --artifact-dir conformance-artifacts   # long soak

    Exits non-zero if any oracle is violated; each failing case is shrunk
    to a minimal reproducer and written as a JSON artifact.

``replay``
    Re-execute a failure artifact::

        python -m repro.conformance replay conformance-artifacts/x.json

    Exits 1 while the failure reproduces, 0 once it is fixed.

``matrix``
    List the engine configurations of the smoke/full matrices.
"""

from __future__ import annotations

import argparse
import sys

from .testing.configs import (baseline_matrix, census_matrix,
                              default_matrix, delta_matrix, smoke_matrix)
from .testing.harness import ConformanceHarness, load_artifact, run_case

__all__ = ["main", "build_parser"]

_MATRICES = {"full": default_matrix, "smoke": smoke_matrix,
             "baseline": baseline_matrix, "census": census_matrix,
             "delta": delta_matrix}


def _matrix(name: str):
    return _MATRICES[name]()


def _cmd_run(args: argparse.Namespace) -> int:
    harness = ConformanceHarness(
        specs=_matrix(args.matrix),
        seed=args.seed,
        max_vertices=args.max_vertices,
        shrink=not args.no_shrink,
        artifact_dir=args.artifact_dir,
    )
    progress = print if args.verbose else None
    report = harness.run(num_cases=args.cases,
                         max_seconds=args.max_seconds,
                         stop_on_failure=not args.keep_going,
                         progress=progress)
    for failure in report.failures:
        print("conformance failure:")
        print(failure.describe())
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        workload, spec, recorded = load_artifact(args.artifact)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot load artifact {args.artifact!r}: {exc}",
              file=sys.stderr)
        return 2
    print(f"replaying {spec.name} on {workload.describe()}")
    if recorded:
        print("recorded violations:")
        for f in recorded:
            print(f"  {f}")
    outcome = run_case(workload, spec)
    if outcome.failures:
        print("reproduced violations:")
        for f in outcome.failures:
            print(f"  {f}")
        return 1
    print("no violation reproduced — the recorded failure appears fixed")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    for spec in _matrix(args.matrix):
        if spec.is_huge:
            print(f"{spec.name:22s} huge  plan={spec.plan:9s} "
                  f"cache={spec.cache_variant:9s} stealing={spec.stealing:12s} "
                  f"queue={spec.output_queue_capacity:g} "
                  f"batch={spec.batch_size}")
        elif spec.is_census:
            print(f"{spec.name:22s} census  k={spec.census_k}")
        elif spec.is_delta:
            print(f"{spec.name:22s} delta  schedule={spec.delta_schedule} "
                  f"batches={spec.delta_batches}")
        else:
            print(f"{spec.name:22s} {spec.engine}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.conformance`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="differential conformance harness for the HUGE "
                    "reproduction (engine-matrix fuzzing with invariant "
                    "oracles)")
    sub = parser.add_subparsers(dest="command", required=True)

    r = sub.add_parser("run", help="fuzz the engine matrix")
    r.add_argument("--cases", type=int, default=100,
                   help="minimum workload × config cases to run")
    r.add_argument("--seed", type=int, default=0,
                   help="base seed of the deterministic workload stream")
    r.add_argument("--matrix",
                   choices=("smoke", "full", "baseline", "census", "delta"),
                   default="smoke",
                   help="engine matrix to fan each workload across "
                        "(baseline: the four baseline systems + HUGE's "
                        "plug-in replicas of their plans; census: the ESU "
                        "motif-census family at k=3..5; delta: the "
                        "incremental streaming-update family across "
                        "insert/delete/mixed schedules)")
    r.add_argument("--max-vertices", type=int, default=14,
                   help="data-graph size cap")
    r.add_argument("--max-seconds", type=float, default=None,
                   help="stop starting new workloads after this wall time")
    r.add_argument("--artifact-dir", default="conformance-artifacts",
                   help="directory for replayable failure artifacts")
    r.add_argument("--no-shrink", action="store_true",
                   help="report failures without minimising them")
    r.add_argument("--keep-going", action="store_true",
                   help="collect every failure instead of stopping at the "
                        "first")
    r.add_argument("--verbose", action="store_true",
                   help="print per-workload progress")
    r.set_defaults(func=_cmd_run)

    p = sub.add_parser("replay", help="re-execute a failure artifact")
    p.add_argument("artifact", help="path to a JSON artifact written by "
                                    "`run`")
    p.set_defaults(func=_cmd_replay)

    m = sub.add_parser("matrix", help="list the engine matrix")
    m.add_argument("--matrix",
                   choices=("smoke", "full", "baseline", "census", "delta"),
                   default="full")
    m.set_defaults(func=_cmd_matrix)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
