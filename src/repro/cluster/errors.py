"""Exceptions raised by the simulated runtime."""

from __future__ import annotations

__all__ = ["ReproError", "OutOfMemoryError", "OvertimeError", "PlanError",
           "QueryCancelledError"]


class ReproError(Exception):
    """Base class for all errors raised by the repro runtime."""


class OutOfMemoryError(ReproError):
    """A machine exceeded its memory budget — the paper's ``00M``."""

    def __init__(self, machine: int, used: float, budget: float):
        self.machine = machine
        self.used = used
        self.budget = budget
        super().__init__(
            f"machine {machine} out of memory: {used / 2**20:.1f} MiB used, "
            f"budget {budget / 2**20:.1f} MiB")


class OvertimeError(ReproError):
    """Simulated elapsed time exceeded the time budget — the paper's ``0T``."""

    def __init__(self, elapsed: float, budget: float):
        self.elapsed = elapsed
        self.budget = budget
        super().__init__(
            f"query overtime: simulated {elapsed:.1f}s exceeds budget {budget:.1f}s")


class PlanError(ReproError):
    """An execution plan is malformed or cannot be translated."""


class QueryCancelledError(ReproError):
    """The query's cancellation token fired (client cancel or deadline).

    Raised from inside the scheduler loop at the next poll point, so a
    cancelled run unwinds through the ordinary error path: buffers are
    released and the metrics ledger stays balanced.
    """

    def __init__(self, reason: str = "cancelled"):
        self.reason = reason
        super().__init__(f"query cancelled: {reason}")
