"""Simulated distributed substrate: cost model, metrics, cluster, errors."""

from .cost import CostModel
from .errors import OutOfMemoryError, OvertimeError, PlanError, ReproError
from .metrics import MachineMetrics, Metrics, RunReport
from .cluster import Cluster

__all__ = [
    "CostModel",
    "OutOfMemoryError",
    "OvertimeError",
    "PlanError",
    "ReproError",
    "MachineMetrics",
    "Metrics",
    "RunReport",
    "Cluster",
]
