"""Cost model for the simulated cluster.

The paper measures wall-clock total time ``T``, computation time ``T_R``,
communication time ``T_C = T − T_R``, transferred volume ``C`` and peak
memory ``M`` on a real 10-machine cluster (Table 1).  This reproduction
executes all algorithmic work for real but derives *time* from counted
operations and bytes through the weights below.

Defaults model the paper's local cluster: 4 workers per machine, a 10 Gbps
network (1.25 GB/s), ~100 µs per message, and a per-request overhead for
the external key-value store (the Cassandra stand-in) that is orders of
magnitude above a local adjacency access — the effect the paper blames for
BENU's poor computation time.

All ``*_op`` weights are in abstract *ops*; ``compute_rate`` converts ops
to seconds.  Changing the rate rescales every engine identically, so the
comparative results (who wins, by what factor) are rate-invariant.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Weights translating counted work into simulated time."""

    # -- computation (ops) ---------------------------------------------------
    compute_rate: float = 1.0e7
    """Weighted ops each machine retires per second."""

    scan_op: float = 1.0
    """Per edge touched while scanning the local partition."""

    intersect_op: float = 0.25
    """Per adjacency element consumed by a (multi-way) intersection.
    Cheaper than ``emit_op``: intersections are tight scans over
    contiguous sorted arrays, while emits construct and copy tuples."""

    emit_op: float = 1.0
    """Per vertex-id materialised into an output tuple."""

    hash_build_op: float = 2.0
    """Per tuple inserted into a hash-join table."""

    hash_probe_op: float = 2.0
    """Per hash-join probe."""

    sort_op: float = 3.0
    """Per tuple·pass during external merge sort (spill path)."""

    sched_switch_op: float = 2.0e3
    """Per operator (re)schedule event — the synchronisation barrier that
    makes very small output queues (DFS-style scheduling) slow (Exp-7)."""

    batch_overhead_op: float = 50.0
    """Fixed overhead per batch processed by an operator."""

    # -- cache penalties (Table 5 ablations) ----------------------------------
    cache_copy_op_per_id: float = 0.5
    """Memory-copy cost per neighbour id copied out of a copying cache."""

    cache_lock_op: float = 60.0
    """Lock acquire/release cost per access to a locking cache."""

    cache_update_op: float = 8.0
    """Cache bookkeeping (position update) per access for LRU-style caches."""

    # -- network ---------------------------------------------------------------
    bandwidth_bytes_per_s: float = 4.0e7
    """Effective link speed.  The paper's cluster has a 10 Gbps network;
    the default here is scaled down with the stand-in graph sizes so that
    volume-driven costs keep the same *relative* weight against compute
    as at paper scale (see DESIGN.md §2)."""

    latency_s: float = 1.0e-5
    """One-way per-message latency (send-side charge)."""

    bytes_per_id: int = 8
    """Wire size of one vertex id."""

    rpc_request_overhead_bytes: int = 64
    """Fixed envelope per RPC request message."""

    # -- external key-value store (BENU's Cassandra) ---------------------------
    kvstore_request_s: float = 4.0e-4
    """Client-side stall per KV request (round trip through the external
    store); charged as *computation* time — matching the paper's
    observation that BENU's pulling overhead lands in ``T_R``."""

    kvstore_access_op: float = 2000.0
    """Serialisation/deserialisation ops per KV request."""

    # -- budgets ----------------------------------------------------------------
    memory_budget_bytes: float = float("inf")
    """Per-machine memory budget; exceeding it raises ``OutOfMemoryError``
    (the paper's 00M).  Benchmarks set this relative to graph size."""

    time_budget_s: float = float("inf")
    """Simulated wall-clock budget; exceeding it raises ``OvertimeError``
    (the paper's 0T — "we allow 3 hours for each query")."""

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """A copy of this model with the given fields replaced."""
        return replace(self, **kwargs)

    def ops_to_seconds(self, ops: float) -> float:
        """Convert weighted ops to seconds of simulated compute."""
        return ops / self.compute_rate

    def intersection_ops(self, lengths: "list[int]") -> float:
        """Cost of a multiway sorted-set intersection with galloping.

        Worst-case-optimal engines iterate the smallest list and
        binary-search the others, so a hub×small intersection costs
        ``O(small · log(hub))`` — not ``O(hub)``.  This asymmetry (versus
        hash joins that must *materialise* the hub's star) is what makes
        wco joins win on skewed graphs.  A single "list" is a plain
        candidate scan.
        """
        if not lengths:
            return 0.0
        ordered = sorted(lengths)
        smallest = ordered[0]
        ops = float(smallest) * self.intersect_op
        for other in ordered[1:]:
            ops += smallest * math.log2(other + 2) * self.intersect_op
        return ops

    def transfer_seconds(self, num_bytes: float, messages: int) -> float:
        """Seconds to move ``num_bytes`` across ``messages`` sends."""
        return num_bytes / self.bandwidth_bytes_per_s + messages * self.latency_s
