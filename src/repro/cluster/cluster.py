"""The simulated shared-nothing cluster.

``Cluster`` bundles a partitioned data graph, a cost model and the metrics
ledger, and exposes the two communication primitives of the paper's
architecture (§4.1):

* **GetNbrs RPC** (:meth:`Cluster.get_nbrs`) — pulling communication: a
  machine requests the adjacency lists of a batch of vertices from their
  owners.  Requests are aggregated per owner (one message pair per owner
  per call), which is exactly the RPC-batching effect Exp-4 measures.
* **Router pushes** (:meth:`Cluster.push`) — pushing communication: a
  machine ships a batch of partial-result tuples to a destination machine.

All byte/message accounting flows into :class:`~repro.cluster.metrics.Metrics`.
The cluster is single-process and deterministic; "machines" are indices.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

import numpy as np

from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph
from ..obs.trace import NULL_TRACER
from .cost import CostModel
from .metrics import Metrics

__all__ = ["Cluster"]


class Cluster:
    """A simulated ``k``-machine shared-nothing cluster.

    Parameters
    ----------
    graph:
        The data graph to partition across machines.
    num_machines:
        Cluster size ``k`` (paper default: 10-machine local cluster).
    workers_per_machine:
        Worker threads per machine (paper default: 4 in the local cluster).
    cost:
        The cost model converting counted work into simulated time.
    seed:
        Seed for the random vertex partitioning.
    """

    def __init__(self, graph: Graph, num_machines: int = 10,
                 workers_per_machine: int = 4,
                 cost: CostModel | None = None, seed: int = 0,
                 labels: "np.ndarray | None" = None,
                 owner: "np.ndarray | None" = None):
        self.cost = cost or CostModel()
        self.pgraph = PartitionedGraph(graph, num_machines, seed=seed,
                                       owner=owner)
        self.metrics = Metrics(num_machines, workers_per_machine, self.cost)
        self.num_machines = num_machines
        self.workers_per_machine = workers_per_machine
        #: set by the engine for the duration of a traced run; RPC service
        #: time lands on the owner machine's clock, so the serve spans must
        #: be emitted here, where that charge happens
        self.tracer = NULL_TRACER
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            if len(labels) != graph.num_vertices:
                raise ValueError("need one label per vertex")
            labels.setflags(write=False)
        self.labels = labels

    # -- convenience -----------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The global data graph (planner use)."""
        return self.pgraph.graph

    def label_of(self, v: int) -> int | None:
        """Label of data vertex ``v`` (``None`` on unlabelled graphs)."""
        if self.labels is None:
            return None
        return int(self.labels[v])

    def machine_of(self, v: int) -> int:
        """Owner machine of vertex ``v``."""
        return self.pgraph.owner_of(v)

    def local_vertices(self, machine: int) -> np.ndarray:
        """Vertices owned by ``machine``."""
        return self.pgraph.local_vertices(machine)

    def reset_metrics(self) -> None:
        """Start a fresh metrics ledger (same cluster/partitioning)."""
        self.metrics = Metrics(self.num_machines, self.workers_per_machine,
                               self.cost)

    # -- pulling: the GetNbrs RPC -----------------------------------------------

    def get_nbrs(self, requester: int,
                 vertices: Iterable[int]) -> dict[int, np.ndarray]:
        """Fetch adjacency lists, pulling remote ones via batched RPC.

        Vertices owned by ``requester`` are read locally for free; the rest
        are grouped by owner and fetched with **one request/response pair
        per owner** (the fetch-stage RPC aggregation of §4.4).  Returns a
        mapping ``vertex -> sorted neighbour array`` (CSR views, zero-copy).
        """
        cost, metrics = self.cost, self.metrics
        result: dict[int, np.ndarray] = {}
        by_owner: dict[int, list[int]] = defaultdict(list)
        for v in vertices:
            v = int(v)
            owner = self.pgraph.owner_of(v)
            if owner == requester:
                result[v] = self.pgraph.neighbours_local(v, requester)
            else:
                by_owner[owner].append(v)
        tracer = self.tracer
        for owner, vids in by_owner.items():
            if tracer.enabled:
                t0 = tracer.now(owner)
            request_bytes = (cost.rpc_request_overhead_bytes
                             + len(vids) * cost.bytes_per_id)
            metrics.send(requester, owner, request_bytes, messages=1)
            metrics.record_rpc(requester)
            response_ids = 0
            for v in vids:
                nbrs = self.pgraph.neighbours_local(v, owner)
                result[v] = nbrs
                response_ids += 1 + len(nbrs)
            metrics.send(owner, requester, response_ids * cost.bytes_per_id,
                         messages=1)
            if tracer.enabled:
                tracer.complete("rpc serve", owner, t0, tracer.now(owner),
                                {"from": requester, "ids": response_ids})
        return result

    # -- pushing: the router ------------------------------------------------------

    def push(self, src: int, dst: int, num_tuples: int, arity: int,
             messages: int = 1) -> None:
        """Account a pushed batch of ``num_tuples`` arity-``arity`` tuples."""
        if num_tuples <= 0:
            return
        self.metrics.send(
            src, dst, num_tuples * arity * self.cost.bytes_per_id, messages)

    def shuffle_cost(self, src: int, destinations: Mapping[int, int],
                     arity: int) -> None:
        """Account a hash-shuffle: ``destinations[dst] = num_tuples``."""
        for dst, count in destinations.items():
            self.push(src, dst, count, arity)

    # -- sizing helpers -------------------------------------------------------------

    def tuple_bytes(self, arity: int) -> int:
        """Wire/memory size of one arity-``arity`` partial-result tuple."""
        return arity * self.cost.bytes_per_id

    def graph_bytes(self) -> int:
        """Approximate size of the whole data graph on the wire."""
        g = self.pgraph.graph
        return (2 * g.num_edges + g.num_vertices) * self.cost.bytes_per_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Cluster(k={self.num_machines}, "
                f"w={self.workers_per_machine}, graph={self.pgraph.graph!r})")
