"""Runtime accounting: ops, bytes, messages, memory — and derived times.

Every engine charges its work here.  The report mirrors the paper's
metrics: total time ``T``, computation time ``T_R``, communication time
``T_C = T − T_R``, total transferred volume ``C`` and peak per-machine
memory ``M`` (Table 1), plus per-worker busy times for the load-balancing
experiment (Exp-8) and cache hit rates for Exp-5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .cost import CostModel
from .errors import OutOfMemoryError, OvertimeError

__all__ = ["MachineMetrics", "Metrics", "RunReport"]


@dataclass
class MachineMetrics:
    """Counters for one simulated machine."""

    compute_ops: float = 0.0
    direct_compute_s: float = 0.0  # e.g. external KV-store stalls
    bytes_sent: int = 0
    messages_sent: int = 0
    bytes_received: int = 0
    messages_received: int = 0
    rpc_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cur_mem_bytes: float = 0.0
    peak_mem_bytes: float = 0.0
    spilled_bytes: int = 0
    steals: int = 0
    mem_underflows: int = 0
    worker_ops: list[float] = field(default_factory=list)


@dataclass(frozen=True)
class RunReport:
    """Summary of one query execution (the paper's T/T_R/T_C/C/M)."""

    total_time_s: float
    compute_time_s: float
    comm_time_s: float
    bytes_transferred: int
    messages: int
    peak_memory_bytes: float
    cache_hit_rate: float
    worker_time_stddev_s: float
    aggregate_worker_time_s: float
    network_utilisation: float
    per_machine_time_s: tuple[float, ...]
    mem_underflows: int = 0

    @property
    def comm_gb(self) -> float:
        """Transferred volume in GB (the paper's ``C``)."""
        return self.bytes_transferred / 1e9

    @property
    def peak_memory_gb(self) -> float:
        """Peak per-machine memory in GB (the paper's ``M``)."""
        return self.peak_memory_bytes / 1e9

    def as_dict(self) -> dict:
        """JSON-serialisable view of the report (all fields + derived GB)."""
        return {
            "total_time_s": self.total_time_s,
            "compute_time_s": self.compute_time_s,
            "comm_time_s": self.comm_time_s,
            "bytes_transferred": self.bytes_transferred,
            "comm_gb": self.comm_gb,
            "messages": self.messages,
            "peak_memory_bytes": self.peak_memory_bytes,
            "peak_memory_gb": self.peak_memory_gb,
            "cache_hit_rate": self.cache_hit_rate,
            "worker_time_stddev_s": self.worker_time_stddev_s,
            "aggregate_worker_time_s": self.aggregate_worker_time_s,
            "network_utilisation": self.network_utilisation,
            "per_machine_time_s": list(self.per_machine_time_s),
            "mem_underflows": self.mem_underflows,
        }


class Metrics:
    """Cluster-wide accounting with budget enforcement."""

    def __init__(self, num_machines: int, workers_per_machine: int,
                 cost: CostModel):
        if num_machines < 1 or workers_per_machine < 1:
            raise ValueError("need at least one machine and one worker")
        self.cost = cost
        self.num_machines = num_machines
        self.workers_per_machine = workers_per_machine
        self.machines = [
            MachineMetrics(worker_ops=[0.0] * workers_per_machine)
            for _ in range(num_machines)
        ]
        self._extra_mem_bytes = 0.0  # constant overheads (cache capacity etc.)

    # -- charging -------------------------------------------------------------

    def charge_ops(self, machine: int, ops: float,
                   worker: int | None = None) -> None:
        """Charge weighted compute ops to a machine (and optionally to one
        of its workers, for per-worker load statistics)."""
        m = self.machines[machine]
        m.compute_ops += ops
        if worker is not None:
            m.worker_ops[worker] += ops

    def charge_worker_ops(self, machine: int, per_worker: list[float]) -> None:
        """Charge a batch of per-worker op totals at once."""
        m = self.machines[machine]
        for w, ops in enumerate(per_worker):
            m.worker_ops[w] += ops
        m.compute_ops += sum(per_worker)

    def charge_time(self, machine: int, seconds: float) -> None:
        """Charge compute-side time directly (e.g. KV-store stalls)."""
        self.machines[machine].direct_compute_s += seconds

    def send(self, src: int, dst: int, num_bytes: int, messages: int = 1) -> None:
        """Record a network transfer from ``src`` to ``dst``.

        Local (``src == dst``) moves are free — data stays in-process.
        """
        if src == dst:
            return
        m = self.machines[src]
        m.bytes_sent += num_bytes
        m.messages_sent += messages
        d = self.machines[dst]
        d.bytes_received += num_bytes
        d.messages_received += messages

    def send_external(self, machine: int, num_bytes: int,
                      messages: int = 1) -> None:
        """Record a transfer to an *off-cluster* endpoint (external KV store).

        Only the requesting machine's NIC is charged — the remote side is
        outside the simulated cluster, so there is no receiver machine to
        account and no in-cluster destination to pick.  Unlike :meth:`send`
        this never degenerates to a free ``src == dst`` self-send on
        single-machine clusters.
        """
        m = self.machines[machine]
        m.bytes_sent += num_bytes
        m.messages_sent += messages

    def record_rpc(self, machine: int, requests: int = 1) -> None:
        """Count RPC round trips issued by ``machine``."""
        self.machines[machine].rpc_requests += requests

    def record_cache(self, machine: int, hits: int = 0, misses: int = 0) -> None:
        """Record cache hit/miss counts for a machine."""
        m = self.machines[machine]
        m.cache_hits += hits
        m.cache_misses += misses

    def record_steal(self, machine: int) -> None:
        """Count one work-steal event initiated by ``machine``."""
        self.machines[machine].steals += 1

    def record_spill(self, machine: int, num_bytes: int) -> None:
        """Record bytes spilled to disk by a buffered join."""
        self.machines[machine].spilled_bytes += num_bytes

    # -- memory ---------------------------------------------------------------

    def alloc(self, machine: int, num_bytes: float) -> None:
        """Allocate simulated memory; raises ``OutOfMemoryError`` over budget."""
        m = self.machines[machine]
        m.cur_mem_bytes += num_bytes
        total = m.cur_mem_bytes + self._extra_mem_bytes
        if total > m.peak_mem_bytes:
            m.peak_mem_bytes = total
        if total > self.cost.memory_budget_bytes:
            raise OutOfMemoryError(machine, total, self.cost.memory_budget_bytes)

    def free(self, machine: int, num_bytes: float) -> None:
        """Release simulated memory.

        Freeing more than is currently allocated indicates a double-free
        accounting bug; the balance is still clamped to 0 (the simulation
        keeps running) but the underflow is counted so the conformance
        memory oracle can flag it.
        """
        m = self.machines[machine]
        if num_bytes > m.cur_mem_bytes + 1e-6:
            m.mem_underflows += 1
        m.cur_mem_bytes = max(0.0, m.cur_mem_bytes - num_bytes)

    def reserve_constant(self, num_bytes: float) -> None:
        """Add a constant per-machine overhead (cache capacity, buffers)."""
        self._extra_mem_bytes += num_bytes
        for i, m in enumerate(self.machines):
            total = m.cur_mem_bytes + self._extra_mem_bytes
            if total > m.peak_mem_bytes:
                m.peak_mem_bytes = total
            if total > self.cost.memory_budget_bytes:
                raise OutOfMemoryError(i, total, self.cost.memory_budget_bytes)

    # -- derived times ----------------------------------------------------------

    def compute_time(self, machine: int) -> float:
        """Simulated computation time ``T_R`` for one machine."""
        m = self.machines[machine]
        return self.cost.ops_to_seconds(m.compute_ops) + m.direct_compute_s

    def comm_time(self, machine: int) -> float:
        """Simulated communication time for one machine.

        Both directions count: a machine receiving a skewed hash-shuffle
        (all tuples of a hub join key) is bottlenecked on ingestion even
        if it sends little — the receiver-side skew that makes pushing
        systems' real communication time far worse than line rate.
        """
        m = self.machines[machine]
        return self.cost.transfer_seconds(
            m.bytes_sent + m.bytes_received,
            m.messages_sent + m.messages_received)

    def machine_time(self, machine: int) -> float:
        """Total simulated time for one machine."""
        return self.compute_time(machine) + self.comm_time(machine)

    def elapsed(self) -> float:
        """Cluster elapsed time = the slowest machine (shared-nothing)."""
        return max(self.machine_time(i) for i in range(self.num_machines))

    def check_time(self) -> None:
        """Raise ``OvertimeError`` if the time budget is exhausted."""
        elapsed = self.elapsed()
        if elapsed > self.cost.time_budget_s:
            raise OvertimeError(elapsed, self.cost.time_budget_s)

    # -- reporting ----------------------------------------------------------------

    def report(self) -> RunReport:
        """Snapshot the paper's metrics for the run so far."""
        total = self.elapsed()
        compute = max(self.compute_time(i) for i in range(self.num_machines))
        comm = max(0.0, total - compute)
        bytes_total = sum(m.bytes_sent for m in self.machines)
        messages = sum(m.messages_sent for m in self.machines)
        peak = max(m.peak_mem_bytes for m in self.machines)
        hits = sum(m.cache_hits for m in self.machines)
        misses = sum(m.cache_misses for m in self.machines)
        hit_rate = hits / (hits + misses) if hits + misses else 0.0

        worker_times = [
            ops / self.cost.compute_rate
            for m in self.machines for ops in m.worker_ops
        ]
        mean = sum(worker_times) / len(worker_times)
        stddev = math.sqrt(
            sum((t - mean) ** 2 for t in worker_times) / len(worker_times))

        # Exp-4's network utilisation: share of communication time spent
        # actually moving bytes (the rest is per-message latency).
        wire = bytes_total / self.cost.bandwidth_bytes_per_s
        lat = messages * self.cost.latency_s
        utilisation = wire / (wire + lat) if (wire + lat) > 0 else 0.0

        return RunReport(
            total_time_s=total,
            compute_time_s=compute,
            comm_time_s=comm,
            bytes_transferred=bytes_total,
            messages=messages,
            peak_memory_bytes=peak,
            cache_hit_rate=hit_rate,
            worker_time_stddev_s=stddev,
            aggregate_worker_time_s=sum(worker_times),
            network_utilisation=utilisation,
            per_machine_time_s=tuple(
                self.machine_time(i) for i in range(self.num_machines)),
            mem_underflows=sum(m.mem_underflows for m in self.machines),
        )
