"""Graph pattern mining on top of the HUGE engine (paper §6).

"A GPM system essentially processes subgraph enumeration repeatedly from
small query graphs to larger ones, each time adding one more query
vertex/edge.  Thus, HUGE can be deployed as a GPM system by adding the
control flow like loop."  This module provides that loop:

* :func:`motif_counts` — counts of every connected pattern with ``k``
  vertices (motif counting [52]);
* :func:`frequent_patterns` — the patterns whose instance count clears a
  support threshold, grown level-wise (frequent subgraph mining [36]).
"""

from __future__ import annotations

from itertools import combinations

from ..cluster.cluster import Cluster
from ..core.engine import EngineConfig, HugeEngine
from ..query.pattern import QueryGraph

__all__ = ["connected_patterns", "motif_counts", "frequent_patterns"]


def _canonical(pattern: QueryGraph) -> tuple:
    """A cheap canonical form for tiny patterns: the lexicographically
    smallest edge set over all vertex permutations."""
    from itertools import permutations

    n = pattern.num_vertices
    best = None
    for perm in permutations(range(n)):
        edges = tuple(sorted(
            (min(perm[u], perm[v]), max(perm[u], perm[v]))
            for u, v in pattern.edges))
        if best is None or edges < best:
            best = edges
    return (n, best)


def connected_patterns(k: int) -> list[QueryGraph]:
    """All non-isomorphic connected patterns on ``k`` vertices (k ≤ 5)."""
    if not 2 <= k <= 5:
        raise ValueError("pattern size must be between 2 and 5")
    all_edges = list(combinations(range(k), 2))
    seen: dict[tuple, QueryGraph] = {}
    for mask in range(1, 1 << len(all_edges)):
        edges = [e for i, e in enumerate(all_edges) if mask >> i & 1]
        q = QueryGraph(k, edges)
        if q.num_edges < k - 1 or not q.is_connected():
            continue
        if any(q.degree(v) == 0 for v in q.vertices()):
            continue
        key = _canonical(q)
        if key not in seen:
            seen[key] = QueryGraph(k, edges, name=f"motif{k}-{len(seen)}")
    return list(seen.values())


def motif_counts(cluster: Cluster, k: int,
                 config: EngineConfig | None = None) -> dict[str, int]:
    """Count every ``k``-vertex motif with the HUGE engine.

    Returns pattern name → instance count.  Each motif is one subgraph
    enumeration query planned by Algorithm 1; this is the GPM loop of §6.
    """
    engine = HugeEngine(cluster, config)
    counts: dict[str, int] = {}
    for pattern in connected_patterns(k):
        result = engine.run(pattern)
        counts[pattern.name] = result.count
    return counts


def frequent_patterns(cluster: Cluster, max_size: int, min_support: int,
                      config: EngineConfig | None = None
                      ) -> list[tuple[QueryGraph, int]]:
    """Level-wise frequent subgraph mining.

    Grows patterns one vertex at a time (sizes 2 .. ``max_size``), keeping
    those with at least ``min_support`` instances.  Anti-monotonicity
    prunes: a size-``k`` pattern is only counted if some frequent
    size-``k−1`` pattern is a subgraph shape of it (checked structurally).
    """
    if max_size < 2:
        raise ValueError("max_size must be at least 2")
    engine = HugeEngine(cluster, config)
    frequent: list[tuple[QueryGraph, int]] = []
    for size in range(2, max_size + 1):
        level = []
        for pattern in connected_patterns(size):
            result = engine.run(pattern)
            if result.count >= min_support:
                level.append((pattern, result.count))
        if not level:
            break
        frequent.extend(level)
    return frequent
