"""Graph pattern mining on top of the HUGE engine (paper §6).

"A GPM system essentially processes subgraph enumeration repeatedly from
small query graphs to larger ones, each time adding one more query
vertex/edge.  Thus, HUGE can be deployed as a GPM system by adding the
control flow like loop."  This module provides that loop, plus the
workload the loop exists for:

* :func:`motif_census` — the size-k motif census: an ESU enumeration of
  *all* connected k-subgraphs (k = 2..5) over bitset adjacency, each
  counted under its isomorphism class via a memoised canonical key
  (:class:`~repro.query.canonical.CanonicalMemo`), so the WL+BnB
  canonicaliser runs once per class, not once per subgraph;
* :func:`motif_counts` — engine-based counts of every connected pattern
  with ``k`` vertices (non-induced embeddings; motif counting [52]);
* :func:`frequent_patterns` — the patterns whose instance count clears a
  support threshold, grown level-wise (frequent subgraph mining [36]).

The census is a first-class simulated workload: each machine walks the
roots it owns, compute ops land on its workers' clocks, remote adjacency
rows are pulled once per machine through the GetNbrs RPC (a perfect
per-machine cache, the LRBU limit case), and the run yields the standard
:class:`~repro.cluster.metrics.RunReport` plus optional obs spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations
from typing import Any

from ..cluster.cluster import Cluster
from ..cluster.metrics import RunReport
from ..core.engine import EngineConfig, HugeEngine
from ..core.kernels import adjacency_bitsets, induced_bitrows
from ..query.canonical import CanonicalMemo
from ..query.pattern import QueryGraph

__all__ = ["CensusResult", "connected_patterns", "frequent_patterns",
           "motif_census", "motif_counts"]

#: simulated op weights of the census walk (deterministic by design):
#: one op per vertex added to a partial subgraph, ``k`` ops to encode an
#: enumerated leaf, and ``k²`` extra ops when the class must be
#: canonicalised (a memo miss)
_OP_EXPAND = 1.0


@lru_cache(maxsize=None)
def connected_patterns(k: int) -> tuple[QueryGraph, ...]:
    """All non-isomorphic connected patterns on ``k`` vertices (k ≤ 5).

    Classes are deduplicated by :meth:`QueryGraph.canonical_key` — the
    same WL+BnB canonicaliser the census memo and the serving plan cache
    key on — and returned in a deterministic order (``motif{k}-{i}``).
    """
    if not 2 <= k <= 5:
        raise ValueError("pattern size must be between 2 and 5")
    all_edges = list(combinations(range(k), 2))
    seen: dict[str, QueryGraph] = {}
    for mask in range(1, 1 << len(all_edges)):
        edges = [e for i, e in enumerate(all_edges) if mask >> i & 1]
        q = QueryGraph(k, edges)
        if q.num_edges < k - 1 or not q.is_connected():
            continue
        if any(q.degree(v) == 0 for v in q.vertices()):
            continue
        key = q.canonical_key()
        if key not in seen:
            seen[key] = QueryGraph(k, edges, name=f"motif{k}-{len(seen)}")
    return tuple(seen.values())


@lru_cache(maxsize=None)
def census_class_names(k: int) -> dict[str, str]:
    """Canonical key → motif name for every connected k-vertex class."""
    return {p.canonical_key(): p.name for p in connected_patterns(k)}


@dataclass(frozen=True)
class CensusResult:
    """Outcome of one size-k motif census run."""

    k: int
    counts: dict[str, int]
    """Per-class census counts, keyed by motif name (``motif{k}-{i}``);
    every connected class appears, zero-count ones included."""
    class_keys: dict[str, str]
    """Motif name → canonical key (the memo/plan-cache key space)."""
    total_subgraphs: int
    """Number of connected k-subgraphs enumerated (= sum of counts)."""
    memo_hits: int
    canonical_calls: int
    """WL+BnB canonicaliser invocations — at most one per class seen."""
    report: RunReport

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of classifications served from the memo."""
        total = self.memo_hits + self.canonical_calls
        return self.memo_hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable view (CLI ``--json`` and bench records)."""
        return {
            "k": self.k,
            "counts": dict(self.counts),
            "class_keys": dict(self.class_keys),
            "total_subgraphs": self.total_subgraphs,
            "memo_hits": self.memo_hits,
            "canonical_calls": self.canonical_calls,
            "memo_hit_rate": self.memo_hit_rate,
            "report": self.report.as_dict(),
        }


def motif_census(cluster: Cluster, k: int,
                 memo: CanonicalMemo | None = None,
                 tracer=None) -> CensusResult:
    """Count every connected ``k``-subgraph of the data graph by class.

    ESU enumeration (Wernicke): each vertex ``v`` roots the subgraphs
    whose minimum vertex is ``v``, grown only through *exclusive*
    neighbours with id ``> v``, so every connected k-vertex set is
    enumerated exactly once.  Adjacency is bitset-packed
    (:func:`~repro.core.kernels.adjacency_bitsets`), making the walk's
    set algebra int-AND/OR; each leaf is classified through ``memo``
    (fresh per run unless shared by the caller), whose class closure
    guarantees the canonicaliser runs at most once per isomorphism
    class.

    Note the census counts **induced** occurrences — each vertex set
    once, under the class of its induced subgraph — whereas
    :func:`motif_counts` counts non-induced pattern embeddings through
    the engine; a triangle is one census subgraph but contains three
    (non-induced) wedges.
    """
    if not 2 <= k <= 5:
        raise ValueError("census size must be between 2 and 5")
    graph = cluster.graph
    metrics = cluster.metrics
    if memo is None:
        memo = CanonicalMemo()
    hits0, calls0 = memo.hits, memo.canonical_calls
    masks = adjacency_bitsets(graph)
    counts: dict[str, int] = {}
    total = 0

    traced = tracer is not None
    if traced:
        tracer.bind(metrics)
        prev_cluster_tracer, cluster.tracer = cluster.tracer, tracer

    try:
        for machine in range(cluster.num_machines):
            if traced:
                t0 = tracer.now(machine)
            roots = cluster.local_vertices(machine)
            workers = cluster.workers_per_machine
            per_worker = [0.0] * workers
            touched: set[int] = set()
            leaves_before = total

            for i, root in enumerate(roots):
                root = int(root)
                ops = 0.0
                sub = [root]
                touched.add(root)
                # candidate extensions: neighbours with id > root
                gt_root = -1 << (root + 1)
                ext0 = masks[root] & gt_root

                def extend(sub: list[int], nbh: int, ext: int) -> float:
                    nonlocal total
                    ops = 0.0
                    if len(sub) == k:
                        rows = induced_bitrows(masks, tuple(sorted(sub)))
                        misses = memo.canonical_calls
                        key = memo.key_for(k, rows)
                        ops += float(k)
                        if memo.canonical_calls > misses:
                            ops += float(k * k)
                            if traced:
                                tracer.instant("canon miss", machine,
                                               {"key": key})
                        counts[key] = counts.get(key, 0) + 1
                        total += 1
                        return ops
                    while ext:
                        low = ext & -ext
                        ext ^= low
                        w = low.bit_length() - 1
                        touched.add(w)
                        ops += _OP_EXPAND
                        excl = masks[w] & ~nbh & gt_root
                        sub.append(w)
                        ops += extend(sub, nbh | masks[w] | low, ext | excl)
                        sub.pop()
                    return ops

                ops += extend(sub, masks[root] | (1 << root), ext0)
                per_worker[i % workers] += ops

            metrics.charge_worker_ops(machine, per_worker)
            if traced:
                tracer.complete(
                    "census walk", machine, t0, tracer.now(machine),
                    {"roots": len(roots),
                     "subgraphs": total - leaves_before})
            # remote adjacency rows this machine read, pulled once each
            # (per-machine perfect cache) through the batched GetNbrs RPC
            remote = sorted(v for v in touched
                            if cluster.machine_of(v) != machine)
            if remote:
                if traced:
                    t0 = tracer.now(machine)
                cluster.get_nbrs(machine, remote)
                if traced:
                    tracer.complete("census fetch", machine, t0,
                                    tracer.now(machine),
                                    {"remote": len(remote)})
    finally:
        if traced:
            cluster.tracer = prev_cluster_tracer

    names = census_class_names(k)
    by_name = {name: 0 for name in names.values()}
    for key, count in counts.items():
        by_name[names[key]] = count
    return CensusResult(
        k=k,
        counts=by_name,
        class_keys={name: key for key, name in names.items()},
        total_subgraphs=total,
        memo_hits=memo.hits - hits0,
        canonical_calls=memo.canonical_calls - calls0,
        report=metrics.report(),
    )


def motif_counts(cluster: Cluster, k: int,
                 config: EngineConfig | None = None) -> dict[str, int]:
    """Count every ``k``-vertex motif with the HUGE engine.

    Returns pattern name → (non-induced, symmetry-broken) instance
    count.  Each motif is one subgraph enumeration query planned by
    Algorithm 1; this is the GPM loop of §6.
    """
    engine = HugeEngine(cluster, config)
    counts: dict[str, int] = {}
    for pattern in connected_patterns(k):
        result = engine.run(pattern)
        counts[pattern.name] = result.count
    return counts


def frequent_patterns(cluster: Cluster, max_size: int, min_support: int,
                      config: EngineConfig | None = None
                      ) -> list[tuple[QueryGraph, int]]:
    """Level-wise frequent subgraph mining.

    Grows patterns one vertex at a time (sizes 2 .. ``max_size``), keeping
    those with at least ``min_support`` instances.  Anti-monotonicity
    prunes: a size-``k`` pattern is only counted if some frequent
    size-``k−1`` pattern is a subgraph shape of it (checked structurally).
    """
    if max_size < 2:
        raise ValueError("max_size must be at least 2")
    engine = HugeEngine(cluster, config)
    frequent: list[tuple[QueryGraph, int]] = []
    for size in range(2, max_size + 1):
        level = []
        for pattern in connected_patterns(size):
            result = engine.run(pattern)
            if result.count >= min_support:
                level.append((pattern, result.count))
        if not level:
            break
        frequent.extend(level)
    return frequent
