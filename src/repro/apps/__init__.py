"""Applications built on the HUGE runtime (paper §6): shortest paths,
hop-constrained path enumeration, graph pattern mining."""

from .cypher import (CypherError, CypherResult, ParsedQuery, execute_cypher,
                     parse_cypher)
from .hopconstrained import count_st_paths, enumerate_st_paths
from .mining import (CensusResult, connected_patterns, frequent_patterns,
                     motif_census, motif_counts)
from .shortest_path import shortest_path, shortest_path_lengths

__all__ = [
    "CypherError",
    "CypherResult",
    "ParsedQuery",
    "execute_cypher",
    "parse_cypher",
    "count_st_paths",
    "enumerate_st_paths",
    "CensusResult",
    "connected_patterns",
    "frequent_patterns",
    "motif_census",
    "motif_counts",
    "shortest_path",
    "shortest_path_lengths",
]
