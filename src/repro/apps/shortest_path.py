"""Shortest paths on top of the HUGE runtime (paper §6).

"Shortest path can be computed by repeatedly applying PULL-EXTEND from the
source vertex until it arrives at the target."  The implementation below
does exactly that on the simulated cluster: a frontier of partial paths is
extended one hop per round; remote adjacency lists are pulled through a
per-machine LRBU cache with batch-aggregated ``GetNbrs`` RPCs, so the app
inherits HUGE's pulling communication and its cost accounting.
"""

from __future__ import annotations

from ..cluster.cluster import Cluster
from ..core.cache import LRBUCache

__all__ = ["shortest_path", "shortest_path_lengths"]


def _pull_frontier(cluster: Cluster, machine: int, cache: LRBUCache,
                   vertices: list[int]) -> dict[int, "object"]:
    """Fetch adjacency for a frontier slice, LRBU-cached (fetch stage)."""
    missing = []
    result = {}
    for v in vertices:
        if cluster.machine_of(v) == machine:
            result[v] = cluster.pgraph.neighbours_local(v, machine)
        elif cache.contains(v):
            cache.seal(v)
            cluster.metrics.record_cache(machine, hits=1)
            result[v] = cache.get(v)
        else:
            missing.append(v)
    if missing:
        cluster.metrics.record_cache(machine, misses=len(missing))
        for v, nbrs in cluster.get_nbrs(machine, missing).items():
            cache.insert(v, nbrs)
            cache.seal(v)
            result[v] = nbrs
    return result


def shortest_path(cluster: Cluster, source: int, target: int,
                  max_hops: int | None = None) -> list[int] | None:
    """Unweighted shortest path from ``source`` to ``target``.

    Returns the vertex list (inclusive) or ``None`` if unreachable within
    ``max_hops``.  The BFS frontier is partitioned across machines by
    vertex ownership; each round is one distributed PULL-EXTEND.
    """
    n = cluster.graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("source/target out of range")
    if source == target:
        return [source]
    cost = cluster.cost
    limit = max_hops if max_hops is not None else n
    k = cluster.num_machines
    caches = [LRBUCache(None, cost) for _ in range(k)]
    parent: dict[int, int] = {source: -1}
    # frontier vertices stay on the machine that discovered them (like
    # PULL-EXTEND output partitioning); the source starts at its owner
    frontier: list[list[int]] = [[] for _ in range(k)]
    frontier[cluster.machine_of(source)].append(source)
    for _ in range(limit):
        if not any(frontier):
            return None
        next_frontier: list[list[int]] = [[] for _ in range(k)]
        for m in range(k):
            verts = frontier[m]
            if not verts:
                continue
            adj = _pull_frontier(cluster, m, caches[m], verts)
            ops = 0.0
            for v in verts:
                nbrs = adj[v]
                ops += len(nbrs) * cost.scan_op
                for u in nbrs:
                    u = int(u)
                    if u not in parent:
                        parent[u] = v
                        next_frontier[m].append(u)
            cluster.metrics.charge_ops(m, ops)
            caches[m].release()
        if target in parent:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            return path[::-1]
        frontier = next_frontier
        cluster.metrics.check_time()
    return None


def shortest_path_lengths(cluster: Cluster, source: int,
                          max_hops: int | None = None) -> dict[int, int]:
    """Hop distance from ``source`` to every reachable vertex."""
    n = cluster.graph.num_vertices
    if not 0 <= source < n:
        raise ValueError("source out of range")
    cost = cluster.cost
    limit = max_hops if max_hops is not None else n
    k = cluster.num_machines
    caches = [LRBUCache(None, cost) for _ in range(k)]
    dist = {source: 0}
    frontier: list[list[int]] = [[] for _ in range(k)]
    frontier[cluster.machine_of(source)].append(source)
    depth = 0
    while any(frontier) and depth < limit:
        depth += 1
        nxt: list[list[int]] = [[] for _ in range(k)]
        for m in range(k):
            verts = frontier[m]
            if not verts:
                continue
            adj = _pull_frontier(cluster, m, caches[m], verts)
            ops = 0.0
            for v in verts:
                nbrs = adj[v]
                ops += len(nbrs) * cost.scan_op
                for u in nbrs:
                    u = int(u)
                    if u not in dist:
                        dist[u] = depth
                        nxt[m].append(u)
            cluster.metrics.charge_ops(m, ops)
            caches[m].release()
        frontier = nxt
    return dist
