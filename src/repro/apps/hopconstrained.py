"""Hop-constrained s–t simple path enumeration (paper §6, citing [59]).

"For hop-constrained path enumeration, HUGE can conduct a bi-directional
BFS by extending from both ends and joining in the middle."  The
implementation grows simple paths from ``source`` and from ``target`` for
half the hop budget each (distributed PULL-EXTEND rounds with cost
accounting) and hash-joins them on the middle vertex — the same
push/pull-hybrid structure HUGE uses for subgraph queries.
"""

from __future__ import annotations

from ..cluster.cluster import Cluster

__all__ = ["enumerate_st_paths", "count_st_paths"]

Path = tuple[int, ...]


def _grow_paths(cluster: Cluster, start: int, hops: int) -> dict[int, list[Path]]:
    """All simple paths of length ≤ ``hops`` from ``start``, grouped by
    their endpoint.  Each round pulls the frontier's adjacency (one
    aggregated GetNbrs per machine pair) and extends, like PULL-EXTEND."""
    cost = cluster.cost
    by_end: dict[int, list[Path]] = {start: [(start,)]}
    frontier: list[Path] = [(start,)]
    for _ in range(hops):
        nxt: list[Path] = []
        by_machine: dict[int, list[Path]] = {}
        for p in frontier:
            by_machine.setdefault(cluster.machine_of(p[-1]), []).append(p)
        for m, paths in by_machine.items():
            remote = {p[-1] for p in paths
                      if cluster.machine_of(p[-1]) != m}
            fetched = cluster.get_nbrs(m, remote) if remote else {}
            ops = 0.0
            for p in paths:
                v = p[-1]
                nbrs = fetched.get(v)
                if nbrs is None:
                    nbrs = cluster.pgraph.neighbours_local(v, m)
                ops += len(nbrs) * cost.scan_op
                for u in nbrs:
                    u = int(u)
                    if u in p:
                        continue  # simple paths only
                    q = p + (u,)
                    nxt.append(q)
                    by_end.setdefault(u, []).append(q)
                    ops += len(q) * cost.emit_op
            cluster.metrics.charge_ops(m, ops)
        frontier = nxt
        cluster.metrics.check_time()
    return by_end


def enumerate_st_paths(cluster: Cluster, source: int, target: int,
                       max_hops: int) -> list[Path]:
    """Enumerate all simple paths from ``source`` to ``target`` with at
    most ``max_hops`` edges, via bi-directional growth + middle join."""
    n = cluster.graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("source/target out of range")
    if max_hops < 0:
        raise ValueError("max_hops must be non-negative")
    if source == target:
        return [(source,)]
    fwd_hops = max_hops // 2
    bwd_hops = max_hops - fwd_hops
    fwd = _grow_paths(cluster, source, fwd_hops)
    bwd = _grow_paths(cluster, target, bwd_hops)

    cost = cluster.cost
    results: set[Path] = set()
    # join on the middle vertex: forward paths ending at v with backward
    # paths ending at v (a pushing-style hash join keyed by v)
    join_ops = 0.0
    for mid, fpaths in fwd.items():
        bpaths = bwd.get(mid)
        if not bpaths:
            continue
        owner = cluster.machine_of(mid)
        for fp in fpaths:
            join_ops += cost.hash_probe_op
            for bp in bpaths:
                if len(fp) + len(bp) - 1 > max_hops + 1:
                    continue
                if set(fp[:-1]) & set(bp):
                    continue  # not simple
                results.add(fp + bp[::-1][1:])
        cluster.metrics.charge_ops(owner, join_ops)
        join_ops = 0.0
    return sorted(results)


def count_st_paths(cluster: Cluster, source: int, target: int,
                   max_hops: int) -> int:
    """Number of simple ``source``→``target`` paths within ``max_hops``."""
    return len(enumerate_st_paths(cluster, source, target, max_hops))
