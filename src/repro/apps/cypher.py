"""A Cypher-like query front-end (paper §6).

"HUGE can be extended as a Cypher-based distributed graph database, by
implementing more operations … and connecting it with a front-end parser."
This module provides that front-end for the pattern-matching core of
Cypher [57]:

    MATCH (a:User)--(b:User), (b)--(c), (c)--(a)
    RETURN count(*)

Supported surface:

* node patterns ``(name)`` and ``(name:Label)``;
* relationship patterns ``--``, ``-[]-``, ``-->``, ``<--``, ``-[:T]-``
  (the data graph is undirected, so direction and relationship types are
  accepted but ignored, with a parse-time warning available via
  ``strict=True``);
* chained paths and comma-separated pattern parts;
* ``RETURN count(*)`` (count) or ``RETURN a, b, …`` (bindings).

Labels are resolved through a ``label_ids`` mapping (label name → integer
label in the data graph's label array).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

from ..cluster.cluster import Cluster
from ..core.engine import EngineConfig, HugeEngine
from ..query.pattern import QueryGraph

__all__ = ["CypherError", "ParsedQuery", "parse_cypher", "execute_cypher",
           "CypherResult"]


class CypherError(ValueError):
    """Raised for queries outside the supported Cypher subset."""


_NODE = re.compile(r"\(\s*([A-Za-z_][A-Za-z_0-9]*)\s*(?::\s*"
                   r"([A-Za-z_][A-Za-z_0-9]*))?\s*\)")
_REL = re.compile(r"<?-\s*(?:\[\s*(?::\s*[A-Za-z_][A-Za-z_0-9]*)?\s*\])?"
                  r"\s*->?")


@dataclass(frozen=True)
class ParsedQuery:
    """Outcome of parsing: the pattern plus variable bookkeeping."""

    pattern: QueryGraph
    variables: tuple[str, ...]
    """Variable names in pattern-vertex order (vertex i ↔ variables[i])."""

    returns: tuple[str, ...] | None
    """Names to return, or ``None`` for ``count(*)``."""


def _split_top(text: str, sep: str) -> list[str]:
    """Split on ``sep`` outside brackets/parentheses."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    parts.append("".join(cur))
    return parts


def parse_cypher(text: str,
                 label_ids: Mapping[str, int] | None = None) -> ParsedQuery:
    """Parse a ``MATCH … RETURN …`` query into a (possibly labelled)
    :class:`~repro.query.pattern.QueryGraph`."""
    squashed = " ".join(text.split())
    m = re.fullmatch(r"(?i)MATCH\s+(.+?)\s+RETURN\s+(.+?)\s*;?",
                     squashed.strip())
    if not m:
        raise CypherError("expected: MATCH <pattern> RETURN <items>")
    pattern_text, return_text = m.group(1), m.group(2)

    var_ids: dict[str, int] = {}
    var_labels: dict[str, str | None] = {}
    edges: list[tuple[int, int]] = []

    def node_id(name: str, label: str | None) -> int:
        if name not in var_ids:
            var_ids[name] = len(var_ids)
            var_labels[name] = label
        elif label is not None:
            prior = var_labels[name]
            if prior is not None and prior != label:
                raise CypherError(
                    f"variable {name!r} bound to conflicting labels "
                    f"{prior!r} and {label!r}")
            var_labels[name] = label
        return var_ids[name]

    for part in _split_top(pattern_text, ","):
        part = part.strip()
        pos = 0
        prev: int | None = None
        while pos < len(part):
            node = _NODE.match(part, pos)
            if not node:
                raise CypherError(f"expected a node pattern at: "
                                  f"{part[pos:]!r}")
            vid = node_id(node.group(1), node.group(2))
            if prev is not None:
                if prev == vid:
                    raise CypherError(
                        f"self-relationship on {node.group(1)!r}")
                edges.append((prev, vid))
            prev = vid
            pos = node.end()
            if pos >= len(part):
                break
            rel = _REL.match(part, pos)
            if not rel or rel.end() == rel.start():
                raise CypherError(f"expected a relationship at: "
                                  f"{part[pos:]!r}")
            pos = rel.end()
            # undirected data graph: direction/type are parsed and ignored

    if not edges:
        raise CypherError("the pattern must contain at least one "
                          "relationship")

    variables = tuple(sorted(var_ids, key=var_ids.get))
    labels: list[int | None] = []
    for name in variables:
        label = var_labels[name]
        if label is None:
            labels.append(None)
        else:
            if label_ids is None or label not in label_ids:
                raise CypherError(f"unknown label {label!r}; provide it in "
                                  f"label_ids")
            labels.append(int(label_ids[label]))
    pattern = QueryGraph(len(variables), edges, name="cypher",
                         labels=labels)
    if not pattern.is_connected():
        raise CypherError("disconnected MATCH patterns are not supported")

    return_text = return_text.strip()
    if re.fullmatch(r"(?i)count\s*\(\s*\*\s*\)", return_text):
        returns: tuple[str, ...] | None = None
    else:
        names = tuple(x.strip() for x in return_text.split(","))
        unknown = [x for x in names if x not in var_ids]
        if unknown:
            raise CypherError(f"RETURN of unbound variables: {unknown}")
        returns = names
    return ParsedQuery(pattern, variables, returns)


@dataclass
class CypherResult:
    """Result of :func:`execute_cypher`."""

    count: int
    columns: tuple[str, ...] | None
    rows: list[tuple[int, ...]] | None
    report: object


def execute_cypher(cluster: Cluster, text: str,
                   label_ids: Mapping[str, int] | None = None,
                   config: EngineConfig | None = None) -> CypherResult:
    """Parse and run a Cypher query on the HUGE engine.

    ``RETURN count(*)`` queries count; ``RETURN a, b`` queries collect the
    bound data vertices per match (projected to the requested variables).
    """
    parsed = parse_cypher(text, label_ids)
    collect = parsed.returns is not None
    if config is None:
        config = EngineConfig(collect_results=collect)
    elif collect:
        config.collect_results = True
    engine = HugeEngine(cluster, config)
    result = engine.run(parsed.pattern)
    if parsed.returns is None:
        return CypherResult(result.count, None, None, result.report)
    positions = [parsed.variables.index(name) for name in parsed.returns]
    rows = [tuple(match[p] for p in positions) for match in result.matches]
    return CypherResult(result.count, parsed.returns, rows, result.report)
