"""Simulated external distributed key-value store (BENU's Cassandra [13]).

BENU "stores the whole graph data in a distributed key-value store" and
pulls adjacency lists on demand.  The paper's diagnosis (§1, Exp-1) is that
"the main culprit is the large overhead of pulling (and accessing cached)
data from the external key-value store" — a per-request client stall plus
serialisation work that lands in *computation* time, not communication
time.  The simulation charges exactly that: every ``get`` costs
``kvstore_request_s`` of direct compute-side stall, ``kvstore_access_op``
serialisation ops, and the wire bytes of the request/response pair.

Loading the graph into the store also has a cost (Exp-3: BENU "fails to
load the graph into Cassandra within one day" for CW); ``load`` charges it
and raises ``OvertimeError`` when it alone blows the time budget.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.errors import OvertimeError

__all__ = ["ExternalKVStore"]


class ExternalKVStore:
    """A Cassandra-like store holding every vertex's adjacency list."""

    def __init__(self, cluster: Cluster, loaded: bool = False):
        self.cluster = cluster
        self._loaded = loaded
        self.requests = 0

    def load(self) -> None:
        """Bulk-load the data graph into the store.

        Charged as one write request per vertex on machine 0 (the loader),
        at the store's per-request overhead — which is what makes loading
        web-scale graphs into an external store impractical (Exp-3).
        """
        cost = self.cluster.cost
        g = self.cluster.graph
        load_s = g.num_vertices * cost.kvstore_request_s
        self.cluster.metrics.charge_time(0, load_s)
        # the store is off-cluster: the loader's NIC carries the whole graph
        # regardless of cluster size (the old in-cluster ``send`` degenerated
        # to a free machine-0 self-send on single-machine clusters)
        self.cluster.metrics.send_external(
            0, self.cluster.graph_bytes(), messages=g.num_vertices)
        self.cluster.metrics.check_time()
        if load_s > cost.time_budget_s:
            raise OvertimeError(load_s, cost.time_budget_s)
        self._loaded = True

    def get(self, machine: int, vertex: int) -> np.ndarray:
        """Fetch one adjacency list; charges the external-store overhead."""
        if not self._loaded:
            raise RuntimeError("KV store not loaded; call load() first")
        cost = self.cluster.cost
        metrics = self.cluster.metrics
        nbrs = self.cluster.graph.neighbours(vertex)
        metrics.charge_time(machine, cost.kvstore_request_s)
        metrics.charge_ops(machine, cost.kvstore_access_op)
        wire = (cost.rpc_request_overhead_bytes
                + (1 + len(nbrs)) * cost.bytes_per_id)
        # the store is external: the full round trip rides the client's NIC
        # (request + response = 2 messages; no in-cluster receiver exists)
        metrics.send_external(machine, wire, messages=2)
        metrics.record_rpc(machine)
        self.requests += 1
        return nbrs
