"""RADS [66]: fast and robust distributed subgraph enumeration.

RADS runs a multi-round "star-expand-and-verify" paradigm: each round
expands the partial results by a star rooted at an already-matched vertex,
pulling remote roots' adjacency lists to the host machine, then verifies
the remaining query edges.  Memory is managed by *region groups* — the
initial star's root vertices are split into groups processed end-to-end.

Characteristics reproduced here (Table 1 row RADS):

* the StarJoin-like left-deep plan is sub-optimal — a star with several
  new leaves explodes combinatorially (the "massive number of 3-stars"
  that Exp-1 observes for q2), which the memory budget reports as ``00M``;
* pulling without a cross-round cache re-fetches adjacency lists per round
  and per region group — communication volume stays high;
* region groups are a static heuristic: with hub vertices a single group
  can still blow the memory budget (§5.1).

The rounds are columnar: partial results are ``(n, arity)`` int64 arrays,
edge verification is a batch membership test against the shared
edge-composite index, and leaf enumeration shares the grouped combination
expansion of :func:`repro.baselines.base.combo_rows`.  All simulated
charges replay the historical per-tuple loop bit-identically (per-row op
chains via ``chained_costs``, the per-root incremental memory-charge
sequence, and ``get_nbrs`` pulls issued with the same request sets).
"""

from __future__ import annotations

import math

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.errors import OvertimeError
from ..core.kernels import chained_costs, edge_composite_index, edge_member
from ..core.plan.logical import LogicalPlan
from ..core.plan.plans import rads_plan
from ..core.stealing import chunked_distribution
from ..query.pattern import QueryGraph
from ..query.symmetry import symmetry_break
from .base import (BaselineEngine, BaselineResult, combo_rows,
                   new_conditions, star_partition, valid_leaf_patterns)

__all__ = ["RadsEngine"]

_CHUNK = 4096


def _predicted_total(degrees: np.ndarray, choose: int,
                     patterns: int) -> float:
    """The pre-flight size prediction ``Σ C(d, choose)·patterns``.

    The historical accumulator was a per-root float chain, but its terms
    are non-negative integers: while the running total stays below 2^53
    every add is exact, so the chain is order-free and equals the exact
    integer total.  Only past that point does the literal replay matter.
    """
    elig = degrees[degrees >= choose]
    total = 0
    uniq, cnts = np.unique(elig, return_counts=True)
    for d, c in zip(uniq.tolist(), cnts.tolist()):
        total += math.comb(d, choose) * patterns * c
    if total < (1 << 53):
        return float(total)
    predicted = 0.0
    terms: dict[int, int] = {}
    for d in degrees.tolist():
        if d >= choose:
            term = terms.get(d)
            if term is None:
                term = math.comb(d, choose) * patterns
                terms[d] = term
            predicted += term
    return predicted


class RadsEngine(BaselineEngine):
    """RADS: pulling-based star-expand-and-verify with region groups."""

    name = "RADS"

    def __init__(self, cluster: Cluster, region_groups: int = 4):
        super().__init__(cluster)
        if region_groups < 1:
            raise ValueError("need at least one region group")
        self.region_groups = region_groups
        graph = cluster.pgraph.graph
        self._edge_index = edge_composite_index(graph)
        self._degrees = graph.indptr[1:] - graph.indptr[:-1]

    def run(self, query: QueryGraph, plan: LogicalPlan | None = None,
            reset_metrics: bool = True) -> BaselineResult:
        """Enumerate ``query`` with RADS' star-expand-and-verify rounds."""
        self._check_query(query)
        cluster = self.cluster
        if reset_metrics:
            cluster.reset_metrics()
        if plan is None:
            plan = rads_plan(query)
        conditions = symmetry_break(query)
        stars = [leaf.sub for leaf in plan.root.leaves()]

        total = 0
        for group in range(self.region_groups):
            applied: set[tuple[int, int]] = set()
            first = stars[0]
            root = first.star_root()
            leaves = sorted(first.vertices - {root})
            rel, schema = self._initial_star(root, leaves, conditions,
                                             applied, group)
            if len(stars) == 1:
                total += sum(len(p) for p in rel)
                self._free_rel(rel, len(schema))
                cluster.metrics.check_time()
                continue
            for star in stars[1:-1]:
                rel, schema = self._expand_round(rel, schema, star,
                                                 conditions, applied)
            # final round counts its output (decompress-by-counting, §7.1)
            counted, schema = self._expand_round(rel, schema, stars[-1],
                                                 conditions, applied,
                                                 count_only=True)
            total += counted
            cluster.metrics.check_time()
        return self._result(total)

    # -- rounds -----------------------------------------------------------------------

    def _free_rel(self, rel: list[np.ndarray], arity: int) -> None:
        bpi = self.cluster.cost.bytes_per_id
        for m, part in enumerate(rel):
            self.cluster.metrics.free(m, len(part) * arity * bpi)

    def _initial_star(self, root: int, leaves: list[int], conditions,
                      applied: set[tuple[int, int]], group: int
                      ) -> tuple[list[np.ndarray], tuple[int, ...]]:
        """Materialise the first star for this region group's pivots."""
        cluster = self.cluster
        cost = cluster.cost
        metrics = cluster.metrics
        schema = (root,) + tuple(leaves)
        positional = new_conditions(schema, applied, conditions)
        root_conds = [(i, j) for i, j in positional if 0 in (i, j)]
        leaf_conds = [(i - 1, j - 1) for i, j in positional
                      if i != 0 and j != 0]
        patterns = valid_leaf_patterns(len(leaves), leaf_conds)
        patterns_arr = np.asarray(patterns, dtype=np.int64).reshape(
            len(patterns), len(leaves))
        nl = len(leaves)
        tuple_bytes = (nl + 1) * cost.bytes_per_id

        rel: list[np.ndarray] = []
        workers = cluster.workers_per_machine
        for m in range(cluster.num_machines):
            local = cluster.local_vertices(m)
            local = local[local % self.region_groups == group]
            self._preflight(m, self._degrees[local], nl, len(patterns),
                            tuple_bytes)
            rows, item_ops = star_partition(
                cluster, m, local, nl, patterns_arr, root_conds,
                tuple_bytes, metrics.alloc)
            # RADS distributes by region (pivot) groups: chunked, no stealing
            metrics.charge_worker_ops(
                m, chunked_distribution(item_ops, workers))
            rel.append(rows)
        return rel, schema

    def _expand_round(self, rel: list[np.ndarray], schema: tuple[int, ...],
                      star, conditions, applied: set[tuple[int, int]],
                      count_only: bool = False):
        """Expand by a star rooted at a matched vertex, verifying matched
        leaves and enumerating new ones from the pulled adjacency list.

        With ``count_only`` (the final round) outputs are counted rather
        than materialised; returns ``(count, out_schema)``.
        """
        cluster = self.cluster
        cost = cluster.cost
        metrics = cluster.metrics
        graph = cluster.pgraph.graph
        owner = cluster.pgraph.owner
        comp = self._edge_index
        nv = graph.num_vertices
        root = star.star_root()
        if root not in schema:
            raise ValueError("RADS star root must already be matched")
        root_pos = schema.index(root)
        leaves = sorted(star.vertices - {root})
        v1 = [v for v in leaves if v in schema]          # verify edges
        v2 = [v for v in leaves if v not in schema]      # expand leaves
        out_schema = schema + tuple(v2)
        positional = new_conditions(out_schema, applied, conditions)
        base_w = len(schema)
        new_conds = [(i, j) for i, j in positional
                     if i >= base_w or j >= base_w]
        leaf_conds = [(i - base_w, j - base_w) for i, j in new_conds
                      if i >= base_w and j >= base_w]
        mixed_conds = [(i, j) for i, j in new_conds
                       if (i >= base_w) != (j >= base_w)]
        patterns = valid_leaf_patterns(len(v2), leaf_conds)
        patterns_arr = np.asarray(patterns, dtype=np.int64).reshape(
            len(patterns), len(v2))
        nl = len(v2)
        tuple_bytes = len(out_schema) * cost.bytes_per_id

        out_rel: list[np.ndarray] = []
        counted_total = 0
        workers = cluster.workers_per_machine
        for m in range(cluster.num_machines):
            part = rel[m]
            nrows = len(part)
            roots = part[:, root_pos] if nrows else np.empty(0, np.int64)
            # region-scoped pull of every distinct remote root (no
            # cross-round cache: RADS re-fetches each round); the set is
            # built in tuple order (the historical insertion sequence)
            needed = set(roots[owner[roots] != m].tolist())
            if needed:
                cluster.get_nbrs(m, needed)
            self._preflight(m, self._degrees[roots], nl,
                            max(1, len(patterns)), tuple_bytes)
            base = self._degrees[roots] * cost.intersect_op
            # verify matched leaves: edges (root, v) for v in V1
            ok = np.ones(nrows, dtype=bool)
            for v in v1:
                ok &= edge_member(comp, nv, roots, part[:, schema.index(v)])
            kept_per_row = np.zeros(nrows, dtype=np.int64)
            if not v2:
                n_ok = int(ok.sum())
                if count_only:
                    counted_total += n_ok
                    kept_per_row[ok] = 1
                    item_ops = chained_costs(base, kept_per_row, cost.emit_op)
                    pending = 0
                else:
                    out = part[ok]
                    item_ops = base
                    pending = n_ok
                metrics.alloc(m, pending * tuple_bytes)
                metrics.charge_worker_ops(
                    m, chunked_distribution(item_ops.tolist(), workers))
                if not count_only:
                    out_rel.append(out)
                continue
            # candidates: the pulled adjacency minus already-matched ids
            prefix = part[ok]
            okidx = np.flatnonzero(ok)
            cdeg = self._degrees[roots[okidx]]
            total_c = int(cdeg.sum())
            ramp = np.arange(total_c) - np.repeat(
                np.cumsum(cdeg) - cdeg, cdeg)
            cand = graph.indices[
                np.repeat(graph.indptr[roots[okidx]], cdeg) + ramp] \
                if total_c else np.empty(0, dtype=np.int64)
            row_ids = np.repeat(np.arange(len(okidx)), cdeg)
            keep = ~(cand[:, None] == prefix[row_ids]).any(axis=1) \
                if total_c else np.empty(0, dtype=bool)
            cand = cand[keep]
            counts = np.bincount(row_ids[keep], minlength=len(okidx))
            emitted, _, kept = combo_rows(prefix, cand, counts, nl,
                                          patterns_arr, mixed_conds)
            kept_per_row[okidx] = kept
            step = cost.emit_op if count_only else \
                len(out_schema) * cost.emit_op
            item_ops = chained_costs(base, kept_per_row, step)
            if count_only:
                counted_total += int(kept.sum())
                metrics.alloc(m, 0 * tuple_bytes)
            else:
                # incremental memory charges, replayed per root in tuple
                # order (flush at every _CHUNK pending)
                pending = 0
                for c in kept.tolist():
                    pending += c
                    if pending >= _CHUNK:
                        metrics.alloc(m, pending * tuple_bytes)
                        pending = 0
                        metrics.check_time()
                metrics.alloc(m, pending * tuple_bytes)
                out_rel.append(emitted)
            metrics.charge_worker_ops(
                m, chunked_distribution(item_ops.tolist(), workers))
        self._free_rel(rel, len(schema))
        metrics.check_time()
        if count_only:
            return counted_total, out_schema
        return out_rel, out_schema

    def _preflight(self, machine: int, degrees: np.ndarray, choose: int,
                   patterns: int, tuple_bytes: int) -> None:
        """Abort with 00M/0T before an expansion that cannot fit.

        The prediction is an order-sensitive float chain over the roots'
        degrees, replayed literally (with the per-degree term cached).
        """
        cost = self.cluster.cost
        metrics = self.cluster.metrics
        predicted = _predicted_total(degrees, choose, patterns)
        predicted_bytes = predicted * tuple_bytes / 2.0
        used = metrics.machines[machine].cur_mem_bytes
        if used + predicted_bytes > cost.memory_budget_bytes:
            metrics.alloc(machine, predicted_bytes)  # raises OutOfMemoryError
        est_s = cost.ops_to_seconds(predicted * cost.emit_op)
        if metrics.compute_time(machine) + est_s > cost.time_budget_s:
            raise OvertimeError(cost.time_budget_s + 1.0, cost.time_budget_s)
