"""RADS [66]: fast and robust distributed subgraph enumeration.

RADS runs a multi-round "star-expand-and-verify" paradigm: each round
expands the partial results by a star rooted at an already-matched vertex,
pulling remote roots' adjacency lists to the host machine, then verifies
the remaining query edges.  Memory is managed by *region groups* — the
initial star's root vertices are split into groups processed end-to-end.

Characteristics reproduced here (Table 1 row RADS):

* the StarJoin-like left-deep plan is sub-optimal — a star with several
  new leaves explodes combinatorially (the "massive number of 3-stars"
  that Exp-1 observes for q2), which the memory budget reports as ``00M``;
* pulling without a cross-round cache re-fetches adjacency lists per round
  and per region group — communication volume stays high;
* region groups are a static heuristic: with hub vertices a single group
  can still blow the memory budget (§5.1).
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.errors import OvertimeError
from ..core.plan.logical import LogicalPlan
from ..core.plan.plans import rads_plan
from ..core.stealing import chunked_distribution
from ..query.pattern import QueryGraph
from ..query.symmetry import symmetry_break
from .base import (BaselineEngine, BaselineResult, Tuple,
                   valid_leaf_patterns, new_conditions)

__all__ = ["RadsEngine"]

_CHUNK = 4096


class RadsEngine(BaselineEngine):
    """RADS: pulling-based star-expand-and-verify with region groups."""

    name = "RADS"

    def __init__(self, cluster: Cluster, region_groups: int = 4):
        super().__init__(cluster)
        if region_groups < 1:
            raise ValueError("need at least one region group")
        self.region_groups = region_groups

    def run(self, query: QueryGraph, plan: LogicalPlan | None = None,
            reset_metrics: bool = True) -> BaselineResult:
        """Enumerate ``query`` with RADS' star-expand-and-verify rounds."""
        self._check_query(query)
        cluster = self.cluster
        if reset_metrics:
            cluster.reset_metrics()
        if plan is None:
            plan = rads_plan(query)
        conditions = symmetry_break(query)
        stars = [leaf.sub for leaf in plan.root.leaves()]

        total = 0
        for group in range(self.region_groups):
            applied: set[tuple[int, int]] = set()
            first = stars[0]
            root = first.star_root()
            leaves = sorted(first.vertices - {root})
            rel, schema = self._initial_star(root, leaves, conditions,
                                             applied, group)
            if len(stars) == 1:
                total += sum(len(p) for p in rel)
                self._free_rel(rel, len(schema))
                cluster.metrics.check_time()
                continue
            for star in stars[1:-1]:
                rel, schema = self._expand_round(rel, schema, star,
                                                 conditions, applied)
            # final round counts its output (decompress-by-counting, §7.1)
            counted, schema = self._expand_round(rel, schema, stars[-1],
                                                 conditions, applied,
                                                 count_only=True)
            total += counted
            cluster.metrics.check_time()
        return self._result(total)

    # -- rounds -----------------------------------------------------------------------

    def _free_rel(self, rel: list[list[Tuple]], arity: int) -> None:
        bpi = self.cluster.cost.bytes_per_id
        for m, part in enumerate(rel):
            self.cluster.metrics.free(m, len(part) * arity * bpi)

    def _initial_star(self, root: int, leaves: list[int], conditions,
                      applied: set[tuple[int, int]], group: int
                      ) -> tuple[list[list[Tuple]], tuple[int, ...]]:
        """Materialise the first star for this region group's pivots."""
        cluster = self.cluster
        cost = cluster.cost
        metrics = cluster.metrics
        schema = (root,) + tuple(leaves)
        positional = new_conditions(schema, applied, conditions)
        root_conds = [(i, j) for i, j in positional if 0 in (i, j)]
        leaf_conds = [(i - 1, j - 1) for i, j in positional
                      if i != 0 and j != 0]
        patterns = valid_leaf_patterns(len(leaves), leaf_conds)
        nl = len(leaves)
        tuple_bytes = (nl + 1) * cost.bytes_per_id

        rel: list[list[Tuple]] = []
        workers = cluster.workers_per_machine
        for m in range(cluster.num_machines):
            local = [int(u) for u in cluster.local_vertices(m)
                     if int(u) % self.region_groups == group]
            self._preflight(m, ((cluster.pgraph.graph.degree(u), nl)
                                for u in local), len(patterns), tuple_bytes)
            out: list[Tuple] = []
            pending = 0
            item_ops: list[float] = []
            for u in local:
                nbrs = cluster.pgraph.neighbours_local(u, m)
                ops = len(nbrs) * cost.scan_op
                if len(nbrs) >= nl:
                    for combo in combinations(nbrs.tolist(), nl):
                        for pattern in patterns:
                            f = (u,) + tuple(combo[p] for p in pattern)
                            if any(f[i] >= f[j] for i, j in root_conds):
                                continue
                            out.append(f)
                            pending += 1
                            ops += (nl + 1) * cost.emit_op
                    if pending >= _CHUNK:
                        metrics.alloc(m, pending * tuple_bytes)
                        pending = 0
                        metrics.check_time()
                item_ops.append(ops)
            metrics.alloc(m, pending * tuple_bytes)
            # RADS distributes by region (pivot) groups: chunked, no stealing
            metrics.charge_worker_ops(
                m, chunked_distribution(item_ops, workers))
            rel.append(out)
        return rel, schema

    def _expand_round(self, rel: list[list[Tuple]], schema: tuple[int, ...],
                      star, conditions, applied: set[tuple[int, int]],
                      count_only: bool = False):
        """Expand by a star rooted at a matched vertex, verifying matched
        leaves and enumerating new ones from the pulled adjacency list.

        With ``count_only`` (the final round) outputs are counted rather
        than materialised; returns ``(count, out_schema)``.
        """
        cluster = self.cluster
        cost = cluster.cost
        metrics = cluster.metrics
        root = star.star_root()
        if root not in schema:
            raise ValueError("RADS star root must already be matched")
        root_pos = schema.index(root)
        leaves = sorted(star.vertices - {root})
        v1 = [v for v in leaves if v in schema]          # verify edges
        v2 = [v for v in leaves if v not in schema]      # expand leaves
        out_schema = schema + tuple(v2)
        positional = new_conditions(out_schema, applied, conditions)
        base = len(schema)
        new_conds = [(i, j) for i, j in positional
                     if i >= base or j >= base]
        leaf_conds = [(i - base, j - base) for i, j in new_conds
                      if i >= base and j >= base]
        mixed_conds = [(i, j) for i, j in new_conds
                       if (i >= base) != (j >= base)]
        patterns = valid_leaf_patterns(len(v2), leaf_conds)
        nl = len(v2)
        tuple_bytes = len(out_schema) * cost.bytes_per_id

        out_rel: list[list[Tuple]] = []
        counted_total = 0
        workers = cluster.workers_per_machine
        for m in range(cluster.num_machines):
            part = rel[m]
            # region-scoped pull of every distinct remote root (no
            # cross-round cache: RADS re-fetches each round)
            needed = {f[root_pos] for f in part
                      if cluster.machine_of(f[root_pos]) != m}
            fetched = cluster.get_nbrs(m, needed) if needed else {}
            self._preflight(
                m, ((cluster.pgraph.graph.degree(f[root_pos]), nl)
                    for f in part), max(1, len(patterns)), tuple_bytes)
            out: list[Tuple] = []
            pending = 0
            item_ops: list[float] = []
            for f in part:
                r = f[root_pos]
                nbrs = fetched.get(r)
                if nbrs is None:
                    nbrs = cluster.pgraph.neighbours_local(r, m)
                ops = len(nbrs) * cost.intersect_op
                # verify matched leaves: edges (root, v) for v in V1
                ok = True
                for v in v1:
                    target = f[schema.index(v)]
                    i = int(np.searchsorted(nbrs, target))
                    if i >= len(nbrs) or nbrs[i] != target:
                        ok = False
                        break
                if not ok:
                    item_ops.append(ops)
                    continue
                if not v2:
                    if count_only:
                        counted_total += 1
                        ops += cost.emit_op
                    else:
                        out.append(f)
                        pending += 1
                    item_ops.append(ops)
                    continue
                cand = [v for v in nbrs.tolist() if v not in f]
                if len(cand) >= nl:
                    for combo in combinations(cand, nl):
                        for pattern in patterns:
                            g = f + tuple(combo[p] for p in pattern)
                            if any(g[i] >= g[j] for i, j in mixed_conds):
                                continue
                            if count_only:
                                counted_total += 1
                                ops += cost.emit_op
                                continue
                            out.append(g)
                            pending += 1
                            ops += len(g) * cost.emit_op
                    if pending >= _CHUNK:
                        metrics.alloc(m, pending * tuple_bytes)
                        pending = 0
                        metrics.check_time()
                item_ops.append(ops)
            metrics.alloc(m, pending * tuple_bytes)
            metrics.charge_worker_ops(
                m, chunked_distribution(item_ops, workers))
            out_rel.append(out)
        self._free_rel(rel, len(schema))
        metrics.check_time()
        if count_only:
            return counted_total, out_schema
        return out_rel, out_schema

    def _preflight(self, machine: int, degree_choose, patterns: int,
                   tuple_bytes: int) -> None:
        """Abort with 00M/0T before an expansion that cannot fit."""
        cost = self.cluster.cost
        metrics = self.cluster.metrics
        predicted = 0.0
        for d, k in degree_choose:
            if d >= k:
                predicted += math.comb(d, k) * patterns
        predicted_bytes = predicted * tuple_bytes / 2.0
        used = metrics.machines[machine].cur_mem_bytes
        if used + predicted_bytes > cost.memory_budget_bytes:
            metrics.alloc(machine, predicted_bytes)  # raises OutOfMemoryError
        est_s = cost.ops_to_seconds(predicted * cost.emit_op)
        if metrics.compute_time(machine) + est_s > cost.time_budget_s:
            raise OvertimeError(cost.time_budget_s + 1.0, cost.time_budget_s)
