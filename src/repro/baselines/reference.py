"""Reference brute-force subgraph enumerator (ground truth).

A deliberately simple, independent backtracking enumerator in the style of
Ullmann [82].  Every engine in this repository — HUGE itself, the four
distributed baselines, and every plug-in logical plan — is validated
against it: on the same graph and pattern, all must produce the identical
set of symmetry-broken matches.

This module is single-machine and does no cost accounting; it exists purely
for correctness.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..graph.graph import Graph
from ..query.automorphism import automorphism_count
from ..query.pattern import QueryGraph
from ..query.symmetry import PartialOrder, symmetry_break

__all__ = [
    "enumerate_ordered_embeddings",
    "count_ordered_embeddings",
    "enumerate_matches",
    "count_matches",
    "count_instances",
]


def _extension_order(pattern: QueryGraph) -> list[int]:
    """A connected matching order starting at a max-degree pattern vertex."""
    if pattern.num_vertices == 0:
        return []
    order = [max(pattern.vertices(), key=pattern.degree)]
    seen = set(order)
    while len(order) < pattern.num_vertices:
        candidates = [v for v in pattern.vertices()
                      if v not in seen and pattern.neighbours(v) & seen]
        if not candidates:
            raise ValueError("pattern must be connected")
        nxt = max(candidates, key=lambda v: len(pattern.neighbours(v) & seen))
        order.append(nxt)
        seen.add(nxt)
    return order


def enumerate_ordered_embeddings(
        graph: Graph, pattern: QueryGraph,
        labels: "np.ndarray | None" = None) -> Iterator[tuple[int, ...]]:
    """Yield every ordered embedding of ``pattern`` into ``graph``.

    An ordered embedding is an injective map ``f`` with
    ``(u, v) ∈ E_q ⇒ (f(u), f(v)) ∈ E_G``; each subgraph instance appears
    ``|Aut(pattern)|`` times.  Tuples are indexed by pattern vertex:
    ``result[v] = f(v)``.  For labelled patterns, ``labels`` supplies the
    per-data-vertex labels and label constraints are enforced.
    """
    n = pattern.num_vertices
    if n == 0:
        return
    if pattern.is_labelled and labels is None:
        raise ValueError("labelled pattern needs a data-vertex label array")
    order = _extension_order(pattern)
    back = [[u for u in pattern.neighbours(v) if u in order[:i]]
            for i, v in enumerate(order)]
    assignment: dict[int, int] = {}

    def label_ok(v: int, c: int) -> bool:
        want = pattern.label(v)
        return want is None or labels is None or int(labels[c]) == want

    def recurse(i: int) -> Iterator[tuple[int, ...]]:
        if i == n:
            yield tuple(assignment[v] for v in pattern.vertices())
            return
        v = order[i]
        if i == 0:
            candidates: np.ndarray | range = graph.vertices()
        else:
            cand: np.ndarray | None = None
            for u in back[i]:
                nbrs = graph.neighbours(assignment[u])
                cand = nbrs if cand is None else np.intersect1d(
                    cand, nbrs, assume_unique=True)
            candidates = cand if cand is not None else np.empty(0, np.int64)
        used = set(assignment.values())
        for c in candidates:
            c = int(c)
            if c in used or not label_ok(v, c):
                continue
            assignment[v] = c
            yield from recurse(i + 1)
            del assignment[v]

    yield from recurse(0)


def count_ordered_embeddings(graph: Graph, pattern: QueryGraph,
                             labels: "np.ndarray | None" = None) -> int:
    """Number of ordered embeddings of ``pattern`` into ``graph``."""
    return sum(1 for _ in enumerate_ordered_embeddings(graph, pattern,
                                                       labels))


def enumerate_matches(graph: Graph, pattern: QueryGraph,
                      conditions: PartialOrder | None = None,
                      labels: "np.ndarray | None" = None
                      ) -> Iterator[tuple[int, ...]]:
    """Yield symmetry-broken matches: one ordered embedding per instance.

    ``conditions`` defaults to :func:`~repro.query.symmetry.symmetry_break`
    of the pattern.
    """
    if conditions is None:
        conditions = symmetry_break(pattern)
    for emb in enumerate_ordered_embeddings(graph, pattern, labels):
        if all(emb[u] < emb[v] for u, v in conditions):
            yield emb


def count_matches(graph: Graph, pattern: QueryGraph,
                  conditions: PartialOrder | None = None,
                  labels: "np.ndarray | None" = None) -> int:
    """Number of symmetry-broken matches."""
    return sum(1 for _ in enumerate_matches(graph, pattern, conditions,
                                            labels))


def count_instances(graph: Graph, pattern: QueryGraph) -> int:
    """Number of distinct subgraph instances (unordered), computed as
    ``#ordered / |Aut|`` — a cross-check for the symmetry-breaking logic."""
    ordered = count_ordered_embeddings(graph, pattern)
    aut = automorphism_count(pattern)
    if ordered % aut:
        raise AssertionError(
            f"ordered embeddings ({ordered}) not divisible by |Aut| ({aut})")
    return ordered // aut
