"""Baseline engines: reference, SEED, BiGJoin, BENU, RADS, and the
simulated external key-value store."""

from .base import (BaselineEngine, BaselineResult, DistributedRelation,
                   filter_tuples, materialize_star, new_conditions,
                   valid_leaf_patterns)
from .benu import BenuEngine
from .bigjoin import BigJoinEngine
from .kvstore import ExternalKVStore
from .rads import RadsEngine
from .reference import (count_instances, count_matches,
                        count_ordered_embeddings, enumerate_matches,
                        enumerate_ordered_embeddings)
from .seed import SeedEngine

__all__ = [
    "BaselineEngine",
    "BaselineResult",
    "DistributedRelation",
    "filter_tuples",
    "materialize_star",
    "new_conditions",
    "valid_leaf_patterns",
    "BenuEngine",
    "BigJoinEngine",
    "ExternalKVStore",
    "RadsEngine",
    "SeedEngine",
    "count_instances",
    "count_matches",
    "count_ordered_embeddings",
    "enumerate_matches",
    "enumerate_ordered_embeddings",
]
