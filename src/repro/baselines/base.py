"""Common machinery for the baseline distributed engines.

SEED / BiGJoin / RADS all materialise *distributed relations* — partial
results partitioned across machines — and move them with hash shuffles.
This module provides those building blocks with full cost/memory
accounting, so each baseline implementation stays a faithful, readable
transcription of its algorithm.

Memory is charged **incrementally while results are generated**, so an
exploding star expansion or join aborts with the paper's ``00M`` / ``0T``
outcome as soon as the budget is crossed, instead of grinding through the
full explosion first.  Star expansion additionally pre-flights its
predicted output size (``Σ_u C(d_u, |L|)`` patterns) for the same reason.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Iterable, Sequence

from ..cluster.cluster import Cluster
from ..cluster.errors import OvertimeError
from ..cluster.metrics import RunReport
from ..query.symmetry import PartialOrder

__all__ = [
    "Tuple",
    "BaselineResult",
    "DistributedRelation",
    "BaselineEngine",
    "new_conditions",
    "valid_leaf_patterns",
    "filter_tuples",
    "materialize_star",
]

Tuple = tuple[int, ...]

#: incremental memory-charge granularity (tuples)
_CHUNK = 4096


@dataclass
class BaselineResult:
    """Outcome of one baseline run (mirrors the HUGE result shape)."""

    name: str
    count: int
    report: RunReport

    @property
    def throughput_per_s(self) -> float:
        """Matches per simulated second."""
        if self.report.total_time_s <= 0:
            return 0.0
        return self.count / self.report.total_time_s

    def as_dict(self) -> dict:
        """JSON-ready summary (same shape as ``EnumerationResult.as_dict``)."""
        return {
            "engine": self.name,
            "count": self.count,
            "throughput_per_s": self.throughput_per_s,
            "report": self.report.as_dict(),
        }


def new_conditions(schema: Sequence[int], applied: set[tuple[int, int]],
                   conditions: PartialOrder) -> list[tuple[int, int]]:
    """Conditions newly checkable on ``schema``; returned as positional
    pairs ``(i, j)`` meaning ``f[i] < f[j]`` and marked as applied."""
    out: list[tuple[int, int]] = []
    for (u, v) in conditions:
        if (u, v) in applied:
            continue
        if u in schema and v in schema:
            out.append((schema.index(u), schema.index(v)))
            applied.add((u, v))
    return out


def filter_tuples(tuples: Iterable[Tuple],
                  positional: Sequence[tuple[int, int]],
                  distinct: Sequence[tuple[int, int]] = ()) -> list[Tuple]:
    """Apply positional symmetry and distinctness filters."""
    out: list[Tuple] = []
    for f in tuples:
        if any(f[i] >= f[j] for i, j in positional):
            continue
        if any(f[i] == f[j] for i, j in distinct):
            continue
        out.append(f)
    return out


class DistributedRelation:
    """A materialised, partitioned bag of partial-result tuples.

    Creation (or incremental generation) charges simulated memory on each
    machine; :meth:`drop` releases it.  Baselines that keep every
    intermediate alive (as SEED does) never drop until the end — that is
    what drives their peak memory in Table 1.
    """

    def __init__(self, cluster: Cluster, schema: tuple[int, ...],
                 partitions: list[list[Tuple]], charge_memory: bool = True):
        if len(partitions) != cluster.num_machines:
            raise ValueError("one partition per machine required")
        self.cluster = cluster
        self.schema = schema
        self.partitions = partitions
        self._alive = True
        if charge_memory:
            bytes_per_id = cluster.cost.bytes_per_id
            for m, part in enumerate(partitions):
                cluster.metrics.alloc(m, len(part) * len(schema) * bytes_per_id)

    @property
    def total(self) -> int:
        """Total tuple count across machines."""
        return sum(len(p) for p in self.partitions)

    def tuple_bytes(self) -> int:
        """Bytes per tuple."""
        return len(self.schema) * self.cluster.cost.bytes_per_id

    def drop(self) -> None:
        """Release the relation's simulated memory."""
        if not self._alive:
            return
        for m, part in enumerate(self.partitions):
            self.cluster.metrics.free(m, len(part) * self.tuple_bytes())
        self._alive = False

    # -- relational ops ---------------------------------------------------------

    def shuffle(self, key_pos: tuple[int, ...]) -> "DistributedRelation":
        """Hash-shuffle by key positions (pushing communication)."""
        cluster = self.cluster
        k = cluster.num_machines
        parts: list[list[Tuple]] = [[] for _ in range(k)]
        for src, part in enumerate(self.partitions):
            counts = [0] * k
            for f in part:
                dest = hash(tuple(f[p] for p in key_pos)) % k
                parts[dest].append(f)
                counts[dest] += 1
            for dest, n in enumerate(counts):
                cluster.push(src, dest, n, len(self.schema))
        shuffled = DistributedRelation(cluster, self.schema, parts)
        self.drop()
        cluster.metrics.check_time()
        return shuffled

    def hash_join(self, other: "DistributedRelation",
                  conditions: PartialOrder,
                  applied: set[tuple[int, int]],
                  count_only: bool = False
                  ) -> "DistributedRelation | int":
        """Distributed hash join: shuffle both sides on the shared key,
        then join locally per machine.  Consumes both inputs.  Output
        memory is charged incrementally so explosions abort early.

        With ``count_only`` (for a plan's final join, under the counting
        decompression of §7.1) outputs are counted, not materialised, and
        the total count is returned instead of a relation.
        """
        cluster = self.cluster
        cost = cluster.cost
        metrics = cluster.metrics
        shared = sorted(set(self.schema) & set(other.schema))
        if not shared:
            raise ValueError("join with empty key")
        lkey = tuple(self.schema.index(v) for v in shared)
        rkey = tuple(other.schema.index(v) for v in shared)
        left = self.shuffle(lkey)
        right = other.shuffle(rkey)

        out_schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema)
        carry = tuple(right.schema.index(v) for v in right.schema
                      if v not in left.schema)
        left_only = [v for v in left.schema if v not in shared]
        right_only = [v for v in right.schema if v not in left.schema]
        distinct = [(out_schema.index(u), out_schema.index(v))
                    for u in left_only for v in right_only]
        positional = new_conditions(out_schema, applied, conditions)
        out_bytes = len(out_schema) * cost.bytes_per_id

        parts: list[list[Tuple]] = []
        counted = 0
        workers = cluster.workers_per_machine
        for m in range(cluster.num_machines):
            lpart, rpart = left.partitions[m], right.partitions[m]
            build_left = len(lpart) <= len(rpart)
            bpart, ppart = (lpart, rpart) if build_left else (rpart, lpart)
            bkey, pkey = (lkey, rkey) if build_left else (rkey, lkey)
            table: dict[Tuple, list[Tuple]] = {}
            for f in bpart:
                table.setdefault(tuple(f[p] for p in bkey), []).append(f)
            out: list[Tuple] = []
            pending = 0
            ops = len(bpart) * cost.hash_build_op
            for f in ppart:
                ops += cost.hash_probe_op
                for g in table.get(tuple(f[p] for p in pkey), ()):
                    lf, rf = (g, f) if build_left else (f, g)
                    joined = lf + tuple(rf[p] for p in carry)
                    if any(joined[i] == joined[j] for i, j in distinct):
                        continue
                    if any(joined[i] >= joined[j] for i, j in positional):
                        continue
                    if count_only:
                        counted += 1
                        ops += 2 * cost.emit_op
                        continue
                    out.append(joined)
                    pending += 1
                    ops += len(joined) * cost.emit_op
                    if pending >= _CHUNK:
                        metrics.alloc(m, pending * out_bytes)
                        pending = 0
                        metrics.charge_ops(m, ops)
                        ops = 0.0
                        metrics.check_time()
            metrics.alloc(m, pending * out_bytes)
            metrics.charge_worker_ops(m, [ops / workers] * workers)
            parts.append(out)
        left.drop()
        right.drop()
        metrics.check_time()
        if count_only:
            return counted
        return DistributedRelation(cluster, out_schema, parts,
                                   charge_memory=False)


def valid_leaf_patterns(num_leaves: int,
                         leaf_conditions: Sequence[tuple[int, int]]
                         ) -> list[tuple[int, ...]]:
    """Permutation patterns of leaf positions consistent with the leaf-leaf
    symmetry conditions; applied to an ascending value combination, pattern
    ``p`` places the ``p[i]``-smallest value at leaf ``i``."""
    valid = []
    for perm in permutations(range(num_leaves)):
        if all(perm[i] < perm[j] for i, j in leaf_conditions):
            valid.append(perm)
    return valid


def materialize_star(cluster: Cluster, root: int, leaves: Sequence[int],
                     conditions: PartialOrder,
                     applied: set[tuple[int, int]],
                     workers_balanced: bool = False) -> DistributedRelation:
    """Materialise all matches of the star ``(root; leaves)`` from each
    machine's local partition (how StarJoin/SEED/RADS compute join units
    [45]): leaf assignments are combinations of each root vertex's
    neighbours, ordered consistently with the symmetry conditions.

    For hub vertices the output is ``C(d, |L|)``-sized — the star explosion
    that makes those systems memory-hungry.  Predicted size is pre-flighted
    against the memory budget and generation charges memory incrementally,
    so the explosion aborts with ``00M``/``0T`` early.
    """
    cost = cluster.cost
    metrics = cluster.metrics
    schema = (root,) + tuple(leaves)
    positional = new_conditions(schema, applied, conditions)
    root_conds = [(i, j) for i, j in positional if i == 0 or j == 0]
    leaf_conds = [(i - 1, j - 1) for i, j in positional if i != 0 and j != 0]
    patterns = valid_leaf_patterns(len(leaves), leaf_conds)
    nl = len(leaves)
    tuple_bytes = (nl + 1) * cost.bytes_per_id

    # pre-flight: predicted output size and ops per machine
    for m in range(cluster.num_machines):
        predicted = 0.0
        for u in cluster.local_vertices(m):
            d = cluster.pgraph.graph.degree(int(u))
            if d >= nl:
                predicted += math.comb(d, nl) * len(patterns)
        predicted_bytes = predicted * tuple_bytes / max(1, 2 ** len(root_conds))
        used = metrics.machines[m].cur_mem_bytes
        if used + predicted_bytes > cost.memory_budget_bytes:
            # would not fit even before filtering: report 00M now
            metrics.alloc(m, predicted_bytes)  # raises OutOfMemoryError
        est_ops = predicted * (nl + 1) * cost.emit_op
        if (metrics.compute_time(m) + cost.ops_to_seconds(est_ops)
                > cost.time_budget_s):
            raise OvertimeError(cost.time_budget_s + 1, cost.time_budget_s)

    parts: list[list[Tuple]] = []
    workers = cluster.workers_per_machine
    for m in range(cluster.num_machines):
        out: list[Tuple] = []
        pending = 0
        worker_ops = [0.0] * workers
        for idx, u in enumerate(cluster.local_vertices(m)):
            u = int(u)
            nbrs = cluster.pgraph.neighbours_local(u, m)
            ops = len(nbrs) * cost.scan_op
            if len(nbrs) >= nl:
                for combo in combinations(nbrs.tolist(), nl):
                    for pattern in patterns:
                        f = (u,) + tuple(combo[p] for p in pattern)
                        if any(f[i] >= f[j] for i, j in root_conds):
                            continue
                        out.append(f)
                        pending += 1
                        ops += (nl + 1) * cost.emit_op
                if pending >= _CHUNK:
                    metrics.alloc(m, pending * tuple_bytes)
                    pending = 0
                    metrics.check_time()
            if workers_balanced:
                for wi in range(workers):
                    worker_ops[wi] += ops / workers
            else:
                worker_ops[idx % workers] += ops
        metrics.alloc(m, pending * tuple_bytes)
        metrics.charge_worker_ops(m, worker_ops)
        parts.append(out)
        metrics.check_time()
    return DistributedRelation(cluster, schema, parts, charge_memory=False)


class BaselineEngine:
    """Base class: holds the cluster and wraps result reporting."""

    name = "baseline"

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def _check_query(self, query) -> None:
        """The baseline reproductions implement the papers' unlabelled
        algorithms; labelled matching is a HUGE-engine feature."""
        if query.is_labelled:
            raise NotImplementedError(
                f"{self.name} does not support labelled queries; "
                "use the HUGE engine")

    def _result(self, count: int) -> BaselineResult:
        return BaselineResult(self.name, count, self.cluster.metrics.report())
