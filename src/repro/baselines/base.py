"""Common machinery for the baseline distributed engines.

SEED / BiGJoin / RADS all materialise *distributed relations* — partial
results partitioned across machines — and move them with hash shuffles.
This module provides those building blocks with full cost/memory
accounting, so each baseline implementation stays a faithful, readable
transcription of its algorithm.

Relations are **columnar**: each machine's partition is a 2-D ``int64``
array (one row per tuple), and the relational operators — hash shuffle,
hash join, star materialisation — run as vectorised array programs built
on the shared kernels of :mod:`repro.core.kernels`.  The *simulated*
metrics they charge are bit-identical to the historical tuple-at-a-time
loops: repeated per-emit op additions are replayed with
``chain_add``/``exact_chain_total``, shuffle destinations use the
CPython tuple-hash replica, and the incremental memory-charge /
budget-check sequence (alloc → charge → check, every ``_CHUNK`` emitted
tuples) is reproduced allocation by allocation, so ``00M``/``0T`` aborts
trip at exactly the same point (see ``tests/golden/metrics.json``).

Memory is charged **incrementally while results are generated**, so an
exploding star expansion or join aborts with the paper's ``00M`` / ``0T``
outcome as soon as the budget is crossed, instead of grinding through the
full explosion first.  Star expansion additionally pre-flights its
predicted output size (``Σ_u C(d_u, |L|)`` patterns) for the same reason.
On abort, the inputs consumed by an operator and its partially charged
output are released, so the ledger balances on every exit path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Callable, Iterable, Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.errors import OutOfMemoryError, OvertimeError
from ..cluster.metrics import RunReport
from ..core.kernels import (chained_costs, chunk_charges, hash_destinations,
                            join_pairs)
from ..query.symmetry import PartialOrder

__all__ = [
    "Tuple",
    "BaselineResult",
    "DistributedRelation",
    "BaselineEngine",
    "new_conditions",
    "valid_leaf_patterns",
    "filter_tuples",
    "materialize_star",
]

Tuple = tuple[int, ...]

#: incremental memory-charge granularity (tuples)
_CHUNK = 4096


@dataclass
class BaselineResult:
    """Outcome of one baseline run (mirrors the HUGE result shape)."""

    name: str
    count: int
    report: RunReport

    @property
    def throughput_per_s(self) -> float:
        """Matches per simulated second."""
        if self.report.total_time_s <= 0:
            return 0.0
        return self.count / self.report.total_time_s

    def as_dict(self) -> dict:
        """JSON-ready summary (same shape as ``EnumerationResult.as_dict``)."""
        return {
            "engine": self.name,
            "count": self.count,
            "throughput_per_s": self.throughput_per_s,
            "report": self.report.as_dict(),
        }


def new_conditions(schema: Sequence[int], applied: set[tuple[int, int]],
                   conditions: PartialOrder) -> list[tuple[int, int]]:
    """Conditions newly checkable on ``schema``; returned as positional
    pairs ``(i, j)`` meaning ``f[i] < f[j]`` and marked as applied."""
    out: list[tuple[int, int]] = []
    for (u, v) in conditions:
        if (u, v) in applied:
            continue
        if u in schema and v in schema:
            out.append((schema.index(u), schema.index(v)))
            applied.add((u, v))
    return out


def filter_tuples(tuples: Iterable[Tuple],
                  positional: Sequence[tuple[int, int]],
                  distinct: Sequence[tuple[int, int]] = ()) -> list[Tuple]:
    """Apply positional symmetry and distinctness filters."""
    out: list[Tuple] = []
    for f in tuples:
        if any(f[i] >= f[j] for i, j in positional):
            continue
        if any(f[i] == f[j] for i, j in distinct):
            continue
        out.append(f)
    return out


def _as_partition(part, arity: int) -> np.ndarray:
    """One machine's partition as a ``(n, arity)`` int64 array."""
    if isinstance(part, np.ndarray):
        rows = np.asarray(part, dtype=np.int64)
    else:
        seq = list(part)
        if not seq:
            return np.empty((0, arity), dtype=np.int64)
        rows = np.asarray(seq, dtype=np.int64)
    if rows.ndim == 1:
        rows = rows.reshape(-1, arity) if arity else rows.reshape(len(rows), 0)
    if rows.ndim != 2 or rows.shape[1] != arity:
        raise ValueError(
            f"partition shape {rows.shape} does not match arity {arity}")
    return rows


class DistributedRelation:
    """A materialised, partitioned bag of partial-result tuples.

    Partitions are columnar ``(n, arity)`` int64 arrays (list-of-tuples
    input is coerced).  Creation (or incremental generation) charges
    simulated memory on each machine; :meth:`drop` releases it.  Baselines
    that keep every intermediate alive (as SEED does) never drop until the
    end — that is what drives their peak memory in Table 1.
    """

    def __init__(self, cluster: Cluster, schema: tuple[int, ...],
                 partitions: list, charge_memory: bool = True):
        if len(partitions) != cluster.num_machines:
            raise ValueError("one partition per machine required")
        self.cluster = cluster
        self.schema = schema
        self.partitions = [_as_partition(p, len(schema)) for p in partitions]
        self._alive = True
        if charge_memory:
            bytes_per_id = cluster.cost.bytes_per_id
            charged: list[float] = []
            try:
                for m, part in enumerate(self.partitions):
                    b = len(part) * len(schema) * bytes_per_id
                    charged.append(b)  # the raising alloc still charges
                    cluster.metrics.alloc(m, b)
            except OutOfMemoryError:
                for m, b in enumerate(charged):
                    cluster.metrics.free(m, b)
                self._alive = False
                raise

    @property
    def total(self) -> int:
        """Total tuple count across machines."""
        return sum(len(p) for p in self.partitions)

    def tuple_bytes(self) -> int:
        """Bytes per tuple."""
        return len(self.schema) * self.cluster.cost.bytes_per_id

    def drop(self) -> None:
        """Release the relation's simulated memory."""
        if not self._alive:
            return
        for m, part in enumerate(self.partitions):
            self.cluster.metrics.free(m, len(part) * self.tuple_bytes())
        self._alive = False

    # -- relational ops ---------------------------------------------------------

    def shuffle(self, key_pos: tuple[int, ...]) -> "DistributedRelation":
        """Hash-shuffle by key positions (pushing communication)."""
        cluster = self.cluster
        k = cluster.num_machines
        arity = len(self.schema)
        by_dest: list[list[np.ndarray]] = [[] for _ in range(k)]
        for src, part in enumerate(self.partitions):
            dests = hash_destinations(part[:, list(key_pos)], k)
            for dest in range(k):
                rows = part[dests == dest]
                by_dest[dest].append(rows)
                cluster.push(src, dest, len(rows), arity)
        parts = [np.concatenate(by_dest[d]) if by_dest[d]
                 else np.empty((0, arity), dtype=np.int64)
                 for d in range(k)]
        shuffled = DistributedRelation(cluster, self.schema, parts)
        self.drop()
        try:
            cluster.metrics.check_time()
        except OvertimeError:
            shuffled.drop()
            raise
        return shuffled

    def hash_join(self, other: "DistributedRelation",
                  conditions: PartialOrder,
                  applied: set[tuple[int, int]],
                  count_only: bool = False
                  ) -> "DistributedRelation | int":
        """Distributed hash join: shuffle both sides on the shared key,
        then join locally per machine.  Consumes both inputs (also on
        ``00M``/``0T`` aborts).  Output memory is charged incrementally so
        explosions abort early.

        With ``count_only`` (for a plan's final join, under the counting
        decompression of §7.1) outputs are counted, not materialised, and
        the total count is returned instead of a relation.
        """
        cluster = self.cluster
        cost = cluster.cost
        metrics = cluster.metrics
        shared = sorted(set(self.schema) & set(other.schema))
        if not shared:
            raise ValueError("join with empty key")
        lkey = tuple(self.schema.index(v) for v in shared)
        rkey = tuple(other.schema.index(v) for v in shared)
        left = right = None
        out_charged = [0.0] * cluster.num_machines
        try:
            left = self.shuffle(lkey)
            right = other.shuffle(rkey)

            out_schema = left.schema + tuple(
                v for v in right.schema if v not in left.schema)
            carry = tuple(right.schema.index(v) for v in right.schema
                          if v not in left.schema)
            left_only = [v for v in left.schema if v not in shared]
            right_only = [v for v in right.schema if v not in left.schema]
            distinct = [(out_schema.index(u), out_schema.index(v))
                        for u in left_only for v in right_only]
            positional = new_conditions(out_schema, applied, conditions)
            out_bytes = len(out_schema) * cost.bytes_per_id

            parts: list[np.ndarray] = []
            counted = 0
            workers = cluster.workers_per_machine
            for m in range(cluster.num_machines):
                lpart, rpart = left.partitions[m], right.partitions[m]
                build_left = len(lpart) <= len(rpart)
                bpart, ppart = (lpart, rpart) if build_left else (rpart, lpart)
                bkey, pkey = (lkey, rkey) if build_left else (rkey, lkey)
                emitted, emit_per_probe = _join_machine(
                    bpart, ppart, bkey, pkey, build_left, carry,
                    distinct, positional)
                total = len(emitted)
                # replay the scalar probe loop's op chains: build-side
                # hashing seeds the first chain, the chain resets at every
                # _CHUNK-tuple memory charge
                build_base = len(bpart) * cost.hash_build_op
                if count_only:
                    counted += total
                    chain = chunk_charges(
                        emit_per_probe, total, total + 1,
                        cost.hash_probe_op, 2 * cost.emit_op,
                        base=build_base)[0]
                    metrics.alloc(m, 0 * out_bytes)
                    metrics.charge_worker_ops(
                        m, [chain / workers] * workers)
                    continue
                charges = chunk_charges(
                    emit_per_probe, total, _CHUNK, cost.hash_probe_op,
                    len(out_schema) * cost.emit_op, base=build_base)
                num_full = total // _CHUNK
                for c in range(num_full):
                    out_charged[m] += _CHUNK * out_bytes
                    metrics.alloc(m, _CHUNK * out_bytes)
                    metrics.charge_ops(m, charges[c])
                    metrics.check_time()
                pending = total - num_full * _CHUNK
                out_charged[m] += pending * out_bytes
                metrics.alloc(m, pending * out_bytes)
                metrics.charge_worker_ops(
                    m, [charges[num_full] / workers] * workers)
                parts.append(emitted)
            left.drop()
            right.drop()
            metrics.check_time()
        except (OutOfMemoryError, OvertimeError):
            # balance the ledger on abort: both inputs (wherever the abort
            # hit) and the partially charged output are released
            for rel in (self, other, left, right):
                if rel is not None:
                    rel.drop()
            for m, b in enumerate(out_charged):
                metrics.free(m, b)
            raise
        if count_only:
            return counted
        return DistributedRelation(cluster, out_schema, parts,
                                   charge_memory=False)


def _join_machine(bpart: np.ndarray, ppart: np.ndarray,
                  bkey: tuple[int, ...], pkey: tuple[int, ...],
                  build_left: bool, carry: tuple[int, ...],
                  distinct: Sequence[tuple[int, int]],
                  positional: Sequence[tuple[int, int]]
                  ) -> tuple[np.ndarray, np.ndarray]:
    """One machine's local join: all key matches (probe-major, bucket
    insertion order — the scalar dict-of-buckets emission order) with the
    cross-side distinctness and symmetry filters applied.  Returns the
    emitted rows and the per-probe-row emit counts."""
    build_idx, probe_idx = join_pairs(bpart, ppart, bkey, pkey)
    brows = bpart[build_idx]
    prows = ppart[probe_idx]
    lf, rf = (brows, prows) if build_left else (prows, brows)
    joined = np.concatenate((lf, rf[:, list(carry)]), axis=1)
    keep = np.ones(len(joined), dtype=bool)
    for i, j in distinct:
        keep &= joined[:, i] != joined[:, j]
    for i, j in positional:
        keep &= joined[:, i] < joined[:, j]
    emitted = joined[keep]
    emit_per_probe = np.bincount(probe_idx[keep], minlength=len(ppart))
    return emitted, emit_per_probe


def valid_leaf_patterns(num_leaves: int,
                         leaf_conditions: Sequence[tuple[int, int]]
                         ) -> list[tuple[int, ...]]:
    """Permutation patterns of leaf positions consistent with the leaf-leaf
    symmetry conditions; applied to an ascending value combination, pattern
    ``p`` places the ``p[i]``-smallest value at leaf ``i``."""
    valid = []
    for perm in permutations(range(num_leaves)):
        if all(perm[i] < perm[j] for i, j in leaf_conditions):
            valid.append(perm)
    return valid


# -- star expansion kernels ----------------------------------------------------

#: ``(pool_size, choose)`` -> index combinations, lexicographic, shared
#: across vertices/rounds/runs (index patterns depend only on the sizes)
_COMB_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _comb_indices(pool: int, choose: int) -> np.ndarray:
    """All ``choose``-combinations of ``range(pool)`` as a 2-D index
    array, in ``itertools.combinations`` (lexicographic) order."""
    key = (pool, choose)
    got = _COMB_CACHE.get(key)
    if got is None:
        got = np.asarray(list(combinations(range(pool), choose)),
                         dtype=np.int64).reshape(-1, choose)
        _COMB_CACHE[key] = got
    return got


def combo_rows(prefix: np.ndarray, cand_flat: np.ndarray,
               cand_counts: np.ndarray, nl: int, patterns_arr: np.ndarray,
               conds: Sequence[tuple[int, int]]
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Star-style combination emission, vectorised.

    For each input row ``i`` (``prefix[i]`` plus its candidate list, the
    ``cand_counts[i]``-sized slice of the row-major ``cand_flat``), emit
    ``prefix[i] + leaves`` for every ascending ``nl``-combination of its
    candidates × every leaf pattern — row-major, combination-major,
    pattern-minor: the exact order of the scalar
    ``for combo: for pattern:`` loops.  Rows violating a positional
    condition ``(i, j)`` (requiring ``row[i] < row[j]``) are dropped.

    Returns ``(rows, row_ids, kept_counts)`` where ``kept_counts[i]`` is
    row ``i``'s surviving emission count.  Rows with fewer than ``nl``
    candidates emit nothing.
    """
    n, width = prefix.shape[0], prefix.shape[1] + nl
    empty = (np.empty((0, width), dtype=np.int64),
             np.empty(0, dtype=np.int64), np.zeros(n, dtype=np.int64))
    if n == 0 or len(patterns_arr) == 0:
        return empty
    # group rows by candidate-list size so each group expands as one
    # dense (rows, combos, patterns, nl) gather
    row_order = np.argsort(cand_counts, kind="stable")
    sorted_counts = cand_counts[row_order]
    rep = np.repeat(np.arange(n), cand_counts)
    cand_sorted = cand_flat[np.argsort(cand_counts[rep], kind="stable")]
    uniq_c, r_cnts = np.unique(sorted_counts, return_counts=True)
    pieces: list[np.ndarray] = []
    piece_ids: list[np.ndarray] = []
    e_off = r_off = 0
    for c, r_cnt in zip(uniq_c.tolist(), r_cnts.tolist()):
        grp_rows = row_order[r_off:r_off + r_cnt]
        seg = cand_sorted[e_off:e_off + c * r_cnt]
        r_off += r_cnt
        e_off += c * r_cnt
        if c < nl:
            continue
        leaves = seg.reshape(r_cnt, c)[:, _comb_indices(c, nl)]
        emit = leaves[:, :, patterns_arr].reshape(r_cnt, -1, nl)
        per_row = emit.shape[1]  # combos x patterns
        pieces.append(np.concatenate(
            (np.repeat(prefix[grp_rows], per_row, axis=0),
             emit.reshape(-1, nl)), axis=1))
        piece_ids.append(np.repeat(grp_rows, per_row))
    if not pieces:
        return empty
    rows = np.concatenate(pieces)
    ids = np.concatenate(piece_ids)
    # restore input-row order (stable: within a row the combination-major
    # order is already right)
    perm = np.argsort(ids, kind="stable")
    rows, ids = rows[perm], ids[perm]
    keep = np.ones(len(rows), dtype=bool)
    for i, j in conds:
        keep &= rows[:, i] < rows[:, j]
    rows, ids = rows[keep], ids[keep]
    return rows, ids, np.bincount(ids, minlength=n)


def star_partition(cluster: Cluster, machine: int, local: np.ndarray,
                   nl: int, patterns_arr: np.ndarray,
                   root_conds: Sequence[tuple[int, int]], tuple_bytes: int,
                   alloc_fn: Callable[[int, float], None]
                   ) -> tuple[np.ndarray, list[float]]:
    """Materialise one machine's star matches columnar-ly.

    Emits ``(u, leaves...)`` for every local root ``u``, replaying the
    scalar generation loop's accounting exactly: per-root op chains
    (``deg·scan_op`` base plus one ``(nl+1)·emit_op`` per emitted tuple)
    and the incremental ``_CHUNK`` memory-charge/`check_time` sequence,
    including the final partial-chunk charge.  Returns the partition rows
    and the per-root op costs (the caller distributes them to workers).
    """
    cost = cluster.cost
    metrics = cluster.metrics
    g = cluster.pgraph.graph
    local = np.asarray(local, dtype=np.int64)
    n = len(local)
    deg = (g.indptr[local + 1] - g.indptr[local]) if n else \
        np.zeros(0, dtype=np.int64)
    base = deg * cost.scan_op
    el = np.flatnonzero(deg >= nl)
    roots = local[el]
    counts = deg[el]
    total_c = int(counts.sum())
    rep_start = np.repeat(g.indptr[roots], counts)
    ramp = np.arange(total_c) - np.repeat(np.cumsum(counts) - counts, counts)
    cand_flat = g.indices[rep_start + ramp] if total_c else \
        np.empty(0, dtype=np.int64)
    rows, _, kept = combo_rows(roots[:, None], cand_flat, counts, nl,
                               patterns_arr, root_conds)
    c_full = np.zeros(n, dtype=np.int64)
    c_full[el] = kept
    item_ops = chained_costs(base, c_full, (nl + 1) * cost.emit_op).tolist()
    # scalar memory-charge replay: pending accumulates per eligible root,
    # flushing (alloc then check_time) whenever it reaches _CHUNK
    pending = 0
    for c in kept.tolist():
        pending += c
        if pending >= _CHUNK:
            alloc_fn(machine, pending * tuple_bytes)
            pending = 0
            metrics.check_time()
    alloc_fn(machine, pending * tuple_bytes)
    return rows, item_ops


def _predicted_star_total(degrees: np.ndarray, nl: int,
                          patterns: int) -> float:
    """``Σ_u C(d_u, nl)·patterns`` as the historical float chain.

    The chain's terms are non-negative integers, so while the running
    total stays below 2^53 every add is exact and the order-free integer
    total matches bit for bit; only past that point is it replayed
    literally.
    """
    elig = degrees[degrees >= nl]
    total = 0
    uniq, cnts = np.unique(elig, return_counts=True)
    for d, c in zip(uniq.tolist(), cnts.tolist()):
        total += math.comb(d, nl) * patterns * c
    if total < (1 << 53):
        return float(total)
    predicted = 0.0
    terms: dict[int, int] = {}
    for d in degrees.tolist():
        if d >= nl:
            term = terms.get(d)
            if term is None:
                term = math.comb(d, nl) * patterns
                terms[d] = term
            predicted += term
    return predicted


def materialize_star(cluster: Cluster, root: int, leaves: Sequence[int],
                     conditions: PartialOrder,
                     applied: set[tuple[int, int]],
                     workers_balanced: bool = False) -> DistributedRelation:
    """Materialise all matches of the star ``(root; leaves)`` from each
    machine's local partition (how StarJoin/SEED/RADS compute join units
    [45]): leaf assignments are combinations of each root vertex's
    neighbours, ordered consistently with the symmetry conditions.

    For hub vertices the output is ``C(d, |L|)``-sized — the star explosion
    that makes those systems memory-hungry.  Predicted size is pre-flighted
    against the memory budget and generation charges memory incrementally,
    so the explosion aborts with ``00M``/``0T`` early (releasing whatever
    partial output had been charged).
    """
    cost = cluster.cost
    metrics = cluster.metrics
    schema = (root,) + tuple(leaves)
    positional = new_conditions(schema, applied, conditions)
    root_conds = [(i, j) for i, j in positional if i == 0 or j == 0]
    leaf_conds = [(i - 1, j - 1) for i, j in positional if i != 0 and j != 0]
    patterns = valid_leaf_patterns(len(leaves), leaf_conds)
    patterns_arr = np.asarray(patterns, dtype=np.int64).reshape(
        len(patterns), len(leaves))
    nl = len(leaves)
    tuple_bytes = (nl + 1) * cost.bytes_per_id

    charged = [0.0] * cluster.num_machines

    def _alloc(m: int, b: float) -> None:
        charged[m] += b  # the raising alloc still charges the ledger
        metrics.alloc(m, b)

    try:
        # pre-flight: predicted output size and ops per machine; the
        # historical per-root float chain adds non-negative integer terms,
        # so below 2^53 it is order-free and equals the exact total
        indptr = cluster.pgraph.graph.indptr
        for m in range(cluster.num_machines):
            local = cluster.local_vertices(m)
            degs = indptr[local + 1] - indptr[local]
            predicted = _predicted_star_total(degs, nl, len(patterns))
            predicted_bytes = predicted * tuple_bytes / max(
                1, 2 ** len(root_conds))
            used = metrics.machines[m].cur_mem_bytes
            if used + predicted_bytes > cost.memory_budget_bytes:
                # would not fit even before filtering: report 00M now
                _alloc(m, predicted_bytes)  # raises OutOfMemoryError
            est_ops = predicted * (nl + 1) * cost.emit_op
            if (metrics.compute_time(m) + cost.ops_to_seconds(est_ops)
                    > cost.time_budget_s):
                raise OvertimeError(cost.time_budget_s + 1, cost.time_budget_s)

        parts: list[np.ndarray] = []
        workers = cluster.workers_per_machine
        for m in range(cluster.num_machines):
            rows, item_ops = star_partition(
                cluster, m, cluster.local_vertices(m), nl, patterns_arr,
                root_conds, tuple_bytes, _alloc)
            # per-root worker assignment is an order-sensitive float chain;
            # replay it literally over the per-root costs
            worker_ops = [0.0] * workers
            if workers_balanced:
                for ops in item_ops:
                    for wi in range(workers):
                        worker_ops[wi] += ops / workers
            else:
                for idx, ops in enumerate(item_ops):
                    worker_ops[idx % workers] += ops
            metrics.charge_worker_ops(m, worker_ops)
            parts.append(rows)
            metrics.check_time()
    except (OutOfMemoryError, OvertimeError):
        for m, b in enumerate(charged):
            metrics.free(m, b)
        raise
    return DistributedRelation(cluster, schema, parts, charge_memory=False)


class BaselineEngine:
    """Base class: holds the cluster and wraps result reporting."""

    name = "baseline"

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def _check_query(self, query) -> None:
        """The baseline reproductions implement the papers' unlabelled
        algorithms; labelled matching is a HUGE-engine feature."""
        if query.is_labelled:
            raise NotImplementedError(
                f"{self.name} does not support labelled queries; "
                "use the HUGE engine")

    def _result(self, count: int) -> BaselineResult:
        return BaselineResult(self.name, count, self.cluster.metrics.report())
