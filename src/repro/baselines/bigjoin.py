"""BiGJoin [5]: worst-case-optimal dataflow join with pushing.

BiGJoin matches the query one vertex at a time along a fixed order.  Each
round intersects the neighbourhoods of the new vertex's already-matched
pattern neighbours; in the distributed dataflow this is realised by
*pushing* every partial result (plus its running candidate list) to the
machine that owns each participating vertex in turn — the
``d̄·|R(q'_l)|``-sized transfers of Remark 3.1.

Memory is managed with the *batching* static heuristic: the initial edges
are processed in fixed-size batches, each expanded breadth-first through
all rounds.  The heuristic "lacks a tight bound" (§5.1) — a single batch
can still explode on hub vertices, which the memory budget reports as the
paper's ``00M``.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..cluster.cluster import Cluster
from ..core.plan.plans import greedy_order
from ..core.stealing import distribute_to_workers
from ..query.pattern import QueryGraph
from ..query.symmetry import symmetry_break
from .base import BaselineEngine, BaselineResult, Tuple

__all__ = ["BigJoinEngine"]

_CHUNK = 4096


class BigJoinEngine(BaselineEngine):
    """BiGJoin: left-deep wco join, pushing communication, batched input."""

    name = "BiGJoin"

    def __init__(self, cluster: Cluster, edge_batch: int = 1 << 14,
                 order: list[int] | None = None):
        super().__init__(cluster)
        self.edge_batch = edge_batch
        self.order = order

    def run(self, query: QueryGraph,
            reset_metrics: bool = True) -> BaselineResult:
        """Enumerate ``query`` with BiGJoin's batched wco dataflow."""
        self._check_query(query)
        cluster = self.cluster
        cost = cluster.cost
        if reset_metrics:
            cluster.reset_metrics()
        # reset_metrics rebinds cluster.metrics; capture the fresh ledger
        metrics = cluster.metrics

        order = self.order or greedy_order(query)
        conditions = symmetry_break(query)
        n = query.num_vertices
        back = [[order.index(u) for u in query.neighbours(order[i])
                 if u in order[:i]] for i in range(n)]
        conds_at = self._conditions_by_depth(order, conditions)

        # round 0: all matches of the first edge, partitioned by owner of
        # the first vertex
        initial: list[list[Tuple]] = [[] for _ in range(cluster.num_machines)]
        for m in range(cluster.num_machines):
            for u in cluster.local_vertices(m):
                u = int(u)
                nbrs = cluster.pgraph.neighbours_local(u, m)
                metrics.charge_ops(m, len(nbrs) * cost.scan_op)
                for v in nbrs:
                    v = int(v)
                    ok = True
                    for (pos, greater) in conds_at[1]:
                        if greater and v <= u:
                            ok = False
                        if not greater and v >= u:
                            ok = False
                    if ok:
                        initial[m].append((u, v))

        total = 0
        batch = self.edge_batch
        num_batches = max(1, max(
            (len(p) + batch - 1) // batch for p in initial))
        for b in range(num_batches):
            rel: list[list[Tuple]] = [
                p[b * batch:(b + 1) * batch] for p in initial]
            for m, part in enumerate(rel):
                metrics.alloc(m, len(part) * 2 * cost.bytes_per_id)
            arity = 2
            if n == 2:
                total += sum(len(p) for p in rel)
                for m, part in enumerate(rel):
                    metrics.free(m, len(part) * arity * cost.bytes_per_id)
            for depth in range(2, n):
                final = depth == n - 1
                # _extend_round frees its input relation on every machine
                out = self._extend_round(rel, arity, back[depth],
                                         conds_at[depth], count_only=final)
                if final:
                    # compression [63]: the last round counts extensions
                    # without materialising them
                    total += out  # type: ignore[operator]
                else:
                    rel = out  # type: ignore[assignment]
                    arity += 1
            metrics.check_time()
        return self._result(total)

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _conditions_by_depth(order: list[int], conditions
                             ) -> list[list[tuple[int, bool]]]:
        n = len(order)
        by_depth: list[list[tuple[int, bool]]] = [[] for _ in range(n)]
        for (u, v) in conditions:
            iu, iv = order.index(u), order.index(v)
            if iu < iv:
                by_depth[iv].append((iu, True))
            else:
                by_depth[iu].append((iv, False))
        return by_depth

    def _extend_round(self, rel: list[list[Tuple]], arity: int,
                      back: list[int], conds: list[tuple[int, bool]],
                      count_only: bool = False
                      ) -> "list[list[Tuple]] | int":
        """One wco extension round with pushing communication.

        Every tuple is routed through the owners of its back-vertices,
        carrying the shrinking candidate list; transfer bytes are the
        tuple plus the candidates at each hop.  With ``count_only`` (the
        final round under compression [63]) valid extensions are counted
        instead of materialised.
        """
        cluster = self.cluster
        cost = cluster.cost
        metrics = cluster.metrics
        k = cluster.num_machines
        graph = cluster.pgraph.graph
        out: list[list[Tuple]] = [[] for _ in range(k)]
        wire: dict[tuple[int, int], int] = defaultdict(int)
        out_bytes = (arity + 1) * cost.bytes_per_id
        counted = 0

        for m in range(k):
            worker_item_ops: list[float] = []
            pending_by_dest = [0] * k
            for f in rel[m]:
                ops = 0.0
                cand: np.ndarray | None = None
                here = m
                lengths: list[int] = []
                # count-min: visit the binding with the smallest adjacency
                # first, so the carried candidate list starts minimal [5]
                hops = sorted(back, key=lambda b: graph.degree(f[b]))
                for bpos in hops:
                    u = f[bpos]
                    dest = cluster.machine_of(u)
                    if dest != here:
                        carried = arity + (0 if cand is None else len(cand))
                        wire[(here, dest)] += carried * cost.bytes_per_id
                        here = dest
                    nbrs = graph.neighbours(u)
                    lengths.append(len(nbrs))
                    cand = nbrs if cand is None else np.intersect1d(
                        cand, nbrs, assume_unique=True)
                ops += cost.intersection_ops(lengths)
                assert cand is not None
                for v in cand:
                    v = int(v)
                    if v in f:
                        continue
                    ok = True
                    for (pos, greater) in conds:
                        if greater and v <= f[pos]:
                            ok = False
                            break
                        if not greater and v >= f[pos]:
                            ok = False
                            break
                    if ok:
                        if count_only:
                            counted += 1
                            ops += cost.emit_op
                            continue
                        out[here].append(f + (v,))
                        pending_by_dest[here] += 1
                        ops += (arity + 1) * cost.emit_op
                        if pending_by_dest[here] >= _CHUNK:
                            metrics.alloc(here,
                                          pending_by_dest[here] * out_bytes)
                            pending_by_dest[here] = 0
                            metrics.check_time()
                worker_item_ops.append(ops)
            for dest, pending in enumerate(pending_by_dest):
                metrics.alloc(dest, pending * out_bytes)
            # timely dataflow shards work finely across a machine's workers
            per_worker = distribute_to_workers(
                worker_item_ops, cluster.workers_per_machine, stealing=True)
            metrics.charge_worker_ops(m, per_worker)
            metrics.free(m, len(rel[m]) * arity * cost.bytes_per_id)
        for (src, dst), nbytes in wire.items():
            metrics.send(src, dst, nbytes,
                         messages=max(1, nbytes // (64 * 1024)))
        metrics.check_time()
        if count_only:
            return counted
        return out
