"""BiGJoin [5]: worst-case-optimal dataflow join with pushing.

BiGJoin matches the query one vertex at a time along a fixed order.  Each
round intersects the neighbourhoods of the new vertex's already-matched
pattern neighbours; in the distributed dataflow this is realised by
*pushing* every partial result (plus its running candidate list) to the
machine that owns each participating vertex in turn — the
``d̄·|R(q'_l)|``-sized transfers of Remark 3.1.

Memory is managed with the *batching* static heuristic: the initial edges
are processed in fixed-size batches, each expanded breadth-first through
all rounds.  The heuristic "lacks a tight bound" (§5.1) — a single batch
can still explode on hub vertices, which the memory budget reports as the
paper's ``00M``.

The rounds run columnar: a batch's partial matches are ``(n, arity)``
int64 arrays, the per-hop intersections are batched membership tests
against the shared edge-composite index, and the per-tuple op chains /
incremental memory charges of the historical tuple-at-a-time loop are
replayed bit-identically via :mod:`repro.core.kernels` (see
``tests/golden/metrics.json``).
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..core.kernels import (chained_costs, edge_composite_index, edge_member,
                            log2_plus2_table)
from ..core.plan.plans import greedy_order
from ..core.stealing import distribute_to_workers
from ..query.pattern import QueryGraph
from ..query.symmetry import symmetry_break
from .base import BaselineEngine, BaselineResult

__all__ = ["BigJoinEngine"]

_CHUNK = 4096


class BigJoinEngine(BaselineEngine):
    """BiGJoin: left-deep wco join, pushing communication, batched input."""

    name = "BiGJoin"

    def __init__(self, cluster: Cluster, edge_batch: int = 1 << 14,
                 order: list[int] | None = None):
        super().__init__(cluster)
        self.edge_batch = edge_batch
        self.order = order
        graph = cluster.pgraph.graph
        self._edge_index = edge_composite_index(graph)
        self._log2t = log2_plus2_table(graph)
        self._degrees = graph.indptr[1:] - graph.indptr[:-1]

    def run(self, query: QueryGraph,
            reset_metrics: bool = True) -> BaselineResult:
        """Enumerate ``query`` with BiGJoin's batched wco dataflow."""
        self._check_query(query)
        cluster = self.cluster
        cost = cluster.cost
        if reset_metrics:
            cluster.reset_metrics()
        # reset_metrics rebinds cluster.metrics; capture the fresh ledger
        metrics = cluster.metrics

        order = self.order or greedy_order(query)
        conditions = symmetry_break(query)
        n = query.num_vertices
        back = [[order.index(u) for u in query.neighbours(order[i])
                 if u in order[:i]] for i in range(n)]
        conds_at = self._conditions_by_depth(order, conditions)

        # round 0: all matches of the first edge, partitioned by owner of
        # the first vertex
        graph = cluster.pgraph.graph
        initial: list[np.ndarray] = []
        for m in range(cluster.num_machines):
            local = cluster.local_vertices(m)
            deg = self._degrees[local]
            # the scan charge is a per-vertex op chain; replay it in order
            for d in deg.tolist():
                metrics.charge_ops(m, d * cost.scan_op)
            ecount = int(deg.sum())
            us = np.repeat(local, deg)
            ramp = np.arange(ecount) - np.repeat(np.cumsum(deg) - deg, deg)
            vs = graph.indices[np.repeat(graph.indptr[local], deg) + ramp] \
                if ecount else np.empty(0, dtype=np.int64)
            keep = np.ones(ecount, dtype=bool)
            for (pos, greater) in conds_at[1]:
                keep &= (vs > us) if greater else (vs < us)
            initial.append(np.stack((us[keep], vs[keep]), axis=1)
                           if ecount else np.empty((0, 2), dtype=np.int64))

        total = 0
        batch = self.edge_batch
        num_batches = max(1, max(
            (len(p) + batch - 1) // batch for p in initial))
        for b in range(num_batches):
            rel = [p[b * batch:(b + 1) * batch] for p in initial]
            for m, part in enumerate(rel):
                metrics.alloc(m, len(part) * 2 * cost.bytes_per_id)
            arity = 2
            if n == 2:
                total += sum(len(p) for p in rel)
                for m, part in enumerate(rel):
                    metrics.free(m, len(part) * arity * cost.bytes_per_id)
            for depth in range(2, n):
                final = depth == n - 1
                # _extend_round frees its input relation on every machine
                out = self._extend_round(rel, arity, back[depth],
                                         conds_at[depth], count_only=final)
                if final:
                    # compression [63]: the last round counts extensions
                    # without materialising them
                    total += out  # type: ignore[operator]
                else:
                    rel = out  # type: ignore[assignment]
                    arity += 1
            metrics.check_time()
        return self._result(total)

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _conditions_by_depth(order: list[int], conditions
                             ) -> list[list[tuple[int, bool]]]:
        n = len(order)
        by_depth: list[list[tuple[int, bool]]] = [[] for _ in range(n)]
        for (u, v) in conditions:
            iu, iv = order.index(u), order.index(v)
            if iu < iv:
                by_depth[iv].append((iu, True))
            else:
                by_depth[iu].append((iv, False))
        return by_depth

    def _extend_round(self, rel: list[np.ndarray], arity: int,
                      back: list[int], conds: list[tuple[int, bool]],
                      count_only: bool = False
                      ) -> "list[np.ndarray] | int":
        """One wco extension round with pushing communication.

        Every tuple is routed through the owners of its back-vertices,
        carrying the shrinking candidate list; transfer bytes are the
        tuple plus the candidates at each hop.  With ``count_only`` (the
        final round under compression [63]) valid extensions are counted
        instead of materialised.

        The round is an array program over each machine's tuple block —
        per-hop degrees/owners as matrices, candidate shrinking as batch
        edge-membership, filters as masks — while the simulated charges
        replay the scalar per-tuple loop: intersection-cost chains via
        ``chained_costs``, destination-wise incremental memory charges in
        tuple order, and wire aggregation keyed by first occurrence (the
        scalar accumulator dict's iteration order).
        """
        cluster = self.cluster
        cost = cluster.cost
        metrics = cluster.metrics
        k = cluster.num_machines
        graph = cluster.pgraph.graph
        owner = cluster.pgraph.owner
        comp = self._edge_index
        log2t = self._log2t
        nv = graph.num_vertices
        bpi = cost.bytes_per_id
        w = len(back)
        back_arr = np.asarray(back, dtype=np.int64)
        out: list[list[np.ndarray]] = [[] for _ in range(k)]
        wire: dict[tuple[int, int], int] = {}
        out_bytes = (arity + 1) * cost.bytes_per_id
        counted = 0

        for m in range(k):
            rows = rel[m]
            nrows = len(rows)
            # count-min: visit the binding with the smallest adjacency
            # first, so the carried candidate list starts minimal [5]
            bverts = rows[:, back_arr]
            bdeg = self._degrees[bverts]
            ordcols = np.argsort(bdeg, axis=1, kind="stable")
            hop_verts = np.take_along_axis(bverts, ordcols, axis=1)
            hop_deg = np.take_along_axis(bdeg, ordcols, axis=1)

            # candidate shrinking, one hop at a time; carried[i] is the
            # candidate-list length when moving into hop i
            c0 = hop_deg[:, 0]
            total_c = int(c0.sum())
            ramp = np.arange(total_c) - np.repeat(np.cumsum(c0) - c0, c0)
            cand = graph.indices[
                np.repeat(graph.indptr[hop_verts[:, 0]], c0) + ramp] \
                if total_c else np.empty(0, dtype=np.int64)
            counts = c0
            carried = [np.zeros(nrows, dtype=np.int64)]
            base = hop_deg[:, 0] * cost.intersect_op
            for i in range(1, w):
                carried.append(counts)
                row_ids = np.repeat(np.arange(nrows), counts)
                keep = edge_member(comp, nv, hop_verts[row_ids, i], cand)
                cand = cand[keep]
                counts = np.bincount(row_ids[keep], minlength=nrows)
                base = base + (c0 * log2t[hop_deg[:, i]]) * cost.intersect_op

            # wire accounting: a tuple moves whenever the next hop's owner
            # differs from where it currently sits
            owners_h = owner[hop_verts]
            prev = np.full(nrows, m, dtype=np.int64)
            pids: list[np.ndarray] = []
            oidx: list[np.ndarray] = []
            wbytes: list[np.ndarray] = []
            for i in range(w):
                dest = owners_h[:, i]
                moved = dest != prev
                mi = np.flatnonzero(moved)
                pids.append(prev[mi] * k + dest[mi])
                oidx.append(mi * w + i)
                wbytes.append((arity + carried[i][mi]) * bpi)
                prev = dest
            pid = np.concatenate(pids)
            if len(pid):
                totals = np.zeros(k * k, dtype=np.int64)
                np.add.at(totals, pid, np.concatenate(wbytes))
                # first-occurrence order of (src, dst) pairs — the scalar
                # dict's insertion order, which fixes the send sequence
                order_pid = pid[np.argsort(np.concatenate(oidx),
                                           kind="stable")]
                remaining = set(np.unique(pid).tolist())
                for p in order_pid.tolist():
                    if p in remaining:
                        remaining.remove(p)
                        key = (p // k, p % k)
                        wire[key] = wire.get(key, 0) + int(totals[p])
                        if not remaining:
                            break

            # final filters: distinctness against the whole tuple, then
            # the depth's symmetry conditions
            row_ids = np.repeat(np.arange(nrows), counts)
            keep = ~(cand[:, None] == rows[row_ids]).any(axis=1)
            for (pos, greater) in conds:
                bound = rows[row_ids, pos]
                keep &= (cand > bound) if greater else (cand < bound)
            kept_ids = row_ids[keep]
            c_row = np.bincount(kept_ids, minlength=nrows)
            here_final = owners_h[:, w - 1] if w else \
                np.full(nrows, m, dtype=np.int64)

            if count_only:
                counted += int(c_row.sum())
                item_ops = chained_costs(base, c_row, cost.emit_op)
                pending_by_dest = [0] * k
            else:
                item_ops = chained_costs(base, c_row,
                                         (arity + 1) * cost.emit_op)
                emitted = np.concatenate(
                    (rows[kept_ids], cand[keep][:, None]), axis=1)
                emit_dest = here_final[kept_ids]
                for dest in range(k):
                    out[dest].append(emitted[emit_dest == dest])
                # destination-wise incremental memory charges, replayed in
                # tuple order (flush at every _CHUNK pending per dest)
                pending_by_dest = [0] * k
                for r in np.flatnonzero(c_row).tolist():
                    h = int(here_final[r])
                    tot = pending_by_dest[h] + int(c_row[r])
                    for _ in range(tot // _CHUNK):
                        metrics.alloc(h, _CHUNK * out_bytes)
                        metrics.check_time()
                    pending_by_dest[h] = tot % _CHUNK
            for dest, pending in enumerate(pending_by_dest):
                metrics.alloc(dest, pending * out_bytes)
            # timely dataflow shards work finely across a machine's workers
            per_worker = distribute_to_workers(
                item_ops.tolist(), cluster.workers_per_machine, stealing=True)
            metrics.charge_worker_ops(m, per_worker)
            metrics.free(m, nrows * arity * cost.bytes_per_id)
        for (src, dst), nbytes in wire.items():
            metrics.send(src, dst, nbytes,
                         messages=max(1, nbytes // (64 * 1024)))
        metrics.check_time()
        if count_only:
            return counted
        return [np.concatenate(parts) if parts
                else np.empty((0, arity + 1), dtype=np.int64)
                for parts in out]
