"""SEED [46]: scalable distributed subgraph enumeration via hash joins.

SEED decomposes the query into star join units (clique units require a
triangle index this reproduction, like index-free HUGE, does not build),
picks a *bushy* join tree by dynamic programming, and evaluates it with
pushing-based distributed hash joins, fully materialising every
intermediate relation.

Characteristics reproduced here (Table 1 row SEED):

* huge communication — every intermediate is shuffled in full;
* huge memory — intermediates (and the star explosion on hub vertices)
  are materialised; the memory budget turns this into the paper's ``00M``;
* BFS-style scheduling with good CPU utilisation when it fits.
"""

from __future__ import annotations

from ..cluster.cluster import Cluster
from ..core.plan.logical import LogicalPlan, PlanNode
from ..core.plan.plans import seed_plan
from ..query.estimate import CardinalityEstimator, SamplingEstimator
from ..query.pattern import QueryGraph
from ..query.symmetry import symmetry_break
from .base import BaselineEngine, BaselineResult, DistributedRelation, \
    materialize_star

__all__ = ["SeedEngine"]


class SeedEngine(BaselineEngine):
    """SEED: bushy pushing-based hash joins over star units."""

    name = "SEED"

    def __init__(self, cluster: Cluster,
                 estimator: CardinalityEstimator | None = None):
        super().__init__(cluster)
        self.estimator = estimator or SamplingEstimator(cluster.graph)

    def run(self, query: QueryGraph, plan: LogicalPlan | None = None,
            reset_metrics: bool = True) -> BaselineResult:
        """Enumerate ``query`` with SEED's bushy hash-join plan."""
        self._check_query(query)
        if reset_metrics:
            self.cluster.reset_metrics()
        if plan is None:
            plan = seed_plan(query, self.estimator)
        conditions = symmetry_break(query)
        if plan.root.is_leaf:
            applied: set[tuple[int, int]] = set()
            root = plan.root.sub.star_root()
            leaves = sorted(plan.root.sub.vertices - {root})
            rel = materialize_star(self.cluster, root, leaves, conditions,
                                   applied, workers_balanced=False)
            count = rel.total
            rel.drop()
            return self._result(count)
        assert plan.root.left is not None and plan.root.right is not None
        lrel, lapplied = self._evaluate(plan.root.left, conditions)
        rrel, rapplied = self._evaluate(plan.root.right, conditions)
        # the final join counts its output (decompress-by-counting, §7.1)
        count = lrel.hash_join(rrel, conditions, lapplied | rapplied,
                               count_only=True)
        return self._result(count)

    def _evaluate(self, node: PlanNode, conditions
                  ) -> tuple[DistributedRelation, set[tuple[int, int]]]:
        if node.is_leaf:
            applied: set[tuple[int, int]] = set()
            root = node.sub.star_root()
            leaves = sorted(node.sub.vertices - {root})
            rel = materialize_star(self.cluster, root, leaves, conditions,
                                   applied, workers_balanced=False)
            return rel, applied
        assert node.left is not None and node.right is not None
        lrel, lapplied = self._evaluate(node.left, conditions)
        rrel, rapplied = self._evaluate(node.right, conditions)
        applied = lapplied | rapplied
        joined = lrel.hash_join(rrel, conditions, applied)
        return joined, applied
