"""BENU [84]: distributed subgraph enumeration with backtracking.

BENU embarrassingly parallelises a sequential DFS backtracking program
(Ullmann-style [82]) on each machine: every machine takes its local edges
as pivot tasks and matches the remaining query vertices depth-first,
pulling adjacency lists from an external key-value store (Cassandra)
through a per-machine LRU cache.

Characteristics reproduced here (Table 1 row BENU):

* tiny memory — DFS holds one partial match plus the cache;
* low communication volume — only cache misses touch the wire;
* poor computation time — every miss stalls on the external store, and the
  DFS cannot batch or overlap those stalls (§1: low CPU utilisation);
* load skew — work is distributed by the firstly matched (pivot) vertex
  with no stealing (Exp-8's comparison point).

The adjacency pulls stay sequential — the cache hit/miss sequence (and
its per-request charges) is part of the simulated behaviour — but the
per-node candidate work is vectorised: intersections use the shared
``intersect_sorted`` kernel, candidate filtering is mask-based, and the
innermost recursion level collapses into one ``chain_add`` replay of the
per-match emit charges.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..core.cache import LRUCache
from ..core.kernels import chain_add, intersect_sorted, log2_plus2_table
from ..core.plan.plans import dfs_order
from ..core.stealing import chunked_distribution
from ..query.pattern import QueryGraph
from ..query.symmetry import symmetry_break
from .base import BaselineEngine, BaselineResult
from .kvstore import ExternalKVStore

__all__ = ["BenuEngine"]


class BenuEngine(BaselineEngine):
    """BENU: pulling-based DFS enumeration over an external KV store."""

    name = "BENU"

    def __init__(self, cluster: Cluster, cache_capacity_fraction: float = 0.3,
                 load_store: bool = True):
        super().__init__(cluster)
        self.cache_capacity_fraction = cache_capacity_fraction
        self._load_store = load_store

    def run(self, query: QueryGraph,
            reset_metrics: bool = True) -> BaselineResult:
        """Enumerate ``query`` BENU-style; returns count + metrics."""
        self._check_query(query)
        cluster = self.cluster
        cost = cluster.cost
        if reset_metrics:
            cluster.reset_metrics()
        store = ExternalKVStore(cluster)
        if self._load_store:
            store.load()
        else:
            store._loaded = True

        g = cluster.graph
        capacity = max(1, int(self.cache_capacity_fraction
                              * (2 * g.num_edges + g.num_vertices)))
        cluster.metrics.reserve_constant(capacity * cost.bytes_per_id)

        order = dfs_order(query)
        conditions = symmetry_break(query)
        n = query.num_vertices
        # back[i]: pattern neighbours of order[i] among order[:i]
        back = [[order.index(u) for u in query.neighbours(order[i])
                 if u in order[:i]] for i in range(n)]
        # symmetry conditions positional in match-order space
        cond_by_depth: list[list[tuple[int, bool]]] = [[] for _ in range(n)]
        for (u, v) in conditions:
            iu, iv = order.index(u), order.index(v)
            if iu < iv:
                cond_by_depth[iv].append((iu, True))   # f[iv] > f[iu]
            else:
                cond_by_depth[iu].append((iv, False))  # f[iu] < f[iv]

        graph = cluster.pgraph.graph
        indices = graph.indices
        indptr_l = graph.indptr.tolist()
        owner_l = cluster.pgraph.owner.tolist()
        # math.log2(d + 2) by degree — the intersection-cost chain replica
        log2l = [float(x) for x in log2_plus2_table(graph)]
        iop = cost.intersect_op
        emit_step = n * cost.emit_op

        total = 0
        workers = cluster.workers_per_machine
        for m in range(cluster.num_machines):
            cache = LRUCache(capacity, cost)
            ops_box = [0.0]

            def nbrs_of(u: int) -> np.ndarray:
                if owner_l[u] == m:
                    return indices[indptr_l[u]:indptr_l[u + 1]]
                if cache.contains(u):
                    cluster.metrics.record_cache(m, hits=1)
                    ops_box[0] += cache.access_penalty(u)
                    return cache.get(u)
                cluster.metrics.record_cache(m, misses=1)
                fetched = store.get(m, u)
                cache.insert(u, fetched)
                ops_box[0] += cache.access_penalty(u)
                return fetched

            def dfs(match: list[int], depth: int) -> int:
                if depth == n:
                    ops_box[0] += n * cost.emit_op
                    return 1
                # pull the back-neighbourhoods (the per-pull charges and
                # the intersection-cost chain stay the historical ones)
                bd = back[depth]
                if len(bd) == 1:
                    cand = nbrs_of(match[bd[0]])
                    ops_box[0] += float(len(cand)) * iop
                    rest = ()
                elif len(bd) == 2:
                    a0 = nbrs_of(match[bd[0]])
                    a1 = nbrs_of(match[bd[1]])
                    if len(a1) < len(a0):
                        a0, a1 = a1, a0
                    s = len(a0)
                    ops_box[0] += float(s) * iop + s * log2l[len(a1)] * iop
                    cand = a0
                    rest = (a1,)
                else:
                    arrs = [nbrs_of(match[b]) for b in bd]
                    lengths = sorted(len(a) for a in arrs)
                    smallest = lengths[0]
                    ops = float(smallest) * iop
                    for other in lengths[1:]:
                        ops += smallest * log2l[other] * iop
                    ops_box[0] += ops
                    arrs.sort(key=len)
                    cand = arrs[0]
                    rest = arrs[1:]
                # symmetry conditions select a contiguous window of the
                # sorted candidates; slice it before intersecting further
                lo, hi = 0, len(cand)
                for (pos, greater) in cond_by_depth[depth]:
                    x = match[pos]
                    if greater:
                        i = int(cand.searchsorted(x, "right"))
                        if i > lo:
                            lo = i
                    else:
                        i = int(cand.searchsorted(x, "left"))
                        if i < hi:
                            hi = i
                if hi <= lo:
                    return 0
                cand = cand[lo:hi]
                for a in rest:
                    cand = intersect_sorted(cand, a)
                    if not len(cand):
                        return 0
                # distinctness: drop already-matched ids (binary probes —
                # a match id appears at most once in the unique cand)
                if depth == n - 1:
                    # innermost level: each valid candidate is a match,
                    # charged as one emit-op chain
                    found = len(cand)
                    for x in match:
                        j = int(cand.searchsorted(x))
                        if j < len(cand) and cand[j] == x:
                            found -= 1
                    ops_box[0] = chain_add(ops_box[0], emit_step, found)
                    return found
                drop = [j for x in match
                        if (j := int(cand.searchsorted(x))) < len(cand)
                        and cand[j] == x]
                if drop:
                    cand = np.delete(cand, drop)
                found = 0
                for v in cand.tolist():
                    match.append(v)
                    found += dfs(match, depth + 1)
                    match.pop()
                return found

            # pivot tasks: local edges matching (order[0], order[1])
            task_ops: list[float] = []
            count_m = 0
            for u in cluster.local_vertices(m).tolist():
                for v in indices[indptr_l[u]:indptr_l[u + 1]].tolist():
                    ops_box[0] = 2 * cost.scan_op
                    ok = True
                    for (pos, greater) in cond_by_depth[1]:
                        if greater and v <= u:
                            ok = False
                        if not greater and v >= u:
                            ok = False
                    if ok:
                        count_m += dfs([u, v], 2)
                    task_ops.append(ops_box[0])
                cluster.metrics.check_time()
            total += count_m
            # BENU distributes load by the pivot vertex: contiguous chunks
            # per worker, no stealing (skew preserved)
            per_worker = chunked_distribution(task_ops, workers)
            cluster.metrics.charge_worker_ops(m, per_worker)
        return self._result(total)
