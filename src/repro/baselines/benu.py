"""BENU [84]: distributed subgraph enumeration with backtracking.

BENU embarrassingly parallelises a sequential DFS backtracking program
(Ullmann-style [82]) on each machine: every machine takes its local edges
as pivot tasks and matches the remaining query vertices depth-first,
pulling adjacency lists from an external key-value store (Cassandra)
through a per-machine LRU cache.

Characteristics reproduced here (Table 1 row BENU):

* tiny memory — DFS holds one partial match plus the cache;
* low communication volume — only cache misses touch the wire;
* poor computation time — every miss stalls on the external store, and the
  DFS cannot batch or overlap those stalls (§1: low CPU utilisation);
* load skew — work is distributed by the firstly matched (pivot) vertex
  with no stealing (Exp-8's comparison point).
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..core.cache import LRUCache
from ..core.plan.plans import dfs_order
from ..query.pattern import QueryGraph
from ..query.symmetry import symmetry_break
from .base import BaselineEngine, BaselineResult
from .kvstore import ExternalKVStore

__all__ = ["BenuEngine"]


class BenuEngine(BaselineEngine):
    """BENU: pulling-based DFS enumeration over an external KV store."""

    name = "BENU"

    def __init__(self, cluster: Cluster, cache_capacity_fraction: float = 0.3,
                 load_store: bool = True):
        super().__init__(cluster)
        self.cache_capacity_fraction = cache_capacity_fraction
        self._load_store = load_store

    def run(self, query: QueryGraph,
            reset_metrics: bool = True) -> BaselineResult:
        """Enumerate ``query`` BENU-style; returns count + metrics."""
        self._check_query(query)
        cluster = self.cluster
        cost = cluster.cost
        if reset_metrics:
            cluster.reset_metrics()
        store = ExternalKVStore(cluster)
        if self._load_store:
            store.load()
        else:
            store._loaded = True

        g = cluster.graph
        capacity = max(1, int(self.cache_capacity_fraction
                              * (2 * g.num_edges + g.num_vertices)))
        cluster.metrics.reserve_constant(capacity * cost.bytes_per_id)

        order = dfs_order(query)
        conditions = symmetry_break(query)
        n = query.num_vertices
        # back[i]: pattern neighbours of order[i] among order[:i]
        back = [[order.index(u) for u in query.neighbours(order[i])
                 if u in order[:i]] for i in range(n)]
        # symmetry conditions positional in match-order space
        cond_by_depth: list[list[tuple[int, bool]]] = [[] for _ in range(n)]
        for (u, v) in conditions:
            iu, iv = order.index(u), order.index(v)
            if iu < iv:
                cond_by_depth[iv].append((iu, True))   # f[iv] > f[iu]
            else:
                cond_by_depth[iu].append((iv, False))  # f[iu] < f[iv]

        total = 0
        workers = cluster.workers_per_machine
        for m in range(cluster.num_machines):
            cache = LRUCache(capacity, cost)
            ops_box = [0.0]

            def nbrs_of(u: int) -> np.ndarray:
                if cluster.pgraph.owner_of(u) == m:
                    return cluster.pgraph.neighbours_local(u, m)
                if cache.contains(u):
                    cluster.metrics.record_cache(m, hits=1)
                    ops_box[0] += cache.access_penalty(u)
                    return cache.get(u)
                cluster.metrics.record_cache(m, misses=1)
                fetched = store.get(m, u)
                cache.insert(u, fetched)
                ops_box[0] += cache.access_penalty(u)
                return fetched

            def dfs(match: list[int], depth: int) -> int:
                if depth == n:
                    ops_box[0] += n * cost.emit_op
                    return 1
                cand: np.ndarray | None = None
                lengths: list[int] = []
                for b in back[depth]:
                    nbrs = nbrs_of(match[b])
                    lengths.append(len(nbrs))
                    cand = nbrs if cand is None else np.intersect1d(
                        cand, nbrs, assume_unique=True)
                ops_box[0] += cost.intersection_ops(lengths)
                found = 0
                assert cand is not None  # queries are connected
                for v in cand:
                    v = int(v)
                    if v in match:
                        continue
                    ok = True
                    for (pos, greater) in cond_by_depth[depth]:
                        if greater and v <= match[pos]:
                            ok = False
                            break
                        if not greater and v >= match[pos]:
                            ok = False
                            break
                    if ok:
                        match.append(v)
                        found += dfs(match, depth + 1)
                        match.pop()
                return found

            # pivot tasks: local edges matching (order[0], order[1])
            task_ops: list[float] = []
            count_m = 0
            for u in cluster.local_vertices(m):
                u = int(u)
                for v in cluster.pgraph.neighbours_local(u, m):
                    v = int(v)
                    ops_box[0] = 2 * cost.scan_op
                    ok = True
                    for (pos, greater) in cond_by_depth[1]:
                        if greater and v <= u:
                            ok = False
                        if not greater and v >= u:
                            ok = False
                    if ok:
                        count_m += dfs([u, v], 2)
                    task_ops.append(ops_box[0])
                cluster.metrics.check_time()
            total += count_m
            # BENU distributes load by the pivot vertex: contiguous chunks
            # per worker, no stealing (skew preserved)
            from ..core.stealing import chunked_distribution
            per_worker = chunked_distribution(task_ops, workers)
            cluster.metrics.charge_worker_ops(m, per_worker)
        return self._result(total)
