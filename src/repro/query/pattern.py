"""Query graphs (patterns) and the paper's benchmark query set.

A :class:`QueryGraph` is a small, connected, undirected, unlabelled pattern
whose vertices are dense integers ``0 .. n-1`` — the ``v_1 .. v_n`` of the
paper (0-indexed here).  It is immutable and hashable so patterns can key
optimiser DP tables.

The paper's evaluation uses queries ``q1 .. q8`` shown in its Figure 4,
which is an image and therefore not recoverable from the text.  The shapes
below are reconstructed from the textual constraints and the query sets of
the prior work the paper cites ([5, 46, 47, 63, 66, 84]):

* ``q1`` — **square** (4-cycle).  Table 1 runs "the square query" and
  Exp-1/Exp-2 use q1 as the first query.
* ``q2`` — **chordal square / diamond** (4-cycle plus one chord).  RADS
  materialises "a massive number of 3-stars" for it (Exp-1), which matches
  the diamond's degree-3 roots.
* ``q3`` — **4-clique**: "SEED can query q3 (a clique) without any join"
  (Exp-2).
* ``q4`` — **house** (5-cycle plus one chord).
* ``q5`` — **double square** (two 4-cycles sharing an edge).
* ``q6`` — **5-path** (path on five vertices): the "long-running query that
  can trigger memory crisis" of Exp-7 — path queries have the largest
  intermediate-result explosion.
* ``q7`` — **5-cycle**: Exp-9 says its best plan "joins a 3-path with a
  2-path" via PUSH-JOIN, while "the wco join plan must produce the matches
  of a 4-path" — exactly the pentagon's classic hybrid plan.
* ``q8`` — **6-cycle**: a query where HUGE / EmptyHeaded / GraphFlow "all
  generate their own hybrid plans" (Exp-9).
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["QueryGraph", "QUERIES", "get_query"]


class QueryGraph:
    """An immutable small pattern graph.

    Parameters
    ----------
    num_vertices:
        Number of pattern vertices ``|V_q|``.
    edges:
        Iterable of undirected edges between pattern vertices.
    name:
        Optional display name (not part of equality).
    labels:
        Optional per-vertex label constraints (paper §2, footnote 3:
        labelled graphs are supported seamlessly).  ``None`` entries are
        wildcards; a labelled vertex only matches data vertices carrying
        the same label.
    """

    __slots__ = ("_n", "_edges", "_adj", "_name", "_labels", "_canon")

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]],
                 name: str | None = None,
                 labels: "Iterable[int | None] | None" = None):
        norm = set()
        for u, v in edges:
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError(f"edge ({u}, {v}) out of range for "
                                 f"{num_vertices} vertices")
            if u == v:
                raise ValueError(f"self-loop on vertex {u}")
            norm.add((min(u, v), max(u, v)))
        self._n = num_vertices
        self._edges = frozenset(norm)
        adj: list[set[int]] = [set() for _ in range(num_vertices)]
        for u, v in self._edges:
            adj[u].add(v)
            adj[v].add(u)
        self._adj = tuple(frozenset(s) for s in adj)
        self._name = name
        self._canon: tuple[int, ...] | None = None  # lazy canonical mapping
        if labels is None:
            self._labels: tuple[int | None, ...] = (None,) * num_vertices
        else:
            self._labels = tuple(labels)
            if len(self._labels) != num_vertices:
                raise ValueError("need one label (or None) per vertex")

    # -- accessors -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """``|V_q|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """``|E_q|``."""
        return len(self._edges)

    @property
    def edges(self) -> frozenset[tuple[int, int]]:
        """Normalised edge set, each edge as ``(min, max)``."""
        return self._edges

    @property
    def name(self) -> str:
        """Display name."""
        return self._name or f"pattern<{self._n}v,{len(self._edges)}e>"

    @property
    def labels(self) -> tuple[int | None, ...]:
        """Per-vertex label constraints (``None`` = wildcard)."""
        return self._labels

    @property
    def is_labelled(self) -> bool:
        """Whether any vertex carries a label constraint."""
        return any(l is not None for l in self._labels)

    def label(self, v: int) -> int | None:
        """Label constraint of pattern vertex ``v``."""
        return self._labels[v]

    def vertices(self) -> range:
        """Pattern vertex IDs."""
        return range(self._n)

    def neighbours(self, v: int) -> frozenset[int]:
        """Pattern neighbours of ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Pattern degree of ``v``."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether pattern edge ``(u, v)`` exists."""
        return (min(u, v), max(u, v)) in self._edges

    # -- structure tests -----------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the pattern is connected (isolated-vertex-free)."""
        if self._n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self._n

    def is_star(self) -> bool:
        """Whether the pattern is a star (a tree of depth 1, incl. an edge)."""
        if self._n < 2 or len(self._edges) != self._n - 1:
            return False
        degrees = sorted(self.degree(v) for v in self.vertices())
        # star: one centre of degree n-1, all others degree 1 (an edge is a
        # 1-star with either endpoint as the root)
        return degrees[-1] == self._n - 1 and all(d == 1 for d in degrees[:-1])

    def star_root(self) -> int:
        """Root of this star (max-degree vertex).  Requires :meth:`is_star`."""
        if not self.is_star():
            raise ValueError(f"{self.name} is not a star")
        return max(self.vertices(), key=self.degree)

    def is_clique(self) -> bool:
        """Whether the pattern is a complete graph."""
        return len(self._edges) == self._n * (self._n - 1) // 2

    # -- canonicalisation ----------------------------------------------------

    def _canonical_mapping(self) -> tuple[int, ...]:
        """Permutation ``mapping[v] = canonical position of v`` giving the
        lexicographically smallest class-respecting adjacency encoding.

        Vertices are first partitioned into classes by a twice-refined
        Weisfeiler-Leman-style invariant (label, degree, sorted neighbour
        invariants) — an isomorphism invariant, so isomorphic patterns
        produce the same class structure.  A branch-and-bound search then
        assigns canonical positions class by class, pruning any prefix
        whose adjacency rows already exceed the best found; the row-prefix
        pruning keeps highly symmetric patterns (cycles, cliques) cheap.
        """
        if self._canon is not None:
            return self._canon
        n = self._n
        if n == 0:
            self._canon = ()
            return self._canon
        # iso-invariant vertex classes: (label, degree) refined twice over
        # sorted neighbour invariants
        inv: list = [((lab is not None, lab if lab is not None else 0),
                      len(self._adj[v]))
                     for v, lab in enumerate(self._labels)]
        for _ in range(2):
            inv = [(inv[v], tuple(sorted(inv[w] for w in self._adj[v])))
                   for v in range(n)]
        ranking = {value: i for i, value in enumerate(sorted(set(inv)))}
        cls = [ranking[inv[v]] for v in range(n)]
        pos_class = sorted(cls)  # class of each canonical position

        adj = self._adj
        assigned: list[int] = [-1] * n  # canonical position -> vertex
        used = [False] * n
        rows: list[tuple[int, ...]] = []
        best_rows: list[tuple[int, ...]] | None = None
        best_perm: list[int] | None = None

        def dfs(p: int, tight: bool) -> None:
            # ``tight``: the current row prefix equals the best's prefix,
            # so per-position pruning against ``best_rows`` is sound
            nonlocal best_rows, best_perm
            if p == n:
                if best_rows is None or rows < best_rows:
                    best_rows = rows.copy()
                    best_perm = assigned.copy()
                return
            want = pos_class[p]
            for v in range(n):
                if used[v] or cls[v] != want:
                    continue
                row = tuple(1 if assigned[j] in adj[v] else 0
                            for j in range(p))
                still_tight = tight
                if best_rows is not None and tight:
                    if row < best_rows[p]:
                        still_tight = False
                    elif row > best_rows[p]:
                        continue  # prefix already worse than best: prune
                assigned[p] = v
                used[v] = True
                rows.append(row)
                dfs(p + 1, still_tight)
                rows.pop()
                used[v] = False
                assigned[p] = -1

        dfs(0, True)
        assert best_perm is not None
        mapping = [0] * n
        for position, v in enumerate(best_perm):
            mapping[v] = position
        self._canon = tuple(mapping)
        return self._canon

    def canonical_form(self) -> "tuple[QueryGraph, tuple[int, ...]]":
        """The canonical relabelling of this pattern.

        Returns ``(canon, mapping)`` where ``canon`` is an isomorphic
        :class:`QueryGraph` in canonical vertex order and
        ``mapping[v]`` is the canonical position of this pattern's vertex
        ``v``.  Two patterns are isomorphic **iff** their canonical forms
        are equal, which is what lets the serving layer's plan cache key
        physical plans by pattern *shape* rather than vertex numbering.
        """
        mapping = self._canonical_mapping()
        canon = self.relabel(dict(enumerate(mapping)),
                             name=f"{self.name}#canon")
        return canon, mapping

    def canonical_key(self) -> str:
        """Order-independent canonical cache key for this pattern.

        Isomorphic patterns (same shape and labels, any vertex numbering)
        share a key; non-isomorphic patterns do not.  The key is a compact
        string so it can appear verbatim in JSON artifacts and metrics.
        """
        canon, _ = self.canonical_form()
        labels = ",".join("*" if lab is None else str(lab)
                          for lab in canon.labels)
        edges = ";".join(f"{u}-{v}" for u, v in sorted(canon.edges))
        return f"{canon.num_vertices}v[{labels}]{edges}"

    # -- transformation ------------------------------------------------------

    def relabel(self, mapping: dict[int, int],
                name: str | None = None) -> "QueryGraph":
        """Return a copy with vertices renamed through ``mapping``."""
        n = max(mapping.values()) + 1 if mapping else 0
        labels: list[int | None] = [None] * n
        for v, target in mapping.items():
            labels[target] = self._labels[v]
        return QueryGraph(
            n, [(mapping[u], mapping[v]) for u, v in self._edges],
            name=name, labels=labels)

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryGraph):
            return NotImplemented
        return (self._n == other._n and self._edges == other._edges
                and self._labels == other._labels)

    def __hash__(self) -> int:
        return hash((self._n, self._edges, self._labels))

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryGraph({self.name}: |V|={self._n}, E={sorted(self._edges)})"


def _q(name: str, n: int, edges: list[tuple[int, int]]) -> QueryGraph:
    return QueryGraph(n, edges, name=name)


#: The benchmark query set (paper Figure 4, reconstructed — see module doc).
QUERIES: dict[str, QueryGraph] = {
    "triangle": _q("triangle", 3, [(0, 1), (1, 2), (0, 2)]),
    "q1": _q("q1-square", 4, [(0, 1), (1, 2), (2, 3), (3, 0)]),
    "q2": _q("q2-diamond", 4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
    "q3": _q("q3-4clique", 4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
    "q4": _q("q4-house", 5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)]),
    "q5": _q("q5-double-square", 6,
             [(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 3)]),
    "q6": _q("q6-5path", 5, [(0, 1), (1, 2), (2, 3), (3, 4)]),
    "q7": _q("q7-5cycle", 5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
    "q8": _q("q8-6cycle", 6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
}


def get_query(name: str) -> QueryGraph:
    """Look up a benchmark query by name (``q1`` .. ``q8``, ``triangle``)."""
    try:
        return QUERIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown query {name!r}; choose from {sorted(QUERIES)}") from None
