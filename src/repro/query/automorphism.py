"""Automorphism enumeration for small query graphs.

An automorphism is an isomorphism from a graph to itself (paper §2).  The
automorphism group ``Aut(q)`` drives symmetry breaking: a subgraph instance
has exactly ``|Aut(q)|`` ordered matches, and the symmetry-breaking partial
order (see :mod:`repro.query.symmetry`) keeps exactly one of them.

Queries have ≤ ~8 vertices so a plain backtracking search with degree
pruning is ample.
"""

from __future__ import annotations

from .pattern import QueryGraph

__all__ = ["automorphisms", "automorphism_count", "orbits"]


def automorphisms(q: QueryGraph) -> list[tuple[int, ...]]:
    """Enumerate all automorphisms of ``q``.

    Each automorphism is returned as a tuple ``perm`` with
    ``perm[v] = image of v``.  The identity is always included.
    """
    n = q.num_vertices
    degrees = [q.degree(v) for v in range(n)]
    result: list[tuple[int, ...]] = []
    image: list[int] = [-1] * n
    used = [False] * n

    def backtrack(v: int) -> None:
        if v == n:
            result.append(tuple(image))
            return
        for cand in range(n):
            if used[cand] or degrees[cand] != degrees[v]:
                continue
            if q.label(cand) != q.label(v):
                continue
            ok = True
            for w in range(v):
                if q.has_edge(v, w) != q.has_edge(cand, image[w]):
                    ok = False
                    break
            if ok:
                image[v] = cand
                used[cand] = True
                backtrack(v + 1)
                used[cand] = False
                image[v] = -1

    backtrack(0)
    return result


def automorphism_count(q: QueryGraph) -> int:
    """``|Aut(q)|``."""
    return len(automorphisms(q))


def orbits(q: QueryGraph,
           group: list[tuple[int, ...]] | None = None) -> list[frozenset[int]]:
    """Vertex orbits under the automorphism group (or a subgroup).

    Two vertices are in the same orbit when some automorphism maps one to
    the other.  Orbits are returned sorted by their smallest member.
    """
    if group is None:
        group = automorphisms(q)
    n = q.num_vertices
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for perm in group:
        for v in range(n):
            a, b = find(v), find(perm[v])
            if a != b:
                parent[max(a, b)] = min(a, b)
    groups: dict[int, set[int]] = {}
    for v in range(n):
        groups.setdefault(find(v), set()).add(v)
    return sorted((frozenset(s) for s in groups.values()), key=min)
