"""Symmetry breaking via partial orders (Grochow & Kellis [28]).

Without symmetry breaking, every subgraph instance is reported once per
automorphism of the query.  The classic fix — used by the paper and all of
its baselines — imposes a partial order on query vertices: a match ``f`` is
kept only if ``ID(f(u)) < ID(f(v))`` for every ordered condition ``u < v``.
The conditions are chosen so that, for each subgraph instance, *exactly
one* of its ``|Aut(q)|`` ordered matches survives.

Algorithm (Grochow–Kellis): repeatedly take the current automorphism group
``A``; while ``A`` is non-trivial, pick a vertex ``v`` in a largest
non-singleton orbit, emit conditions ``v < u`` for every other ``u`` in
``v``'s orbit, and replace ``A`` by the stabiliser of ``v``.
"""

from __future__ import annotations

from .automorphism import automorphisms, orbits
from .pattern import QueryGraph

__all__ = ["symmetry_break", "satisfies_order", "PartialOrder"]

#: A set of conditions ``(u, v)`` each meaning ``f(u) < f(v)``.
PartialOrder = frozenset[tuple[int, int]]


def symmetry_break(q: QueryGraph) -> PartialOrder:
    """Compute a symmetry-breaking partial order for ``q``.

    Returns conditions ``(u, v)`` meaning the data vertex matched to ``u``
    must have a smaller ID than the one matched to ``v``.  The empty set is
    returned for asymmetric queries.
    """
    conditions: set[tuple[int, int]] = set()
    group = automorphisms(q)
    while len(group) > 1:
        non_trivial = [o for o in orbits(q, group) if len(o) > 1]
        if not non_trivial:  # pragma: no cover - defensive; cannot happen
            break
        orbit = max(non_trivial, key=len)
        v = min(orbit)
        for u in sorted(orbit):
            if u != v:
                conditions.add((v, u))
        group = [perm for perm in group if perm[v] == v]
    return frozenset(conditions)


def satisfies_order(match: tuple[int, ...] | list[int],
                    conditions: PartialOrder) -> bool:
    """Whether an (ordered, complete) match satisfies every condition."""
    return all(match[u] < match[v] for u, v in conditions)
