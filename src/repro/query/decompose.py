"""Sub-query machinery for the optimiser.

Algorithm 1 of the paper searches over *connected subgraphs* ``q' ⊆ q`` and
all ways to split each ``q'`` into ``q'_l ∪ q'_r`` with disjoint edge sets.
A sub-query is identified here by the subset of query **edges** it uses
(its vertex set follows); partial results of a sub-query match exactly
those edges, so two sub-queries with the same vertex set but different edge
sets are distinct DP states.

Join units are **stars** (paper §3.3: "By default, we use stars as the join
unit, as our system does not assume any index data").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from .pattern import QueryGraph

__all__ = [
    "SubQuery",
    "full_subquery",
    "star_subqueries",
    "connected_subqueries",
    "splits",
    "is_complete_star_join",
    "complete_star_root",
    "join_unit_prefix_keys",
]

Edge = tuple[int, int]


def _norm(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class SubQuery:
    """A connected subgraph of the query, as a set of query edges."""

    edges: frozenset[Edge]

    @property
    def vertices(self) -> frozenset[int]:
        """Vertices covered by the sub-query's edges."""
        return frozenset(v for e in self.edges for v in e)

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def degree(self, v: int) -> int:
        """Degree of ``v`` within this sub-query."""
        return sum(1 for e in self.edges if v in e)

    def neighbours(self, v: int) -> frozenset[int]:
        """Neighbours of ``v`` within this sub-query."""
        return frozenset(a if b == v else b for a, b in self.edges if v in (a, b))

    def is_connected(self) -> bool:
        """Whether the sub-query's edges form one connected component."""
        verts = self.vertices
        if not verts:
            return True
        seen = {next(iter(verts))}
        frontier = list(seen)
        while frontier:
            u = frontier.pop()
            for v in self.neighbours(u):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return seen == verts

    def is_star(self) -> bool:
        """Whether this sub-query is a star (single edge counts as a 1-star)."""
        verts = self.vertices
        if len(self.edges) != len(verts) - 1 or not verts:
            return False
        root_candidates = [v for v in verts if self.degree(v) == len(verts) - 1]
        if not root_candidates:
            return False
        return all(self.degree(v) == 1 for v in verts if v not in root_candidates[:1]) \
            or len(verts) == 2

    def star_root(self) -> int:
        """The root of this star; for a single edge, the smaller endpoint."""
        if not self.is_star():
            raise ValueError(f"{self} is not a star")
        return max(self.vertices, key=lambda v: (self.degree(v), -v))

    def star_leaves(self) -> frozenset[int]:
        """Leaves of this star."""
        root = self.star_root()
        return self.vertices - {root}

    def union(self, other: "SubQuery") -> "SubQuery":
        """Edge-union of two sub-queries."""
        return SubQuery(self.edges | other.edges)

    def to_query_graph(self, name: str | None = None) -> tuple[QueryGraph, list[int]]:
        """Relabel to a dense :class:`QueryGraph`.

        Returns the pattern plus the ``schema``: original query-vertex IDs in
        the order they were assigned dense IDs (sorted ascending).
        """
        schema = sorted(self.vertices)
        pos = {v: i for i, v in enumerate(schema)}
        qg = QueryGraph(len(schema), [(pos[u], pos[v]) for u, v in self.edges],
                        name=name)
        return qg, schema

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SubQuery({sorted(self.edges)})"


def full_subquery(q: QueryGraph) -> SubQuery:
    """The sub-query consisting of every edge of ``q``."""
    return SubQuery(frozenset(q.edges))


def star_subqueries(q: QueryGraph) -> Iterator[SubQuery]:
    """All stars ``(v; L)`` with ``L ⊆ N_q(v)``, ``|L| ≥ 1``.

    These are the join units.  Single edges are emitted once (as the star
    rooted at the smaller endpoint).
    """
    seen: set[frozenset[Edge]] = set()
    for v in q.vertices():
        nbrs = sorted(q.neighbours(v))
        for size in range(1, len(nbrs) + 1):
            for leaves in combinations(nbrs, size):
                edges = frozenset(_norm(v, u) for u in leaves)
                if edges not in seen:
                    seen.add(edges)
                    yield SubQuery(edges)


def connected_subqueries(q: QueryGraph) -> Iterator[SubQuery]:
    """All connected edge-subsets of ``q``, in ascending edge count.

    Enumerated by growing connected sets one adjacent edge at a time, with
    canonical-parent dedup via a visited set (queries are tiny, ≤ ~10
    edges, so the 2^|E| worst case is fine).
    """
    all_edges = sorted(q.edges)
    seen: set[frozenset[Edge]] = set()
    frontier: list[frozenset[Edge]] = []
    for e in all_edges:
        s = frozenset([e])
        seen.add(s)
        frontier.append(s)
    by_size: dict[int, list[frozenset[Edge]]] = {1: list(frontier)}
    size = 1
    while by_size.get(size):
        nxt: list[frozenset[Edge]] = []
        for s in by_size[size]:
            verts = {v for e in s for v in e}
            for e in all_edges:
                if e in s:
                    continue
                if e[0] in verts or e[1] in verts:
                    s2 = s | {e}
                    if s2 not in seen:
                        seen.add(s2)
                        nxt.append(s2)
        if nxt:
            by_size[size + 1] = nxt
        size += 1
    for sz in sorted(by_size):
        for s in by_size[sz]:
            yield SubQuery(s)


def splits(sub: SubQuery) -> Iterator[tuple[SubQuery, SubQuery]]:
    """All ways to write ``sub = q'_l ∪ q'_r`` with disjoint edge sets and
    both sides connected (paper Algorithm 1 line 5).

    Each unordered split is yielded once, larger side first.
    """
    edges = sorted(sub.edges)
    m = len(edges)
    if m < 2:
        return
    # fix edges[0] on the left side to avoid yielding mirrored splits
    rest = edges[1:]
    for mask in range(1 << (m - 1)):
        left_edges = frozenset([edges[0]]) | frozenset(
            e for i, e in enumerate(rest) if mask >> i & 1)
        right_edges = sub.edges - left_edges
        if not right_edges:
            continue
        left, right = SubQuery(left_edges), SubQuery(right_edges)
        if not (left.is_connected() and right.is_connected()):
            continue
        if left.num_edges >= right.num_edges:
            yield left, right
        else:
            yield right, left


def _star_root_choices(star: SubQuery) -> list[int]:
    """Valid root choices for a star: both endpoints of a single edge,
    otherwise the unique centre."""
    verts = sorted(star.vertices)
    if len(verts) == 2:
        return verts
    return [star.star_root()]


def complete_star_root(left: SubQuery, right: SubQuery) -> int | None:
    """If ``(·, left, right)`` is a *complete star join* (Definition 3.1),
    return the star root to extend by; otherwise ``None``.

    ``right`` must be a star ``(v; L)`` with ``L ⊆ V(left)``.  For a single
    edge either endpoint may serve as the root; a root **not** already in
    ``left`` is preferred since it represents a genuinely new vertex.
    """
    if not right.is_star():
        return None
    valid = [r for r in _star_root_choices(right)
             if (right.vertices - {r}) <= left.vertices]
    if not valid:
        return None
    new_roots = [r for r in valid if r not in left.vertices]
    return (new_roots or valid)[0]


def is_complete_star_join(left: SubQuery, right: SubQuery) -> bool:
    """Definition 3.1: the join is a *complete star join* iff ``right`` is a
    star ``(v; L)`` with ``L ⊆ V(left)``."""
    return complete_star_root(left, right) is not None


def join_unit_prefix_keys(units: list[SubQuery]) -> list[str]:
    """Canonical keys of the cumulative join-unit prefixes of a plan.

    ``units`` is the ordered join-unit sequence of a decomposition (the
    first unit is the star scan; each further unit is PULL-EXTENDed onto
    the running partial result).  Element ``i`` of the returned list is
    the :meth:`QueryGraph.canonical_key` of ``units[0] ∪ … ∪ units[i]``
    — a shape-level identifier of the partial pattern matched after
    ``i + 1`` units.  Two plans whose prefix-key lists share a leading
    run match *isomorphic* partial patterns over that run, which is the
    necessary condition the sharing layer
    (:mod:`repro.serve.sharing`) uses to group concurrent requests; the
    sufficient condition (identical operator specs, so the engine would
    compute literally the same batches) is checked on the translated
    segment's spec tuples.
    """
    keys: list[str] = []
    acc: SubQuery | None = None
    for unit in units:
        acc = unit if acc is None else acc.union(unit)
        qg, _schema = acc.to_query_graph()
        keys.append(qg.canonical_key())
    return keys
