"""Memoised canonical-key lookup for small subgraphs (the census memo).

The WL-refinement + branch-and-bound canonicaliser behind
:meth:`~repro.query.pattern.QueryGraph.canonical_key` is a complete
isomorphism invariant, but it is the expensive step of any repeated
enumeration workload: a size-k motif census classifies *every* connected
k-subgraph of the data graph, and the same handful of isomorphism classes
recur millions of times.  :class:`CanonicalMemo` is the memoesu trick
adapted to that workload: a table from a subgraph's local adjacency
encoding (bit-rows, see
:func:`~repro.core.kernels.induced_bitrows`) to its canonical key.

The table is **closed under relabelling**: on a miss, the canonicaliser
runs once and the key is then inserted for *every* permutation of the
encoding (``n! ≤ 120`` rows for the census sizes ``n ≤ 5``).  Any later
encoding of the same isomorphism class — however its vertices happen to
be ordered by the enumerator — is therefore a plain dict hit, which is
what makes the memo's guarantee exact rather than heuristic: the
canonicaliser is invoked **at most once per isomorphism class**, and
``canonical_calls == number of distinct classes seen``.  The hit/miss
counters are part of the public surface; the conformance census oracles
and the benchmark smoke gate assert on them.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

from .pattern import QueryGraph

__all__ = ["CanonicalMemo", "MAX_MEMO_VERTICES", "permute_bitrows"]

#: closing a class under relabelling costs ``n!`` insertions, so the memo
#: is capped at census-sized subgraphs
MAX_MEMO_VERTICES = 8


def permute_bitrows(rows: Sequence[int],
                    perm: Sequence[int]) -> tuple[int, ...]:
    """Relabel adjacency bit-rows through ``perm`` (``perm[i]`` = new
    position of local vertex ``i``)."""
    n = len(rows)
    out = [0] * n
    for i in range(n):
        row = rows[i]
        new_row = 0
        for j in range(n):
            if (row >> j) & 1:
                new_row |= 1 << perm[j]
        out[perm[i]] = new_row
    return tuple(out)


class CanonicalMemo:
    """Encoding → canonical-key cache, closed under relabelling.

    ``hits`` counts lookups answered from the table; ``canonical_calls``
    counts invocations of the underlying WL+BnB canonicaliser — by
    construction exactly one per isomorphism class ever seen, so
    ``canonical_calls == len(classes())`` always holds.
    """

    def __init__(self) -> None:
        self._table: dict[tuple[int, tuple[int, ...]], str] = {}
        self.hits = 0
        self.canonical_calls = 0

    def __len__(self) -> int:
        return len(self._table)

    # -- lookup ----------------------------------------------------------------

    def key_for(self, n: int, rows: tuple[int, ...]) -> str:
        """Canonical key of the ``n``-vertex subgraph encoded by ``rows``.

        ``rows`` are local adjacency bit-rows (row ``i`` bit ``j`` set iff
        local vertices ``i`` and ``j`` are adjacent).  A hit is one dict
        probe; a miss canonicalises once and inserts all ``n!``
        relabellings of the encoding.
        """
        if n > MAX_MEMO_VERTICES:
            raise ValueError(
                f"CanonicalMemo closes classes under relabelling (n! rows); "
                f"n={n} exceeds the supported {MAX_MEMO_VERTICES}")
        key = self._table.get((n, rows))
        if key is not None:
            self.hits += 1
            return key
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)
                 if (rows[i] >> j) & 1]
        self.canonical_calls += 1
        key = QueryGraph(n, edges).canonical_key()
        for perm in permutations(range(n)):
            self._table.setdefault((n, permute_bitrows(rows, perm)), key)
        return key

    def key_of(self, pattern: QueryGraph) -> str:
        """Canonical key of an (unlabelled) pattern, through the memo."""
        if pattern.is_labelled:
            raise ValueError("CanonicalMemo caches unlabelled subgraph "
                             "classes; labelled patterns key the plan "
                             "cache directly via canonical_key()")
        n = pattern.num_vertices
        rows = [0] * n
        for u, v in pattern.edges:
            rows[u] |= 1 << v
            rows[v] |= 1 << u
        return self.key_for(n, tuple(rows))

    # -- introspection ---------------------------------------------------------

    def classes(self) -> set[str]:
        """The distinct canonical keys the memo has resolved."""
        return set(self._table.values())

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + canonicaliser calls)."""
        return self.hits + self.canonical_calls

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without the canonicaliser."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict[str, float | int]:
        """JSON-ready counters (the benchmark/oracle surface)."""
        return {
            "hits": self.hits,
            "canonical_calls": self.canonical_calls,
            "classes": len(self.classes()),
            "hit_rate": self.hit_rate,
        }
