"""Cardinality estimation ``|R(q')|`` for the optimiser.

Algorithm 1 charges each sub-query its result cardinality, "estimated using
the method such as [46, 51, 58]" (paper §3.3, line 4).  Three estimators
are provided behind a common protocol:

* :class:`RandomGraphEstimator` — closed-form Erdős–Rényi expectation;
  cheap, ignores degree skew.
* :class:`SamplingEstimator` — sequential importance sampling
  (Horvitz–Thompson over random extension paths); accurate on skewed
  graphs, the default.
* :class:`ExactEstimator` — full enumeration via the reference engine;
  for tests and tiny graphs only.

All estimators count *ordered* embeddings divided by ``|Aut(q')|``, i.e.
the number of matches after symmetry breaking — the quantity the engine
actually materialises.  Stars are special-cased exactly from the degree
array (the number of ``(v; L)`` instances with ``|L| = k`` is
``Σ_v C(d_v, k)``).
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from ..graph.graph import Graph
from .automorphism import automorphism_count
from .pattern import QueryGraph

__all__ = [
    "CardinalityEstimator",
    "RandomGraphEstimator",
    "SamplingEstimator",
    "ExactEstimator",
    "star_count",
]


def star_count(graph: Graph, num_leaves: int) -> float:
    """Exact number of ``k``-star instances: ``Σ_v C(d_v, k)``."""
    if num_leaves < 1:
        raise ValueError("a star has at least one leaf")
    degs = graph.degrees().astype(np.float64)
    prod = np.ones_like(degs)
    for i in range(num_leaves):
        prod = prod * np.maximum(degs - i, 0.0)
    return float(prod.sum()) / math.factorial(num_leaves)


class CardinalityEstimator(Protocol):
    """Estimate the number of symmetry-broken matches of a pattern."""

    def estimate(self, pattern: QueryGraph) -> float:
        """Return an estimate of ``|R(pattern)|`` on this estimator's graph."""
        ...


class _CachedEstimator:
    """Shared per-pattern memoisation for the concrete estimators."""

    def __init__(self, graph: Graph):
        self._graph = graph
        self._cache: dict[QueryGraph, float] = {}

    @property
    def graph(self) -> Graph:
        return self._graph

    def estimate(self, pattern: QueryGraph) -> float:
        cached = self._cache.get(pattern)
        if cached is None:
            if pattern.is_star():
                leaves = pattern.num_vertices - 1
                cached = max(star_count(self._graph, leaves), 1.0)
            else:
                cached = max(self._estimate(pattern), 1.0)
            self._cache[pattern] = cached
        return cached

    def _estimate(self, pattern: QueryGraph) -> float:  # pragma: no cover
        raise NotImplementedError


class RandomGraphEstimator(_CachedEstimator):
    """Erdős–Rényi expectation: ``n^(v) · p^e / |Aut|`` with
    ``p = 2|E| / (n(n-1))`` and ``n^(v)`` the falling factorial."""

    def _estimate(self, pattern: QueryGraph) -> float:
        n = self.graph.num_vertices
        if n < pattern.num_vertices:
            return 0.0
        if n < 2:
            return 0.0
        p = 2.0 * self.graph.num_edges / (n * (n - 1))
        ordered = 1.0
        for i in range(pattern.num_vertices):
            ordered *= n - i
        ordered *= p ** pattern.num_edges
        return ordered / automorphism_count(pattern)


class SamplingEstimator(_CachedEstimator):
    """Sequential importance sampling.

    Each trial extends a random partial embedding one pattern vertex at a
    time along a connected order; the product of candidate-set sizes at
    each step is an unbiased estimate of the ordered-embedding count.
    """

    def __init__(self, graph: Graph, trials: int = 400, seed: int = 11):
        super().__init__(graph)
        if trials < 1:
            raise ValueError("need at least one trial")
        self._trials = trials
        self._seed = seed

    def _extension_order(self, pattern: QueryGraph) -> list[int]:
        """A connected vertex order starting from a max-degree vertex."""
        order = [max(pattern.vertices(), key=pattern.degree)]
        seen = set(order)
        while len(order) < pattern.num_vertices:
            nxt = max(
                (v for v in pattern.vertices() if v not in seen
                 and pattern.neighbours(v) & seen),
                key=lambda v: len(pattern.neighbours(v) & seen),
            )
            order.append(nxt)
            seen.add(nxt)
        return order

    def _estimate(self, pattern: QueryGraph) -> float:
        g = self.graph
        if g.num_vertices == 0:
            return 0.0
        rng = np.random.default_rng(self._seed)
        order = self._extension_order(pattern)
        back = [
            [order.index(u) for u in pattern.neighbours(v) if u in order[:i]]
            for i, v in enumerate(order)
        ]
        total = 0.0
        n = g.num_vertices
        for _ in range(self._trials):
            weight = float(n)
            match = [int(rng.integers(n))]
            alive = True
            for i in range(1, len(order)):
                cand = None
                for j in back[i]:
                    nbrs = g.neighbours(match[j])
                    if cand is None:
                        cand = nbrs
                    elif len(cand) and len(nbrs):
                        # sorted-unique intersection by binary search —
                        # same result as np.intersect1d(assume_unique=True)
                        # without its concatenate-and-sort overhead
                        pos = np.searchsorted(nbrs, cand)
                        pos[pos == len(nbrs)] = 0
                        cand = cand[nbrs[pos] == cand]
                    else:
                        cand = cand[:0]
                assert cand is not None  # pattern is connected
                used = np.asarray(match, dtype=np.int64)
                cand = cand[~(cand[:, None] == used).any(axis=1)]
                if len(cand) == 0:
                    alive = False
                    break
                weight *= len(cand)
                match.append(int(cand[rng.integers(len(cand))]))
            if alive:
                total += weight
        ordered = total / self._trials
        return ordered / automorphism_count(pattern)


class ExactEstimator(_CachedEstimator):
    """Exact count via brute-force enumeration (tests / tiny graphs)."""

    def _estimate(self, pattern: QueryGraph) -> float:
        # imported lazily to avoid a package cycle
        from ..baselines.reference import count_ordered_embeddings

        ordered = count_ordered_embeddings(self.graph, pattern)
        return ordered / automorphism_count(pattern)
