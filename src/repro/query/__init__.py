"""Query substrate: patterns, automorphisms, symmetry breaking, estimation."""

from .pattern import QueryGraph, QUERIES, get_query
from .automorphism import automorphisms, automorphism_count, orbits
from .canonical import CanonicalMemo, permute_bitrows
from .symmetry import PartialOrder, satisfies_order, symmetry_break
from .decompose import (
    SubQuery,
    complete_star_root,
    connected_subqueries,
    full_subquery,
    is_complete_star_join,
    splits,
    star_subqueries,
)
from .estimate import (
    CardinalityEstimator,
    ExactEstimator,
    RandomGraphEstimator,
    SamplingEstimator,
    star_count,
)

__all__ = [
    "QueryGraph",
    "QUERIES",
    "get_query",
    "automorphisms",
    "automorphism_count",
    "orbits",
    "CanonicalMemo",
    "permute_bitrows",
    "PartialOrder",
    "satisfies_order",
    "symmetry_break",
    "SubQuery",
    "complete_star_root",
    "connected_subqueries",
    "full_subquery",
    "is_complete_star_join",
    "splits",
    "star_subqueries",
    "CardinalityEstimator",
    "ExactEstimator",
    "RandomGraphEstimator",
    "SamplingEstimator",
    "star_count",
]
