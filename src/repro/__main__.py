"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``query``
    Enumerate a pattern on a named dataset (or an edge-list file)::

        python -m repro query --data LJ --pattern q1 --machines 10
        python -m repro query --data graph.txt --cypher \\
            "MATCH (a)--(b)--(c), (c)--(a) RETURN count(*)"

``plan``
    Show the Algorithm-1 execution plan for a pattern on a dataset.

``explain``
    Show the plan, or — with ``--analyze`` — run it under tracing and
    annotate every plan node with actual tuples/time/bytes/hit-rate next
    to the optimiser's estimates::

        python -m repro explain --data GO --pattern q1 --analyze

``datasets``
    List the built-in stand-in datasets (Table 3).

``motifs``
    Count every k-vertex motif on a dataset (engine-based, non-induced
    embeddings).

``census``
    Size-k motif census: ESU-enumerate *all* connected k-subgraphs over
    bitset adjacency and count them per isomorphism class through the
    memoised canonicaliser::

        python -m repro census --data GO --k 4 --trace census.json

``conformance``
    Differential conformance harness (delegates to
    ``python -m repro.conformance``)::

        python -m repro conformance run --cases 100 --seed 1
        python -m repro conformance replay artifact.json

``serve``
    Start the concurrent query service and drive a seeded mixed-priority
    workload through it (admission control, plan caching, worker-pool
    execution, optional injected crashes), then print the service
    metrics; ``--verify`` re-checks every query against a solo run::

        python -m repro serve --data GO --queries 32 --service-workers 4 \\
            --crash 2 --verify --trace serve.json

    ``--metrics FILE`` attaches a labelled metrics registry and writes
    its Prometheus text exposition; ``--flight FILE`` dumps the
    per-query flight recorder as JSONL; ``--smoke`` caps the workload
    for CI and forces ``--verify``.

``metrics``
    Run an instrumented demo query and dump the metrics exposition (or
    JSON snapshot), or validate an exposition file::

        python -m repro metrics --data GO --pattern q1
        python -m repro metrics --check metrics.prom
"""

from __future__ import annotations

import argparse
import sys
import time

from .cluster.cluster import Cluster
from .core.engine import EngineConfig, HugeEngine
from .graph.datasets import DATASETS, load_dataset
from .graph.io import load_edge_list
from .query.pattern import QUERIES, get_query


def _load_graph(spec: str, scale: float):
    if spec.upper() in DATASETS:
        return load_dataset(spec, scale=scale)
    return load_edge_list(spec)


def _write_exposition(registry, dest: str) -> None:
    """Write Prometheus text exposition to a file (or stdout for ``-``)."""
    text = registry.expose()
    if dest == "-":
        sys.stdout.write(text)
    else:
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write(text)
        # stderr so that --json stdout stays machine-parseable
        print(f"metrics exposition written to {dest} "
              f"({len(registry.families())} families)", file=sys.stderr)


def _cmd_query(args: argparse.Namespace) -> int:
    if args.cypher and (args.trace or args.json
                        or getattr(args, "metrics", None)):
        print("error: --trace/--json/--metrics are not supported with "
              "--cypher", file=sys.stderr)
        return 2
    graph = _load_graph(args.data, args.scale)
    cluster = Cluster(graph, num_machines=args.machines,
                      workers_per_machine=args.workers, seed=args.seed)
    if not args.json:
        print(f"data graph: {graph}")
    if args.cypher:
        from .apps.cypher import execute_cypher

        result = execute_cypher(cluster, args.cypher)
        print(f"matches: {result.count}")
        if result.rows is not None:
            for row in result.rows[: args.limit]:
                print("  " + ", ".join(
                    f"{c}={v}" for c, v in zip(result.columns, row)))
        report = result.report
    else:
        engine = HugeEngine(cluster,
                            EngineConfig(collect_results=args.show > 0))
        tracer = None
        registry = None
        if args.trace:
            from .obs.trace import Tracer

            tracer = Tracer()
        if getattr(args, "metrics", None):
            from .obs import MetricsRegistry, MetricsTracer

            registry = MetricsRegistry()
            tracer = MetricsTracer(registry, inner=tracer)
        res = engine.run(get_query(args.pattern), tracer=tracer)
        if registry is not None:
            from .obs import record_result

            record_result(registry, res)
        if args.trace:
            res.trace.save(args.trace)
        if args.json:
            import json

            print(json.dumps(res.as_dict(), indent=2))
            if registry is not None:
                _write_exposition(registry, args.metrics)
            return 0
        print(f"matches: {res.count}")
        if args.show:
            for match in (res.matches or [])[: args.show]:
                print(f"  {match}")
        if args.trace:
            cov = res.trace.coverage(res.report.total_time_s,
                                     res.report.per_machine_time_s)
            print(f"trace: {len(res.trace.spans)} spans -> {args.trace} "
                  f"(covering {cov:.1%} of total time; load in "
                  f"https://ui.perfetto.dev)")
        report = res.report
    print(f"simulated time: {report.total_time_s:.4f}s "
          f"(compute {report.compute_time_s:.4f}s, "
          f"comm {report.comm_time_s:.4f}s)")
    print(f"transferred: {report.bytes_transferred / 1e6:.2f} MB; "
          f"peak machine memory: {report.peak_memory_bytes / 1e6:.2f} MB")
    if not args.cypher and getattr(args, "metrics", None):
        _write_exposition(registry, args.metrics)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    graph = _load_graph(args.data, args.scale)
    cluster = Cluster(graph, num_machines=args.machines,
                      workers_per_machine=args.workers, seed=args.seed)
    engine = HugeEngine(cluster)
    query = get_query(args.pattern)
    if not args.analyze:
        print(engine.plan(query).describe())
        return 0
    from .obs.analyze import analyze

    report = analyze(engine, query)
    print(report.render())
    if args.trace:
        report.result.trace.save(args.trace)
        print(f"trace written to {args.trace}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    graph = _load_graph(args.data, args.scale)
    cluster = Cluster(graph, num_machines=args.machines, seed=args.seed)
    engine = HugeEngine(cluster)
    plan = engine.plan(get_query(args.pattern))
    print(plan.describe())
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    print(f"{'name':5s} {'family':7s} {'paper |V|':>13s} {'paper |E|':>15s} "
          f"{'stand-in |V|':>13s} {'stand-in |E|':>13s}")
    for spec in DATASETS.values():
        g = spec.load()
        print(f"{spec.name:5s} {spec.family:7s} {spec.paper_vertices:>13,} "
              f"{spec.paper_edges:>15,} {g.num_vertices:>13,} "
              f"{g.num_edges:>13,}")
    return 0


def _cmd_motifs(args: argparse.Namespace) -> int:
    from .apps.mining import motif_counts

    graph = _load_graph(args.data, args.scale)
    cluster = Cluster(graph, num_machines=args.machines, seed=args.seed)
    for name, count in sorted(motif_counts(cluster, args.k).items()):
        print(f"{name:14s} {count:>14,}")
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from .apps.mining import motif_census

    graph = _load_graph(args.data, args.scale)
    cluster = Cluster(graph, num_machines=args.machines,
                      workers_per_machine=args.workers, seed=args.seed)
    tracer = None
    registry = None
    if args.trace:
        from .obs.trace import Tracer

        tracer = Tracer()
    if args.metrics:
        from .obs import MetricsRegistry, MetricsTracer

        registry = MetricsRegistry()
        tracer = MetricsTracer(registry, inner=tracer)
    res = motif_census(cluster, args.k, tracer=tracer)
    if registry is not None:
        from .obs import record_census

        record_census(registry, res)
    if args.trace:
        tracer.trace.save(args.trace)
    if args.json:
        import json

        print(json.dumps(res.as_dict(), indent=2))
        if registry is not None:
            _write_exposition(registry, args.metrics)
        return 0
    print(f"data graph: {graph}")
    print(f"size-{args.k} census: {res.total_subgraphs:,} connected "
          f"subgraphs in {len(res.counts)} classes")
    for name in sorted(res.counts):
        print(f"{name:14s} {res.counts[name]:>14,}   "
              f"key={res.class_keys[name]}")
    print(f"canonical memo: {res.canonical_calls} canonicaliser calls, "
          f"{res.memo_hits:,} hits (hit rate {res.memo_hit_rate:.2%})")
    report = res.report
    print(f"simulated time: {report.total_time_s:.4f}s "
          f"(compute {report.compute_time_s:.4f}s, "
          f"comm {report.comm_time_s:.4f}s); "
          f"transferred: {report.bytes_transferred / 1e6:.2f} MB")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(load in https://ui.perfetto.dev)")
    if registry is not None:
        _write_exposition(registry, args.metrics)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import LoadDriver, WorkloadSpec

    if args.smoke:
        # reduced workload for CI: few queries, small pool, verification on
        args.queries = min(args.queries, 8)
        args.service_workers = min(args.service_workers, 2)
        args.verify = True
    graph = _load_graph(args.data, args.scale)
    spec = WorkloadSpec(
        num_queries=args.queries, dataset=args.data.upper(),
        patterns=tuple(args.patterns.split(",")),
        num_machines=args.machines, workers_per_machine=args.workers,
        seed=args.seed, relabel_fraction=args.relabel_fraction,
        deadline_fraction=args.deadline_fraction, deadline_s=args.deadline,
        tenants=tuple(args.tenants.split(",")), crashes=args.crash,
        zipf_s=args.zipf)
    registry = None
    flight = None
    if args.metrics:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    if args.metrics or args.flight:
        from .obs import FlightRecorder

        flight = FlightRecorder()
    driver = LoadDriver(
        graph, spec, num_workers=args.service_workers,
        memory_budget_bytes=(args.budget_mb * 1e6 if args.budget_mb
                             else float("inf")),
        tenant_max_inflight=args.tenant_cap, trace=bool(args.trace),
        metrics=registry, flight=flight, sharing=args.share,
        result_cache_bytes=args.result_cache_mb * 1e6, pool=args.pool)
    report = driver.run(verify=args.verify)
    if args.trace and driver.service and driver.service.tracer:
        driver.service.tracer.save(
            args.trace, meta={"workload": f"{spec.num_queries}q "
                              f"seed={spec.seed} {spec.dataset}"})
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
        if args.flight and flight is not None:
            flight.dump(args.flight)
        if registry is not None:
            _write_exposition(registry, args.metrics)
        return 0 if (not args.verify or report.verified) else 1

    svc = report.service
    print(f"data graph: {graph}")
    print(f"workload: {spec.num_queries} queries on {args.service_workers} "
          f"{args.pool} service workers, seed {spec.seed}")
    by = ", ".join(f"{k}={v}" for k, v in sorted(
        report.counts_by_status.items()))
    print(f"outcomes: {by}")
    print(f"wall time: {report.wall_s:.3f}s  "
          f"({svc['throughput_qps']:.1f} completed q/s)")
    lat = svc["latency"]
    print(f"latency: p50 {lat['p50_s'] * 1e3:.1f}ms  "
          f"p95 {lat['p95_s'] * 1e3:.1f}ms  p99 {lat['p99_s'] * 1e3:.1f}ms")
    pc = svc["plan_cache"]
    print(f"plan cache: {pc['hits']} hits / {pc['misses']} misses "
          f"(hit rate {pc['hit_rate']:.1%})")
    if args.share or args.result_cache_mb:
        rc = svc.get("result_cache") or {}
        print(f"sharing: {svc['shared_groups']} groups covering "
              f"{svc['shared_requests']} requests; result cache "
              f"{svc['result_cache_hits']} hits"
              + (f" (hit rate {rc['hit_rate']:.1%})" if rc else ""))
    print(f"admission: peak reserved "
          f"{svc['admission']['peak_reserved_bytes'] / 1e6:.2f} MB, "
          f"{svc['rejected']} rejected, ledger after drain "
          f"{svc['reserved_bytes']:.0f} B")
    if args.crash:
        print(f"faults: {svc['worker_crashes']} worker crashes, "
              f"{svc['retries']} retries, "
              f"{svc['delivery_violations']} delivery violations")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(load in https://ui.perfetto.dev)")
    if flight is not None:
        fs = flight.stats()
        print(f"flight recorder: {fs['retained']} flights retained "
              f"({fs['dropped']} dropped), {fs['slow_queries']} slow, "
              f"{fs['crash_dumps']} crash dumps")
        if args.flight:
            flight.dump(args.flight)
            print(f"flight log written to {args.flight}")
    if registry is not None:
        _write_exposition(registry, args.metrics)
    if args.verify:
        if report.verified:
            print("verify: all completed queries bit-identical to solo runs")
        else:
            print("verify: FAILED")
            for msg in report.verify_failures:
                print(f"  {msg}")
            return 1
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .graph import temporal_edge_stream
    from .serve import QueryRequest, QueryService, QueryStatus, \
        SubscribeRequest

    if args.smoke:
        # reduced stream for CI: few updates, small pool, verification on
        args.updates = min(args.updates, 20)
        args.service_workers = min(args.service_workers, 2)
        args.verify = True
    graph = _load_graph(args.data, args.scale)
    stream = temporal_edge_stream(
        graph, args.updates, batch_size=args.batch,
        delete_fraction=args.delete_fraction, seed=args.seed,
        skew=args.skew)
    dataset = args.data.upper()
    patterns = tuple(args.patterns.split(","))

    registry = None
    flight = None
    if args.metrics:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    if args.metrics or args.flight:
        from .obs import FlightRecorder

        flight = FlightRecorder()
    svc = QueryService(datasets={dataset: stream.base},
                       num_workers=args.service_workers,
                       trace=bool(args.trace), metrics=registry,
                       flight=flight).start()
    try:
        t0 = time.perf_counter()
        subs = [svc.subscribe(SubscribeRequest(pattern=p, dataset=dataset,
                                               bootstrap=True))
                for p in patterns]
        boots = {p: s.poll(timeout=60.0) for p, s in zip(patterns, subs)}
        reports = [svc.apply_updates(dataset, b.inserts, b.deletes)
                   for b in stream.batches]
        delivered = {p: s.drain() for p, s in zip(patterns, subs)}
        wall = time.perf_counter() - t0

        verified = True
        verify_rows = []
        if args.verify:
            # from-scratch check through an independent path: a batch
            # engine query against the final snapshot must agree with
            # every subscription's accumulated standing count
            for p, s in zip(patterns, subs):
                out = svc.submit(QueryRequest(pattern=p, dataset=dataset)
                                 ).result(timeout=300.0)
                ok = (out.status is QueryStatus.COMPLETED
                      and out.count == s.count
                      and s.delivery_violations == 0
                      and len(delivered[p]) == len(reports))
                verified &= ok
                verify_rows.append({"pattern": p, "incremental": s.count,
                                    "scratch": out.count, "ok": ok})
        for s in subs:
            svc.unsubscribe(s)
        stats = svc.stream_stats()
    finally:
        if args.trace and svc.tracer:
            svc.tracer.save(args.trace,
                            meta={"stream": f"{args.updates}u "
                                  f"seed={args.seed} {dataset}"})
        svc.stop()

    if args.json:
        import json

        payload = {
            "dataset": dataset,
            "base_edges": stream.base.num_edges,
            "final_edges": stream.final_graph().num_edges,
            "updates": stream.num_updates,
            "update_batches": len(stream.batches),
            "patterns": list(patterns),
            "wall_s": round(wall, 6),
            "bootstrap_counts": {p: (len(b.additions) if b else None)
                                 for p, b in boots.items()},
            "final_counts": {p: s.count for p, s in zip(patterns, subs)},
            "stream_stats": stats,
            "reports": [r.as_dict() for r in reports],
        }
        if args.verify:
            payload["verified"] = verified
            payload["verify"] = verify_rows
        print(json.dumps(payload, indent=2))
        if args.flight and flight is not None:
            flight.dump(args.flight)
        if registry is not None:
            _write_exposition(registry, args.metrics)
        return 0 if (not args.verify or verified) else 1

    print(f"data graph: {graph}")
    print(f"stream: {stream.num_updates} updates in {len(stream.batches)} "
          f"batches (base |E|={stream.base.num_edges}, "
          f"final |E|={stream.final_graph().num_edges}, seed {args.seed}"
          + (f", skew {args.skew:g}" if args.skew else "") + ")")
    for p, s in zip(patterns, subs):
        boot = boots[p]
        print(f"{p:10s} bootstrap {len(boot.additions) if boot else 0:>8,}"
              f"  final {s.count:>8,}  "
              f"(+{sum(len(b.additions) for b in delivered[p]):,} / "
              f"-{sum(len(b.retractions) for b in delivered[p]):,} over "
              f"{len(delivered[p])} batches)")
    lat = [b.latency_s for p in patterns for b in delivered[p]]
    if lat:
        lat.sort()
        print(f"delta latency: p50 {lat[len(lat) // 2] * 1e3:.2f}ms  "
              f"max {lat[-1] * 1e3:.2f}ms  over {len(lat)} deliveries")
    print(f"wall time: {wall:.3f}s  ({stats['stream_updates']} updates, "
          f"{stats['stream_additions']:,} additions, "
          f"{stats['stream_retractions']:,} retractions)")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(load in https://ui.perfetto.dev)")
    if args.flight and flight is not None:
        flight.dump(args.flight)
        print(f"flight log written to {args.flight}")
    if registry is not None:
        _write_exposition(registry, args.metrics)
    if args.verify:
        if verified:
            print("verify: incremental counts bit-identical to "
                  "from-scratch enumeration on the final graph")
        else:
            print("verify: FAILED")
            for row in verify_rows:
                if not row["ok"]:
                    print(f"  {row['pattern']}: incremental "
                          f"{row['incremental']} != scratch "
                          f"{row['scratch']}")
            return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import check_exposition

    if args.check:
        if args.check == "-":
            text = sys.stdin.read()
        else:
            with open(args.check, encoding="utf-8") as fh:
                text = fh.read()
        errors = check_exposition(text)
        if errors:
            print(f"exposition INVALID ({len(errors)} errors):")
            for err in errors:
                print(f"  {err}")
            return 1
        samples = sum(1 for line in text.splitlines()
                      if line and not line.startswith("#"))
        families = sum(1 for line in text.splitlines()
                       if line.startswith("# TYPE "))
        print(f"exposition ok: {families} families, {samples} samples")
        return 0

    from .obs import MetricsRegistry, MetricsTracer, record_result

    graph = _load_graph(args.data, args.scale)
    cluster = Cluster(graph, num_machines=args.machines,
                      workers_per_machine=args.workers, seed=args.seed)
    engine = HugeEngine(cluster)
    registry = MetricsRegistry()
    res = engine.run(get_query(args.pattern),
                     tracer=MetricsTracer(registry))
    record_result(registry, res)
    errors = check_exposition(registry.expose())
    if errors:
        print("internal error: exposition failed self-check",
              file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(registry.snapshot(), indent=2))
    else:
        _write_exposition(registry, args.out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HUGE subgraph enumeration (SIGMOD 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--data", required=True,
                       help="dataset name (GO/LJ/OR/UK/EU/FS/CW) or an "
                            "edge-list file")
        p.add_argument("--machines", type=int, default=4)
        p.add_argument("--workers", type=int, default=4)
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--seed", type=int, default=0)

    q = sub.add_parser("query", help="enumerate a pattern")
    common(q)
    q.add_argument("--pattern", default="triangle",
                   choices=sorted(QUERIES),
                   help="benchmark pattern name")
    q.add_argument("--cypher", help="Cypher MATCH … RETURN … query "
                                    "(overrides --pattern)")
    q.add_argument("--show", type=int, default=0,
                   help="print the first N matches")
    q.add_argument("--limit", type=int, default=10,
                   help="max rows to print for Cypher projections")
    q.add_argument("--trace", metavar="FILE",
                   help="record a span trace and write Chrome trace_event "
                        "JSON (open in Perfetto) to FILE")
    q.add_argument("--json", action="store_true",
                   help="print the result as JSON instead of text")
    q.add_argument("--metrics", metavar="FILE",
                   help="aggregate engine metrics into a registry and write "
                        "the Prometheus text exposition to FILE ('-' for "
                        "stdout)")
    q.set_defaults(func=_cmd_query)

    p = sub.add_parser("plan", help="show the Algorithm-1 plan")
    common(p)
    p.add_argument("--pattern", default="q1", choices=sorted(QUERIES))
    p.set_defaults(func=_cmd_plan)

    e = sub.add_parser("explain",
                       help="show the plan; with --analyze, run it traced "
                            "and annotate nodes with actuals")
    common(e)
    e.add_argument("--pattern", default="q1", choices=sorted(QUERIES))
    e.add_argument("--analyze", action="store_true",
                   help="execute the plan and report per-node actuals "
                        "next to the optimiser's estimates")
    e.add_argument("--trace", metavar="FILE",
                   help="with --analyze, also write the Chrome trace")
    e.set_defaults(func=_cmd_explain)

    d = sub.add_parser("datasets", help="list stand-in datasets")
    d.set_defaults(func=_cmd_datasets)

    m = sub.add_parser("motifs", help="count k-vertex motifs")
    common(m)
    m.add_argument("--k", type=int, default=3, choices=(2, 3, 4, 5))
    m.set_defaults(func=_cmd_motifs)

    n = sub.add_parser("census",
                       help="ESU size-k motif census (all connected "
                            "k-subgraphs per isomorphism class)")
    common(n)
    n.add_argument("--k", type=int, default=3, choices=(2, 3, 4, 5),
                   help="census subgraph size")
    n.add_argument("--trace", metavar="FILE",
                   help="record a span trace and write Chrome trace_event "
                        "JSON (open in Perfetto) to FILE")
    n.add_argument("--json", action="store_true",
                   help="print the census result as JSON instead of text")
    n.add_argument("--metrics", metavar="FILE",
                   help="write census metrics as Prometheus text exposition "
                        "to FILE ('-' for stdout)")
    n.set_defaults(func=_cmd_census)

    s = sub.add_parser("serve",
                       help="run the concurrent query service under a "
                            "seeded workload")
    common(s)
    s.add_argument("--queries", type=int, default=32,
                   help="number of requests in the workload")
    s.add_argument("--patterns", default=",".join(
        ("triangle", "q1", "q2", "q3", "q4")),
                   help="comma-separated benchmark pattern names to cycle")
    s.add_argument("--pool", choices=("thread", "process"), default="thread",
                   help="worker backend: GIL-bound threads or true "
                        "multi-core processes over the shared-memory graph")
    s.add_argument("--service-workers", type=int, default=4,
                   help="worker threads in the service pool")
    s.add_argument("--budget-mb", type=float, default=None,
                   help="global admission memory budget in MB "
                        "(default: unlimited)")
    s.add_argument("--relabel-fraction", type=float, default=0.5,
                   help="fraction of requests submitted as isomorphic "
                        "relabellings (plan-cache exercise)")
    s.add_argument("--deadline-fraction", type=float, default=0.0,
                   help="fraction of requests carrying a deadline")
    s.add_argument("--deadline", type=float, default=5.0,
                   help="deadline in seconds for deadline-carrying requests")
    s.add_argument("--tenants", default="default",
                   help="comma-separated tenant names to cycle")
    s.add_argument("--tenant-cap", type=int, default=None,
                   help="max in-flight queries per tenant")
    s.add_argument("--crash", type=int, default=0,
                   help="inject N worker crashes (recovered by retry)")
    s.add_argument("--share", action="store_true",
                   help="enable cross-query work sharing (shared-prefix "
                        "batching of concurrently queued requests)")
    s.add_argument("--result-cache-mb", type=float, default=0.0,
                   help="result-cache capacity in MB (0 = disabled); bytes "
                        "are accounted through the admission ledger")
    s.add_argument("--zipf", type=float, default=0.0,
                   help="Zipf skew for pattern choice (0 = round-robin mix)")
    s.add_argument("--verify", action="store_true",
                   help="check each served query against a solo run")
    s.add_argument("--trace", metavar="FILE",
                   help="write a wall-clock Chrome trace of the service run")
    s.add_argument("--json", action="store_true",
                   help="print the full driver report as JSON")
    s.add_argument("--metrics", metavar="FILE",
                   help="instrument the service with a metrics registry and "
                        "write the Prometheus exposition to FILE ('-' for "
                        "stdout)")
    s.add_argument("--flight", metavar="FILE",
                   help="dump the per-query flight recorder as JSONL to FILE")
    s.add_argument("--smoke", action="store_true",
                   help="CI smoke mode: cap the workload at 8 queries / 2 "
                        "workers and force --verify")
    s.set_defaults(func=_cmd_serve)

    st = sub.add_parser("stream",
                        help="replay a seeded temporal update stream "
                             "against the service with standing "
                             "subscriptions")
    common(st)
    st.add_argument("--updates", type=int, default=40,
                    help="number of edge updates in the temporal stream")
    st.add_argument("--batch", type=int, default=8,
                    help="updates applied per batch")
    st.add_argument("--delete-fraction", type=float, default=0.3,
                    help="fraction of updates that delete a present edge")
    st.add_argument("--skew", type=float, default=0.0,
                    help="degree-bias exponent of the held-out edges "
                         "(hub-heavy update stream when > 0)")
    st.add_argument("--patterns", default="triangle,q1",
                    help="comma-separated standing patterns to subscribe")
    st.add_argument("--service-workers", type=int, default=4,
                    help="worker threads in the service pool")
    st.add_argument("--verify", action="store_true",
                    help="check every accumulated count against a "
                         "from-scratch engine run on the final snapshot")
    st.add_argument("--trace", metavar="FILE",
                    help="write a wall-clock Chrome trace of the run")
    st.add_argument("--json", action="store_true",
                    help="print the full stream report as JSON")
    st.add_argument("--metrics", metavar="FILE",
                    help="instrument the service and write the Prometheus "
                         "exposition to FILE ('-' for stdout)")
    st.add_argument("--flight", metavar="FILE",
                    help="dump the per-subscription flight recorder as "
                         "JSONL to FILE")
    st.add_argument("--smoke", action="store_true",
                    help="CI smoke mode: cap at 20 updates / 2 workers and "
                         "force --verify")
    st.set_defaults(func=_cmd_stream)

    mt = sub.add_parser("metrics",
                        help="run an instrumented demo query and dump the "
                             "metrics exposition, or --check FILE to "
                             "validate one")
    mt.add_argument("--check", metavar="FILE",
                    help="validate a Prometheus text exposition file "
                         "('-' for stdin); exits 1 on format errors")
    mt.add_argument("--data", default="GO",
                    help="dataset for the demo query (default GO)")
    mt.add_argument("--pattern", default="q1", choices=sorted(QUERIES))
    mt.add_argument("--machines", type=int, default=4)
    mt.add_argument("--workers", type=int, default=4)
    mt.add_argument("--scale", type=float, default=1.0)
    mt.add_argument("--seed", type=int, default=0)
    mt.add_argument("--out", metavar="FILE", default="-",
                    help="write the exposition to FILE (default stdout)")
    mt.add_argument("--json", action="store_true",
                    help="print the JSON snapshot instead of the text "
                         "exposition")
    mt.set_defaults(func=_cmd_metrics)

    c = sub.add_parser("conformance",
                       help="differential conformance harness "
                            "(python -m repro.conformance)")
    c.add_argument("rest", nargs=argparse.REMAINDER,
                   help="arguments forwarded to repro.conformance")
    c.set_defaults(func=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "conformance":
        from .conformance import main as conformance_main

        return conformance_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
