"""Delta decomposition: enumerate only the embeddings that touch Δ.

Given a standing pattern and an update batch Δ (a set of undirected data
edges), every *new* symmetry-broken match must use at least one Δ-edge.
:class:`DeltaEnumerator` enumerates those matches **exactly once** with
a rank-pinning scheme adapted from the delta decomposition of Lai et
al. (arXiv:2006.12819):

1.  Order the delta edges ``δ_0 < δ_1 < … < δ_{m-1}`` (lexicographic).
    Base edges (present but not in Δ) get rank ``-1``; delta edge
    ``δ_i`` gets rank ``i``.
2.  A match ``f`` is *assigned* to step ``i`` where ``i`` is the
    maximum rank over the data edges ``f`` uses.  Since every new match
    uses ≥ 1 Δ-edge, each match is assigned to exactly one step.
3.  At step ``i``, for every query edge ``(a, b)`` and both
    orientations, pin ``f(a), f(b)`` onto ``δ_i`` and extend the rest
    of the pattern along a connected matching order, **admitting only
    data edges of rank ≤ i**.  By injectivity exactly one query edge of
    ``f`` maps onto ``δ_i`` (in one orientation), so step ``i`` emits
    ``f`` exactly once; the rank filter stops any step ``j > i`` from
    re-emitting it (``f`` uses no edge of rank ``> i``), and step
    ``j < i`` cannot produce it (``δ_i`` would be filtered out).

The extension loop reuses the engine's columnar PULL-EXTEND kernels
(:func:`~repro.core.kernels.csr_gather`,
:func:`~repro.core.kernels.edge_member_rows`) plus the standard
Grochow–Kellis symmetry-breaking conditions, so delta matches land in
the same canonical form as the batch engine's output.

Deletions run the same enumeration against the *pre-update* snapshot
with Δ = the deleted edges: the result is precisely the set of
previously valid matches that die with the batch — the retractions.
:class:`IncrementalMatcher` packages the insert/delete passes into a
per-batch ``(+additions, -retractions)`` result and maintains the
accumulated standing match set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.kernels import csr_gather, edge_composite_index, edge_member_rows
from ..graph.graph import Graph
from ..graph.updates import GraphDelta, apply_updates, normalise_edges
from ..query.pattern import QueryGraph
from ..query.symmetry import PartialOrder, symmetry_break

__all__ = ["DeltaEnumerator", "IncrementalMatcher", "BatchResult"]

Edge = tuple[int, int]
Match = tuple[int, ...]


@dataclass(frozen=True)
class _PinnedPlan:
    """Matching order for one pinned query edge ``(a, b)``.

    ``order[0] = a`` and ``order[1] = b`` are bound by the pinned data
    edge; the remaining vertices follow a greedy connected order.  For
    each later position ``i``, ``back[i]`` lists the *column positions*
    of the already-placed pattern neighbours of ``order[i]``, and
    ``lt[i]`` / ``gt[i]`` the positions the new vertex must be
    less/greater than under the symmetry-breaking partial order.
    """

    order: tuple[int, ...]
    back: tuple[tuple[int, ...], ...]
    lt: tuple[tuple[int, ...], ...]
    gt: tuple[tuple[int, ...], ...]
    labels: tuple[int | None, ...]        # label constraint per position
    seed_lt: bool                          # require f(a) < f(b)
    seed_gt: bool                          # require f(a) > f(b)


def _pinned_plan(pattern: QueryGraph, conditions: PartialOrder,
                 a: int, b: int) -> _PinnedPlan:
    order = [a, b]
    placed = {a, b}
    while len(order) < pattern.num_vertices:
        cands = [v for v in pattern.vertices() if v not in placed
                 and pattern.neighbours(v) & placed]
        # greedy: most placed neighbours, then highest degree, then id
        nxt = max(cands, key=lambda v: (len(pattern.neighbours(v) & placed),
                                        pattern.degree(v), -v))
        order.append(nxt)
        placed.add(nxt)
    pos = {v: i for i, v in enumerate(order)}
    back: list[tuple[int, ...]] = []
    lt: list[tuple[int, ...]] = []
    gt: list[tuple[int, ...]] = []
    for i, v in enumerate(order):
        back.append(tuple(sorted(pos[u] for u in pattern.neighbours(v)
                                 if pos[u] < i)))
        lt.append(tuple(sorted(pos[u] for (w, u) in conditions
                               if w == v and pos[u] < i)))
        gt.append(tuple(sorted(pos[u] for (u, w) in conditions
                               if w == v and pos[u] < i)))
    return _PinnedPlan(
        order=tuple(order), back=tuple(back), lt=tuple(lt), gt=tuple(gt),
        labels=tuple(pattern.label(v) for v in order),
        seed_lt=(a, b) in conditions, seed_gt=(b, a) in conditions)


class DeltaEnumerator:
    """Per-query-edge delta plans for one standing pattern.

    Plans are built once at subscription time; :meth:`delta_matches`
    then answers "which symmetry-broken matches use ≥ 1 edge of Δ"
    for any snapshot/Δ pair.
    """

    def __init__(self, pattern: QueryGraph,
                 conditions: PartialOrder | None = None):
        if not pattern.is_connected() or pattern.num_vertices < 2:
            raise ValueError(
                "delta enumeration needs a connected pattern with >= 2 "
                f"vertices, got {pattern!r}")
        self.pattern = pattern
        self.conditions: PartialOrder = (
            symmetry_break(pattern) if conditions is None else conditions)
        self.plans: tuple[_PinnedPlan, ...] = tuple(
            _pinned_plan(pattern, self.conditions, a, b)
            for (a, b) in sorted(pattern.edges))

    # -- rank machinery ----------------------------------------------------

    @staticmethod
    def _rank_index(delta: Sequence[Edge], n: int
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Sorted composite keys (both directions) → delta rank."""
        arr = np.asarray(delta, dtype=np.int64).reshape(-1, 2)
        ranks = np.arange(len(arr), dtype=np.int64)
        keys = np.concatenate([arr[:, 0] * n + arr[:, 1],
                               arr[:, 1] * n + arr[:, 0]])
        vals = np.concatenate([ranks, ranks])
        order = np.argsort(keys)
        return keys[order], vals[order]

    @staticmethod
    def _edge_ranks(keys: np.ndarray, vals: np.ndarray, n: int,
                    src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Rank of each data edge ``(src[i], dst[i])``; -1 for base edges."""
        q = src * n + dst
        idx = np.searchsorted(keys, q)
        idx[idx == len(keys)] = 0
        out = np.full(len(q), -1, dtype=np.int64)
        hit = keys[idx] == q
        out[hit] = vals[idx[hit]]
        return out

    # -- enumeration -------------------------------------------------------

    def delta_matches(self, graph: Graph, delta_edges: Iterable[Edge],
                      labels: np.ndarray | None = None) -> list[Match]:
        """All symmetry-broken matches in ``graph`` using ≥ 1 Δ-edge.

        Each match is returned exactly once, as a tuple indexed by
        pattern vertex — the same canonical form the reference and the
        batch engine emit.  Δ-edges absent from ``graph`` are ignored
        (they cannot carry a match in this snapshot).
        """
        delta = sorted(e for e in normalise_edges(delta_edges)
                       if graph.has_edge(*e))
        if not delta:
            return []
        n = graph.num_vertices
        indptr, indices = graph.indptr, graph.indices
        comp = edge_composite_index(graph)
        keys, vals = self._rank_index(delta, n)
        out: list[Match] = []
        for step, (x, y) in enumerate(delta):
            for plan in self.plans:
                rows = self._extend(plan, step, x, y, n, indptr, indices,
                                    comp, keys, vals, labels)
                if rows is None or not len(rows):
                    continue
                emitted = np.empty_like(rows)
                emitted[:, plan.order] = rows
                out.extend(map(tuple, emitted.tolist()))
        return out

    def _extend(self, plan: _PinnedPlan, step: int, x: int, y: int, n: int,
                indptr: np.ndarray, indices: np.ndarray, comp: np.ndarray,
                keys: np.ndarray, vals: np.ndarray,
                labels: np.ndarray | None) -> np.ndarray | None:
        # seed both orientations of the pinned edge, filter by the seed
        # labels/conditions, then extend column by column
        rows = np.array([[x, y], [y, x]], dtype=np.int64)
        keep = np.ones(2, dtype=bool)
        for p in (0, 1):
            want = plan.labels[p]
            if want is not None:
                if labels is None:
                    return None
                keep &= labels[rows[:, p]] == want
        if plan.seed_lt:
            keep &= rows[:, 0] < rows[:, 1]
        if plan.seed_gt:
            keep &= rows[:, 0] > rows[:, 1]
        rows = rows[keep]
        for i in range(2, len(plan.order)):
            if not len(rows):
                return rows
            backs = plan.back[i]
            p0 = backs[0]
            row_ids, cand = csr_gather(indptr, indices, rows[:, p0])
            src_rows = rows[row_ids]
            keep = self._edge_ranks(keys, vals, n,
                                    src_rows[:, p0], cand) <= step
            if len(backs) > 1:
                others = src_rows[:, backs[1:]]
                keep &= edge_member_rows(comp, n, others, cand)
                for p in backs[1:]:
                    keep &= self._edge_ranks(keys, vals, n,
                                             src_rows[:, p], cand) <= step
            # injectivity: the new vertex must differ from every placed one
            keep &= ~(cand[:, None] == src_rows).any(axis=1)
            want = plan.labels[i]
            if want is not None:
                if labels is None:
                    return None
                keep &= labels[cand] == want
            for p in plan.lt[i]:
                keep &= cand < src_rows[:, p]
            for p in plan.gt[i]:
                keep &= cand > src_rows[:, p]
            rows = np.concatenate(
                [src_rows[keep], cand[keep, None]], axis=1)
        return rows


@dataclass
class BatchResult:
    """Signed match deltas of one update batch for one pattern."""

    seq: int
    delta: GraphDelta
    additions: list[Match] = field(default_factory=list)
    retractions: list[Match] = field(default_factory=list)
    count_after: int = 0

    @property
    def net(self) -> int:
        return len(self.additions) - len(self.retractions)


class IncrementalMatcher:
    """Maintains one pattern's standing match set across graph updates.

    ``apply(inserts, deletes)`` runs the two delta passes (retractions
    on the pre-update snapshot, additions on the post-update snapshot)
    and folds the signed deltas into the accumulated set.  Exactly-once
    bookkeeping violations (an addition already present, a retraction
    never delivered) are counted rather than raised — the conformance
    oracle asserts they stay zero.
    """

    def __init__(self, pattern: QueryGraph, graph: Graph,
                 conditions: PartialOrder | None = None,
                 labels: np.ndarray | None = None,
                 keep_matches: bool = True, bootstrap: bool = True):
        self.enumerator = DeltaEnumerator(pattern, conditions)
        self.graph = graph
        self.labels = labels
        self.count = 0
        self.matches: set[Match] | None = set() if keep_matches else None
        self.violations = 0
        self.batches_applied = 0
        if bootstrap and graph.num_edges:
            # the whole edge set as one Δ: every match uses >= 1 edge, so
            # this is a from-scratch enumeration through the delta path
            initial = self.enumerator.delta_matches(
                graph, graph.edges(), labels=labels)
            self._fold(initial, [])

    def _fold(self, additions: list[Match],
              retractions: list[Match]) -> None:
        if self.matches is not None:
            for m in additions:
                if m in self.matches:
                    self.violations += 1
                else:
                    self.matches.add(m)
            for m in retractions:
                if m in self.matches:
                    self.matches.remove(m)
                else:
                    self.violations += 1
            self.count = len(self.matches)
        else:
            self.count += len(additions) - len(retractions)

    def apply(self, inserts: Iterable[Edge] = (),
              deletes: Iterable[Edge] = ()) -> BatchResult:
        """Apply one update batch; returns the signed match deltas."""
        new_graph, delta = apply_updates(self.graph, inserts, deletes)
        retractions = self.enumerator.delta_matches(
            self.graph, delta.deleted, labels=self.labels)
        additions = self.enumerator.delta_matches(
            new_graph, delta.inserted, labels=self.labels)
        self._fold(additions, retractions)
        self.graph = new_graph
        self.batches_applied += 1
        return BatchResult(seq=self.batches_applied, delta=delta,
                           additions=additions, retractions=retractions,
                           count_after=self.count)
