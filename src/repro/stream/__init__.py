"""Incremental subgraph enumeration over streaming graph updates.

``repro.stream`` turns the static engine incremental: a standing query
is decomposed into per-query-edge *delta plans* so that after an update
batch Δ only the embeddings touching Δ are (re-)enumerated — per-batch
work proportional to ``|Δ|`` rather than ``|E|``.  Edge insertions emit
``+`` match deltas, deletions emit ``-`` retractions, and accumulating
the signed deltas reproduces, bit-identically, a from-scratch run on
the final graph (the ``delta`` conformance family asserts exactly this).

The serving tier exposes the subsystem as standing subscriptions: see
:meth:`repro.serve.QueryService.subscribe` and
:meth:`repro.serve.QueryService.apply_updates`.
"""

from .delta import BatchResult, DeltaEnumerator, IncrementalMatcher
from .subscribe import DeltaBatch, SubscribeRequest, Subscription, UpdateReport

__all__ = [
    "BatchResult",
    "DeltaEnumerator",
    "IncrementalMatcher",
    "DeltaBatch",
    "SubscribeRequest",
    "Subscription",
    "UpdateReport",
]
