"""Standing subscriptions: the client-facing half of ``repro.stream``.

A :class:`SubscribeRequest` registers a pattern against a served dataset
(:meth:`repro.serve.QueryService.subscribe`); the returned
:class:`Subscription` is the handle a client consumes ``+/-``
:class:`DeltaBatch` deliveries from.  Delivery mirrors the serving
tier's exactly-once discipline for query results: each graph version is
delivered to a subscription at most once (a second attempt increments
``delivery_violations`` instead of duplicating), and the per-handle
queue applies the same bounded-backpressure strategy as streamed query
chunks.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Iterator

from ..query.pattern import QueryGraph
from .delta import DeltaEnumerator, Match

__all__ = ["SubscribeRequest", "Subscription", "DeltaBatch", "UpdateReport"]

Edge = tuple[int, int]


def _next_seq() -> int:
    # share the serving tier's request sequence space so flight-recorder
    # entries for queries and subscriptions interleave on one axis;
    # imported lazily to keep repro.stream importable on its own
    from ..serve.request import _request_seq
    return next(_request_seq)


@dataclass
class SubscribeRequest:
    """A standing-pattern subscription request."""

    pattern: QueryGraph | str
    dataset: str
    tenant: str = "default"
    #: bounded delivery queue; `apply_updates` blocks (with the service
    #: abort as escape hatch) once a slow consumer falls this far behind
    max_pending_batches: int = 64
    #: when True, the current snapshot's matches are delivered up front
    #: as an initial all-additions batch (seq = current graph version)
    bootstrap: bool = False
    tag: str | None = None
    seq: int = field(default_factory=_next_seq)

    @property
    def label(self) -> str:
        base = self.tag or (self.pattern if isinstance(self.pattern, str)
                            else self.pattern.name)
        return f"{base}@{self.dataset}#sub{self.seq}"


@dataclass(frozen=True)
class DeltaBatch:
    """One delivered update batch: signed match deltas plus provenance."""

    seq: int                      # graph version after the batch
    dataset: str
    inserted: tuple[Edge, ...]    # effective edge inserts (Δ+)
    deleted: tuple[Edge, ...]     # effective edge deletes (Δ-)
    additions: tuple[Match, ...]  # + match deltas
    retractions: tuple[Match, ...]  # - match deltas
    count_after: int              # standing count after folding this batch
    latency_s: float
    error: str | None = None

    @property
    def net(self) -> int:
        return len(self.additions) - len(self.retractions)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "dataset": self.dataset,
            "inserted": len(self.inserted),
            "deleted": len(self.deleted),
            "additions": len(self.additions),
            "retractions": len(self.retractions),
            "count_after": self.count_after,
            "latency_s": round(self.latency_s, 6),
            "error": self.error,
        }


class Subscription:
    """A standing query registered with a :class:`QueryService`.

    The service's workers run the delta passes and call :meth:`_deliver`;
    clients consume via :meth:`poll` / :meth:`batches` and tear down
    with :meth:`unsubscribe`.
    """

    def __init__(self, request: SubscribeRequest, pattern: QueryGraph,
                 service=None):
        self.request = request
        self.pattern = pattern
        self.enumerator = DeltaEnumerator(pattern)
        self.count = 0
        self.delivered_batches = 0
        self.delivery_violations = 0
        self.active = True
        self._service = service
        self._seen: set[int] = set()
        self._lock = threading.Lock()
        self._queue: queue.Queue[DeltaBatch | None] = queue.Queue(
            maxsize=max(1, request.max_pending_batches))

    @property
    def seq(self) -> int:
        return self.request.seq

    @property
    def tenant(self) -> str:
        return self.request.tenant

    # -- service side ------------------------------------------------------

    def _deliver(self, batch: DeltaBatch, abort: threading.Event) -> bool:
        """Deliver one batch exactly once; False on duplicate/teardown."""
        with self._lock:
            if not self.active:
                return False
            if batch.seq in self._seen:
                self.delivery_violations += 1
                return False
            self._seen.add(batch.seq)
            self.count = batch.count_after
            self.delivered_batches += 1
        while not abort.is_set():
            try:
                self._queue.put(batch, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _close(self) -> None:
        with self._lock:
            self.active = False
        try:
            self._queue.put_nowait(None)
        except queue.Full:
            pass

    # -- client side -------------------------------------------------------

    def poll(self, timeout: float | None = 0.0) -> DeltaBatch | None:
        """Next pending batch, or ``None`` if none arrives in time."""
        try:
            return self._queue.get(
                block=timeout is None or timeout > 0, timeout=timeout or None)
        except queue.Empty:
            return None

    def batches(self, timeout: float = 0.5) -> Iterator[DeltaBatch]:
        """Iterate delivered batches until idle for ``timeout`` seconds
        or the subscription is closed."""
        while True:
            try:
                batch = self._queue.get(timeout=timeout)
            except queue.Empty:
                return
            if batch is None:
                return
            yield batch

    def drain(self) -> list[DeltaBatch]:
        """All currently pending batches, without blocking."""
        out: list[DeltaBatch] = []
        while True:
            try:
                batch = self._queue.get_nowait()
            except queue.Empty:
                return out
            if batch is not None:
                out.append(batch)

    def unsubscribe(self) -> None:
        """Deregister from the service and stop deliveries."""
        if self._service is not None:
            self._service.unsubscribe(self)
        else:
            self._close()


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one :meth:`QueryService.apply_updates` call."""

    dataset: str
    version: int
    inserted: tuple[Edge, ...]
    deleted: tuple[Edge, ...]
    batches: tuple[DeltaBatch, ...]   # one per subscription notified
    wall_s: float
    timed_out: bool = False

    @property
    def additions(self) -> int:
        return sum(len(b.additions) for b in self.batches)

    @property
    def retractions(self) -> int:
        return sum(len(b.retractions) for b in self.batches)

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "version": self.version,
            "inserted": len(self.inserted),
            "deleted": len(self.deleted),
            "subscriptions": len(self.batches),
            "additions": self.additions,
            "retractions": self.retractions,
            "wall_s": round(self.wall_s, 6),
            "timed_out": self.timed_out,
            "batches": [b.as_dict() for b in self.batches],
        }
