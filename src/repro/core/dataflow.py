"""Dataflow graph specification (paper §4.2).

A translated execution plan becomes a tree of *segments*.  A segment is a
linear chain — one source (an edge ``SCAN`` or a ``PUSH-JOIN``) followed by
``PULL-EXTEND`` operators — because HUGE rewrites star SCANs and
pulling-based hash joins into ``PULL-EXTEND`` chains (§5.2), leaving
``PUSH-JOIN`` as the only branching operator.  ``PUSH-JOIN`` enforces a
global synchronisation barrier (§5.4), so the segment tree is exactly the
unit structure the scheduler works with: child segments run to completion
(into join buffers) before their parent segment streams.

All specs are declarative and immutable; the runtime operators in
:mod:`repro.core.operators` interpret them.

Schemas and positions
---------------------
Every operator's output is a stream of tuples of data-vertex ids.  The
``schema`` names which query vertex each position matches.  ``ext`` (the
paper's *extend index*), join keys, symmetry conditions and distinctness
checks are all expressed as tuple positions so the hot path never consults
the schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ScanSpec", "ExtendSpec", "JoinSpec", "Segment"]


@dataclass(frozen=True)
class ScanSpec:
    """Scan all matches of a single query edge from the local partition.

    Emits tuples ``(f(a), f(b))`` for the query edge ``(a, b)`` with
    ``schema = (a, b)``.  ``order`` applies a symmetry-breaking condition
    between the two endpoints: ``"lt"`` keeps ``f(a) < f(b)``, ``"gt"``
    keeps ``f(a) > f(b)``, ``None`` keeps both directed versions.
    """

    schema: tuple[int, int]
    order: str | None = None
    #: label constraints for (pivot, neighbour); None = wildcard
    labels: tuple[int | None, int | None] = (None, None)

    def __post_init__(self) -> None:
        if self.order not in (None, "lt", "gt"):
            raise ValueError(f"bad scan order {self.order!r}")


@dataclass(frozen=True)
class ExtendSpec:
    """One ``PULL-EXTEND`` operator (paper Algorithm 4).

    For each input tuple ``f`` the candidate set is
    ``∩_{d ∈ ext} N_G(f[d])``, with remote adjacency lists pulled through
    the LRBU cache.

    Two modes:

    * **extension** (``new_vertex`` set): each candidate ``v`` not already
      in ``f`` and satisfying the positional symmetry conditions yields
      ``f + (v,)``;
    * **verification** (``new_vertex`` is ``None``; the §5.2 hint): the
      tuple survives unchanged iff ``f[verify_pos]`` is in the candidate
      set — this verifies the star edges between an already-matched root
      and the already-matched leaves without growing the tuple.
    """

    ext: tuple[int, ...]
    out_schema: tuple[int, ...]
    new_vertex: int | None = None
    verify_pos: int | None = None
    #: positions p such that the new candidate must be < f[p]
    candidate_lt: tuple[int, ...] = ()
    #: positions p such that the new candidate must be > f[p]
    candidate_gt: tuple[int, ...] = ()
    #: label constraint on the new vertex (labelled queries; None = any)
    new_label: int | None = None

    def __post_init__(self) -> None:
        if not self.ext:
            raise ValueError("PULL-EXTEND needs at least one extend index")
        if (self.new_vertex is None) == (self.verify_pos is None):
            raise ValueError(
                "exactly one of new_vertex / verify_pos must be set")

    @property
    def is_verify(self) -> bool:
        """Whether this is a §5.2 verification extend."""
        return self.verify_pos is not None


@dataclass(frozen=True)
class JoinSpec:
    """One ``PUSH-JOIN`` operator: buffered distributed hash join (§4.3).

    Both inputs are shuffled by the join key; matching left/right tuples
    are concatenated (right key columns dropped).  ``cross_distinct`` and
    ``cross_conditions`` carry the injectivity and symmetry checks that
    only become possible once both sides are present; positions refer to
    ``out_schema``.
    """

    left_key: tuple[int, ...]
    right_key: tuple[int, ...]
    right_carry: tuple[int, ...]
    out_schema: tuple[int, ...]
    cross_distinct: tuple[tuple[int, int], ...] = ()
    cross_conditions: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if len(self.left_key) != len(self.right_key) or not self.left_key:
            raise ValueError("join keys must be non-empty and equal length")


@dataclass
class Segment:
    """A linear chain of operators: one source plus extends.

    ``source`` is a :class:`ScanSpec`, or a :class:`JoinSpec` whose
    children are the two sub-``Segment``s (making the whole structure a
    tree).  The root segment's final output feeds the SINK.
    """

    source: ScanSpec | JoinSpec
    left: "Segment | None" = None
    right: "Segment | None" = None
    extends: list[ExtendSpec] = field(default_factory=list)
    out_schema: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        is_join = isinstance(self.source, JoinSpec)
        if is_join != (self.left is not None and self.right is not None):
            raise ValueError("JoinSpec sources need exactly two child segments")
        if not self.out_schema:
            last = self.extends[-1].out_schema if self.extends else (
                self.source.out_schema if isinstance(self.source, JoinSpec)
                else self.source.schema)
            self.out_schema = tuple(last)

    @property
    def num_operators(self) -> int:
        """Operators in this segment's own chain (source + extends)."""
        return 1 + len(self.extends)

    def all_segments(self) -> list["Segment"]:
        """Post-order list of segments (children before parents)."""
        out: list[Segment] = []
        if self.left is not None:
            out.extend(self.left.all_segments())
        if self.right is not None:
            out.extend(self.right.all_segments())
        out.append(self)
        return out

    def total_operators(self) -> int:
        """Operators in the whole tree."""
        return sum(s.num_operators for s in self.all_segments())

    def max_arity(self) -> int:
        """Widest tuple produced anywhere in the tree."""
        widest = len(self.out_schema)
        for seg in self.all_segments():
            widest = max(widest, len(seg.out_schema))
        return widest
