"""Runtime operators: SCAN, PULL-EXTEND, PUSH-JOIN, SINK (paper §4).

Operators interpret the declarative specs of :mod:`repro.core.dataflow` on
the simulated cluster.  All enumeration work is real — tuples are produced,
intersected and filtered exactly — while compute ops, RPC bytes/messages
and memory are charged to the metrics ledger.

``PULL-EXTEND`` implements the two-stage execution strategy of Algorithm 4:
a *fetch* stage that collects the batch's remote vertices, seals cached
ones and pulls the misses with one aggregated ``GetNbrs`` RPC per owner,
then an *intersect* stage that runs the multiway intersections against
local adjacency and sealed cache entries (zero-copy reads).  Setting
``two_stage=False`` (the Cncr-LRU ablation) degrades to per-miss RPCs
issued from inside the intersect loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..obs.trace import NULL_TRACER
from .cache import LRBUCache, LRUCache
from .dataflow import ExtendSpec, JoinSpec, ScanSpec

__all__ = ["ExecContext", "ScanOp", "ExtendOp", "SinkConsumer", "JoinBuffer",
           "join_stream", "Tuple"]

Tuple = tuple[int, ...]
Cache = LRBUCache | LRUCache


class ExecContext:
    """Shared execution state for one engine run."""

    def __init__(self, cluster: Cluster, caches: Sequence[Cache],
                 two_stage: bool, batch_size: int, tracer=None):
        self.cluster = cluster
        self.caches = list(caches)
        # hit/miss accounting is charged once, through the cache's own
        # stats, and forwarded to the run metrics from there
        for machine, cache in enumerate(self.caches):
            cache.stats.bind(cluster.metrics, machine)
        self.two_stage = two_stage
        self.batch_size = batch_size
        self.metrics = cluster.metrics
        self.cost = cluster.cost
        #: per-vertex labels of the data graph (None for unlabelled)
        self.labels = cluster.labels
        #: total ops spent in fetch stages (Table 5's t_f)
        self.fetch_ops = 0.0
        #: span tracer (the no-op tracer unless the run is being traced)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: segment identity -> index, for stable operator ids in traces
        self.seg_ids: dict[int, int] = {}

    def release_caches(self) -> None:
        """Release all sealed cache entries (end of batch, Algorithm 4 l.20)."""
        for cache in self.caches:
            cache.release()


class ScanOp:
    """Edge SCAN: emits matches of a single query edge from the local
    partition.  Input batches are lists of local pivot vertices."""

    def __init__(self, spec: ScanSpec, ctx: ExecContext):
        self.spec = spec
        self.ctx = ctx
        self.out_arity = 2

    def process(self, machine: int,
                pivots: Sequence[int]) -> tuple[list[Tuple], list[float], int]:
        """Expand each pivot ``u`` into tuples ``(u, v)`` for its
        neighbours ``v`` passing the symmetry order filter.

        Pivots are normally local; pivots re-homed by inter-machine work
        stealing are remote, and their adjacency is pulled with one
        aggregated ``GetNbrs`` RPC for the chunk.
        """
        cost = self.ctx.cost
        pg = self.ctx.cluster.pgraph
        order = self.spec.order
        labels = self.ctx.labels
        pivot_label, nbr_label = self.spec.labels
        remote = [int(u) for u in pivots if pg.owner_of(int(u)) != machine]
        pulled = self.ctx.cluster.get_nbrs(machine, remote) if remote else {}
        out: list[Tuple] = []
        item_costs: list[float] = []
        for u in pivots:
            u = int(u)
            if (pivot_label is not None and labels is not None
                    and labels[u] != pivot_label):
                item_costs.append(cost.scan_op)
                continue
            nbrs = pulled.get(u)
            if nbrs is None:
                nbrs = pg.neighbours_local(u, machine)
            if order == "lt":
                vs = nbrs[nbrs > u]
            elif order == "gt":
                vs = nbrs[nbrs < u]
            else:
                vs = nbrs
            if nbr_label is not None and labels is not None:
                vs = vs[labels[vs] == nbr_label]
            for v in vs:
                out.append((u, int(v)))
            item_costs.append(len(nbrs) * cost.scan_op
                              + len(vs) * 2 * cost.emit_op)
        return out, item_costs, 0


class ExtendOp:
    """PULL-EXTEND (Algorithm 4): two-stage fetch + intersect."""

    def __init__(self, spec: ExtendSpec, ctx: ExecContext, opid: str = ""):
        self.spec = spec
        self.ctx = ctx
        self.out_arity = len(spec.out_schema)
        self.opid = opid

    # -- fetch stage --------------------------------------------------------------

    def _fetch(self, machine: int, batch: Sequence[Tuple]) -> None:
        """Collect the batch's remote extend vertices, seal hits, pull the
        misses with one aggregated RPC per owner, insert + seal them."""
        ctx = self.ctx
        pg = ctx.cluster.pgraph
        cache = ctx.caches[machine]
        tracer = ctx.tracer
        if tracer.enabled:
            t0 = tracer.now(machine)
            evictions0 = cache.stats.evictions
            overflow0 = cache.stats.max_overflow_ids
        ext = self.spec.ext
        remote: set[int] = set()
        for f in batch:
            for d in ext:
                u = f[d]
                if pg.owner_of(u) != machine:
                    remote.add(u)
        fetch: list[int] = []
        hits = 0
        for u in remote:
            if cache.contains(u):
                cache.seal(u)
                hits += 1
            else:
                fetch.append(u)
        if fetch:
            fetched = ctx.cluster.get_nbrs(machine, fetch)
            for u, nbrs in fetched.items():
                cache.insert(u, nbrs)
                cache.seal(u)
        cache.stats.count(hits=hits, misses=len(fetch))
        ops = (len(remote) * 2.0  # contains + seal bookkeeping
               + sum(1 + len(ctx.cluster.pgraph.graph.neighbours(u))
                     for u in fetch) * 0.5)  # single-writer inserts
        ctx.metrics.charge_ops(machine, ops)
        ctx.fetch_ops += ops
        if tracer.enabled:
            tracer.complete("fetch", machine, t0, tracer.now(machine),
                            {"op": self.opid, "remote": len(remote),
                             "hits": hits, "misses": len(fetch)})
            tracer.counter("cache occupancy", machine,
                           {"ids": cache.size_ids})
            if cache.stats.evictions > evictions0:
                tracer.instant("cache evict", machine,
                               {"n": cache.stats.evictions - evictions0,
                                "occupancy_ids": cache.size_ids})
            if cache.stats.max_overflow_ids > overflow0:
                tracer.instant("cache overflow", machine,
                               {"ids": cache.stats.max_overflow_ids})

    # -- intersect stage ------------------------------------------------------------

    def _neighbour_list(self, machine: int, u: int,
                        penalties: list[float]) -> np.ndarray | None:
        """Adjacency of ``u``: local partition read, sealed cache read, or
        (two-stage disabled) an on-demand per-miss RPC."""
        ctx = self.ctx
        pg = ctx.cluster.pgraph
        if pg.owner_of(u) == machine:
            return pg.neighbours_local(u, machine)
        cache = ctx.caches[machine]
        if cache.contains(u):
            nbrs = cache.get(u)
            penalties.append(cache.access_penalty(u))
            if not ctx.two_stage:
                # under two-stage execution the fetch stage already counted
                # this vertex; only per-miss mode counts intersect reads
                cache.stats.count(hits=1)
            return nbrs
        if ctx.two_stage:
            # the fetch stage guarantees presence; reaching here means the
            # entry was evicted mid-batch, which LRBU sealing forbids
            raise AssertionError(
                f"vertex {u} missing from cache during intersect stage")
        fetched = ctx.cluster.get_nbrs(machine, [u])
        nbrs = fetched[u]
        cache.insert(u, nbrs)
        penalties.append(cache.access_penalty(u))
        cache.stats.count(misses=1)
        return nbrs

    def process(self, machine: int, batch: Sequence[Tuple],
                count_only: bool = False
                ) -> tuple[list[Tuple], list[float], int]:
        """Run fetch + intersect for one batch.

        Returns ``(output_tuples, per_input_tuple_costs, count)``.  With
        ``count_only`` (the compression optimisation of [63], applied to
        the final operator before the SINK) valid extensions are counted
        without materialising tuples — only the count is returned.
        """
        ctx = self.ctx
        cost = ctx.cost
        spec = self.spec
        counted = 0
        if ctx.two_stage:
            self._fetch(machine, batch)
        out: list[Tuple] = []
        item_costs: list[float] = []
        for f in batch:
            penalties: list[float] = []
            lists: list[np.ndarray] = []
            for d in spec.ext:
                nbrs = self._neighbour_list(machine, f[d], penalties)
                lists.append(nbrs)
            lists.sort(key=len)
            cand = lists[0]
            for other in lists[1:]:
                if len(cand) == 0:
                    break
                cand = np.intersect1d(cand, other, assume_unique=True)
            ops = cost.intersection_ops([len(l) for l in lists]) + sum(penalties)
            if (spec.new_label is not None and ctx.labels is not None
                    and len(cand)):
                cand = cand[ctx.labels[cand] == spec.new_label]

            if spec.is_verify:
                target = f[spec.verify_pos]
                i = int(np.searchsorted(cand, target))
                if i < len(cand) and cand[i] == target:
                    if count_only:
                        counted += 1
                        ops += cost.emit_op
                    else:
                        out.append(f)
                        ops += len(f) * cost.emit_op
            else:
                lt = spec.candidate_lt
                gt = spec.candidate_gt
                arity = len(f) + 1
                for v in cand:
                    v = int(v)
                    if v in f:
                        continue
                    if any(v >= f[p] for p in lt):
                        continue
                    if any(v <= f[p] for p in gt):
                        continue
                    if count_only:
                        counted += 1
                        ops += cost.emit_op
                    else:
                        out.append(f + (v,))
                        ops += arity * cost.emit_op
            item_costs.append(ops)
        if ctx.two_stage:
            ctx.caches[machine].release()
        return out, item_costs, counted


class SinkConsumer:
    """SINK: counts (and optionally collects) final results (§4.2)."""

    def __init__(self, schema: tuple[int, ...], collect: bool = False):
        self.schema = schema
        self.collect = collect
        self.count = 0
        self.results: list[Tuple] = []

    def consume(self, machine: int, batch: Sequence[Tuple]) -> None:
        """Absorb one batch of final results."""
        self.count += len(batch)
        if self.collect:
            self.results.extend(batch)

    def consume_count(self, machine: int, n: int) -> None:
        """Absorb a compressed (count-only) result contribution."""
        self.count += n

    def matches(self) -> list[Tuple]:
        """Collected matches reordered to query-vertex order (f(0), f(1), …)."""
        if not self.collect:
            raise ValueError("sink was not collecting results")
        perm = sorted(range(len(self.schema)), key=lambda i: self.schema[i])
        return [tuple(f[i] for i in perm) for f in self.results]


class JoinBuffer:
    """One side of a buffered PUSH-JOIN (§4.3).

    Consumes a segment's output, shuffles each tuple to the machine owning
    its join key (hash partitioning via the router) and buffers it there.
    When a machine's buffer exceeds the in-memory threshold the overflow is
    externally sorted and spilled: memory stays bounded at the threshold
    while sort ops and spilled bytes are charged.
    """

    def __init__(self, ctx: ExecContext, key_pos: tuple[int, ...],
                 arity: int, buffer_tuples: int):
        self.ctx = ctx
        self.key_pos = key_pos
        self.arity = arity
        self.buffer_tuples = buffer_tuples
        k = ctx.cluster.num_machines
        self.partitions: list[list[Tuple]] = [[] for _ in range(k)]
        self._in_memory = [0] * k
        self.total = 0

    def destination(self, f: Tuple) -> int:
        """Machine owning the join key of ``f`` (hash partitioning)."""
        return hash(tuple(f[p] for p in self.key_pos)) % len(self.partitions)

    def consume(self, machine: int, batch: Sequence[Tuple]) -> None:
        """Shuffle one batch into the per-machine buffers."""
        ctx = self.ctx
        cost = ctx.cost
        tracer = ctx.tracer
        counts: dict[int, int] = {}
        for f in batch:
            dest = self.destination(f)
            self.partitions[dest].append(f)
            counts[dest] = counts.get(dest, 0) + 1
        self.total += len(batch)
        tuple_bytes = self.arity * cost.bytes_per_id
        for dest, n in counts.items():
            traced = tracer.enabled and dest != machine
            if traced:
                t0 = tracer.now(dest)
            ctx.cluster.push(machine, dest, n, self.arity)
            ctx.metrics.alloc(dest, n * tuple_bytes)
            self._in_memory[dest] += n
            if self._in_memory[dest] > self.buffer_tuples:
                spill = self._in_memory[dest] - self.buffer_tuples
                # external merge sort of the spilled run, then write out
                ctx.metrics.charge_ops(
                    dest, spill * cost.sort_op * max(
                        1.0, np.log2(max(2, spill))))
                ctx.metrics.record_spill(dest, spill * tuple_bytes)
                ctx.metrics.free(dest, spill * tuple_bytes)
                self._in_memory[dest] = self.buffer_tuples
            if traced:
                tracer.complete("shuffle recv", dest, t0, tracer.now(dest),
                                {"from": machine, "tuples": n})

    def release(self, machine: int) -> None:
        """Free a machine's buffered memory after the join consumed it."""
        cost = self.ctx.cost
        self.ctx.metrics.free(
            machine, self._in_memory[machine] * self.arity * cost.bytes_per_id)
        self._in_memory[machine] = 0
        self.partitions[machine] = []


def join_stream(ctx: ExecContext, spec: JoinSpec, left: JoinBuffer,
                right: JoinBuffer, machine: int, batch_size: int,
                opid: str = ""):
    """Local hash join of the two buffered sides on ``machine``.

    Builds on the smaller side, probes with the larger, applies the
    cross-side distinctness and symmetry filters, and yields output batches
    of at most ``batch_size`` tuples.  Per-probe worker costs are returned
    through the scheduler path (the caller charges them).
    """
    cost = ctx.cost
    tracer = ctx.tracer
    lpart = left.partitions[machine]
    rpart = right.partitions[machine]
    build_left = len(lpart) <= len(rpart)
    build_side, probe_side = (lpart, rpart) if build_left else (rpart, lpart)
    build_key, probe_key = ((spec.left_key, spec.right_key) if build_left
                            else (spec.right_key, spec.left_key))

    if tracer.enabled:
        t_seg = tracer.now(machine)
    table: dict[Tuple, list[Tuple]] = {}
    for f in build_side:
        table.setdefault(tuple(f[p] for p in build_key), []).append(f)
    ctx.metrics.charge_ops(machine, len(build_side) * cost.hash_build_op)
    if tracer.enabled:
        tracer.complete("build", machine, t_seg, tracer.now(machine),
                        {"op": opid, "tuples": len(build_side)})
        t_seg = tracer.now(machine)

    out: list[Tuple] = []
    probe_ops = 0.0
    out_arity = len(spec.out_schema)
    for f in probe_side:
        probe_ops += cost.hash_probe_op
        bucket = table.get(tuple(f[p] for p in probe_key))
        if not bucket:
            continue
        for g in bucket:
            lf, rf = (g, f) if build_left else (f, g)
            joined = lf + tuple(rf[p] for p in spec.right_carry)
            if any(joined[i] == joined[j] for i, j in spec.cross_distinct):
                continue
            if any(joined[i] >= joined[j] for i, j in spec.cross_conditions):
                continue
            out.append(joined)
            probe_ops += out_arity * cost.emit_op
            if len(out) >= batch_size:
                ctx.metrics.charge_ops(machine, probe_ops)
                probe_ops = 0.0
                if tracer.enabled:
                    tracer.complete("probe", machine, t_seg,
                                    tracer.now(machine), {"op": opid})
                yield out
                out = []
                # the clock advanced while the consumer ran; restart the
                # probe span at the resume point or it would straddle the
                # consumer's own spans and break strict nesting
                if tracer.enabled:
                    t_seg = tracer.now(machine)
    ctx.metrics.charge_ops(machine, probe_ops)
    if tracer.enabled:
        tracer.complete("probe", machine, t_seg, tracer.now(machine),
                        {"op": opid})
    if out:
        yield out
    left.release(machine)
    right.release(machine)
