"""Runtime operators: SCAN, PULL-EXTEND, PUSH-JOIN, SINK (paper §4).

Operators interpret the declarative specs of :mod:`repro.core.dataflow` on
the simulated cluster.  All enumeration work is real — tuples are produced,
intersected and filtered exactly — while compute ops, RPC bytes/messages
and memory are charged to the metrics ledger.

Batches are columnar (:class:`~repro.core.batch.Batch`: a 2-D ``int64``
array of partial matches).  The per-candidate work — distinctness,
symmetry masks, label filters, emission — runs as vectorised array
operations; only genuinely stateful steps (cache reads, per-row
intersections against adjacency lists) keep a per-row loop.  The charged
op totals are **bit-identical** to the historical tuple-at-a-time loops:
repeated per-emit additions are reproduced exactly with
:func:`~repro.core.kernels.chain_add` and shuffle destinations with the
vectorised tuple-hash replica (see ``tests/golden/metrics.json``).

``PULL-EXTEND`` implements the two-stage execution strategy of Algorithm 4:
a *fetch* stage that collects the batch's remote vertices, seals cached
ones and pulls the misses with one aggregated ``GetNbrs`` RPC per owner,
then an *intersect* stage that runs the multiway intersections against
local adjacency and sealed cache entries (zero-copy reads).  Setting
``two_stage=False`` (the Cncr-LRU ablation) degrades to per-miss RPCs
issued from inside the intersect loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..obs.trace import NULL_TRACER
from .batch import Batch
from .cache import LRBUCache, LRUCache
from .dataflow import ExtendSpec, JoinSpec, ScanSpec
from .kernels import (chain_add, chained_costs, chunk_charges,
                      edge_composite_index, fused_extend_candidates,
                      fused_verify_mask, hash_destinations,
                      intersect_sorted, join_pairs, log2_plus2_table)

__all__ = ["ExecContext", "ScanOp", "ExtendOp", "SinkConsumer", "JoinBuffer",
           "join_stream", "Batch", "Tuple"]

Tuple = tuple[int, ...]
Cache = LRBUCache | LRUCache


class ExecContext:
    """Shared execution state for one engine run."""

    def __init__(self, cluster: Cluster, caches: Sequence[Cache],
                 two_stage: bool, batch_size: int, tracer=None):
        self.cluster = cluster
        self.caches = list(caches)
        # hit/miss accounting is charged once, through the cache's own
        # stats, and forwarded to the run metrics from there
        for machine, cache in enumerate(self.caches):
            cache.stats.bind(cluster.metrics, machine)
        self.two_stage = two_stage
        self.batch_size = batch_size
        self.metrics = cluster.metrics
        self.cost = cluster.cost
        #: per-vertex labels of the data graph (None for unlabelled)
        self.labels = cluster.labels
        self._edge_index: np.ndarray | None = None
        self._log2_table: np.ndarray | None = None
        #: total ops spent in fetch stages (Table 5's t_f)
        self.fetch_ops = 0.0
        #: span tracer (the no-op tracer unless the run is being traced)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: segment identity -> index, for stable operator ids in traces
        self.seg_ids: dict[int, int] = {}

    def release_caches(self) -> None:
        """Release all sealed cache entries (end of batch, Algorithm 4 l.20)."""
        for cache in self.caches:
            cache.release()

    def edge_index(self) -> np.ndarray:
        """Sorted composite edge keys ``u * n + v`` of the whole data graph.

        Because CSR stores neighbours grouped by ascending ``u`` with each
        adjacency sorted, the composite array is globally sorted as built —
        one binary search answers "is ``v`` adjacent to ``u``" for any pair,
        which lets the intersect stage test all candidate memberships of a
        batch with a single vectorised ``searchsorted``.
        """
        if self._edge_index is None:
            self._edge_index = edge_composite_index(
                self.cluster.pgraph.graph)
        return self._edge_index

    def log2_table(self) -> np.ndarray:
        """``math.log2(d + 2)`` for every possible degree ``d``.

        The intersection cost formula charges ``small * log2(other + 2)``
        per extra list; indexing this table reproduces ``math.log2``'s
        exact float results (``np.log2`` may differ in the last ulp)."""
        if self._log2_table is None:
            self._log2_table = log2_plus2_table(self.cluster.pgraph.graph)
        return self._log2_table


class ScanOp:
    """Edge SCAN: emits matches of a single query edge from the local
    partition.  Input batches are lists of local pivot vertices."""

    def __init__(self, spec: ScanSpec, ctx: ExecContext):
        self.spec = spec
        self.ctx = ctx
        self.out_arity = 2

    def process(self, machine: int,
                pivots: Sequence[int]) -> tuple[Batch, list[float], int]:
        """Expand each pivot ``u`` into rows ``(u, v)`` for its neighbours
        ``v`` passing the symmetry order filter.

        Pivots are normally local; pivots re-homed by inter-machine work
        stealing are remote, and their adjacency is pulled with one
        aggregated ``GetNbrs`` RPC for the chunk.  Emission is columnar:
        pivot columns via ``np.repeat``, neighbour columns concatenated.
        """
        cost = self.ctx.cost
        pg = self.ctx.cluster.pgraph
        order = self.spec.order
        labels = self.ctx.labels
        pivot_label, nbr_label = self.spec.labels
        parr = np.asarray(pivots, dtype=np.int64)
        remote_mask = (pg.owner[parr] != machine) if len(parr) else parr
        remote = [int(u) for u in parr[remote_mask]] if len(parr) else []
        pulled = self.ctx.cluster.get_nbrs(machine, remote) if remote else {}
        us: list[int] = []
        counts: list[int] = []
        vs_parts: list[np.ndarray] = []
        item_costs: list[float] = []
        for u in parr.tolist():
            if (pivot_label is not None and labels is not None
                    and labels[u] != pivot_label):
                item_costs.append(cost.scan_op)
                continue
            nbrs = pulled.get(u)
            if nbrs is None:
                nbrs = pg.neighbours_local(u, machine)
            if order == "lt":
                vs = nbrs[nbrs > u]
            elif order == "gt":
                vs = nbrs[nbrs < u]
            else:
                vs = nbrs
            if nbr_label is not None and labels is not None:
                vs = vs[labels[vs] == nbr_label]
            us.append(u)
            counts.append(len(vs))
            vs_parts.append(vs)
            item_costs.append(len(nbrs) * cost.scan_op
                              + len(vs) * 2 * cost.emit_op)
        if vs_parts:
            u_col = np.repeat(np.asarray(us, dtype=np.int64),
                              np.asarray(counts))
            v_col = np.concatenate(vs_parts)
            out = Batch(np.column_stack((u_col, v_col)))
        else:
            out = Batch.empty(2)
        return out, item_costs, 0


class ExtendOp:
    """PULL-EXTEND (Algorithm 4): two-stage fetch + intersect."""

    def __init__(self, spec: ExtendSpec, ctx: ExecContext, opid: str = ""):
        self.spec = spec
        self.ctx = ctx
        self.out_arity = len(spec.out_schema)
        self.opid = opid

    # -- fetch stage --------------------------------------------------------------

    def _fetch(self, machine: int, rows: np.ndarray) -> None:
        """Collect the batch's remote extend vertices, seal hits, pull the
        misses with one aggregated RPC per owner, insert + seal them."""
        ctx = self.ctx
        pg = ctx.cluster.pgraph
        cache = ctx.caches[machine]
        tracer = ctx.tracer
        if tracer.enabled:
            t0 = tracer.now(machine)
            evictions0 = cache.stats.evictions
            overflow0 = cache.stats.max_overflow_ids
        # row-major over the extend columns: the same insertion sequence
        # the scalar loop produced, so the set's iteration order (which
        # drives seal/fetch order and therefore eviction behaviour) is
        # reproduced exactly
        seq = rows[:, list(self.spec.ext)].ravel()
        if len(seq):
            seq = seq[pg.owner[seq] != machine]
        remote: set[int] = set(seq.tolist())
        fetch: list[int] = []
        hits = 0
        for u in remote:
            if cache.contains(u):
                cache.seal(u)
                hits += 1
            else:
                fetch.append(u)
        if fetch:
            fetched = ctx.cluster.get_nbrs(machine, fetch)
            for u, nbrs in fetched.items():
                cache.insert(u, nbrs)
                cache.seal(u)
        cache.stats.count(hits=hits, misses=len(fetch))
        ops = (len(remote) * 2.0  # contains + seal bookkeeping
               + sum(1 + len(ctx.cluster.pgraph.graph.neighbours(u))
                     for u in fetch) * 0.5)  # single-writer inserts
        ctx.metrics.charge_ops(machine, ops)
        ctx.fetch_ops += ops
        if tracer.enabled:
            tracer.complete("fetch", machine, t0, tracer.now(machine),
                            {"op": self.opid, "remote": len(remote),
                             "hits": hits, "misses": len(fetch)})
            tracer.counter("cache occupancy", machine,
                           {"ids": cache.size_ids})
            if cache.stats.evictions > evictions0:
                tracer.instant("cache evict", machine,
                               {"n": cache.stats.evictions - evictions0,
                                "occupancy_ids": cache.size_ids})
            if cache.stats.max_overflow_ids > overflow0:
                tracer.instant("cache overflow", machine,
                               {"ids": cache.stats.max_overflow_ids})

    # -- intersect stage ------------------------------------------------------------

    def _neighbour_list(self, machine: int, u: int,
                        penalties: list[float]) -> np.ndarray | None:
        """Adjacency of ``u``: local partition read, sealed cache read, or
        (two-stage disabled) an on-demand per-miss RPC."""
        ctx = self.ctx
        pg = ctx.cluster.pgraph
        if pg.owner_of(u) == machine:
            return pg.neighbours_local(u, machine)
        cache = ctx.caches[machine]
        if cache.contains(u):
            nbrs = cache.get(u)
            penalties.append(cache.access_penalty(u))
            if not ctx.two_stage:
                # under two-stage execution the fetch stage already counted
                # this vertex; only per-miss mode counts intersect reads
                cache.stats.count(hits=1)
            return nbrs
        if ctx.two_stage:
            # the fetch stage guarantees presence; reaching here means the
            # entry was evicted mid-batch, which LRBU sealing forbids
            raise AssertionError(
                f"vertex {u} missing from cache during intersect stage")
        fetched = ctx.cluster.get_nbrs(machine, [u])
        nbrs = fetched[u]
        cache.insert(u, nbrs)
        penalties.append(cache.access_penalty(u))
        cache.stats.count(misses=1)
        return nbrs

    def process(self, machine: int, batch,
                count_only: bool = False) -> tuple[Batch, list[float], int]:
        """Run fetch + intersect for one batch.

        Returns ``(output_batch, per_input_row_costs, count)``.  With
        ``count_only`` (the compression optimisation of [63], applied to
        the final operator before the SINK) valid extensions are counted
        without materialising rows — only the count is returned.

        Under two-stage execution the intersect stage is fully columnar
        (:meth:`_process_vector`); per-miss mode keeps the row-at-a-time
        path because each cache access there has per-access side effects
        (hit counting, insert-order-dependent eviction) that are part of
        the modelled behaviour.
        """
        ctx = self.ctx
        spec = self.spec
        in_arity = (self.out_arity if spec.is_verify else self.out_arity - 1)
        batch = Batch.coerce(batch, in_arity)
        rows = batch.rows
        if ctx.two_stage:
            self._fetch(machine, rows)
            out, item_costs, counted = self._process_vector(
                machine, rows, count_only)
            ctx.caches[machine].release()
            return out, item_costs, counted
        return self._process_rowwise(machine, rows, count_only)

    def _process_rowwise(self, machine: int, rows: np.ndarray,
                         count_only: bool) -> tuple[Batch, list[float], int]:
        """Tuple-at-a-time intersect stage (per-miss cache mode)."""
        ctx = self.ctx
        cost = ctx.cost
        spec = self.spec
        in_arity = (self.out_arity if spec.is_verify else self.out_arity - 1)
        n = len(rows)
        counted = 0
        item_costs: list[float] = []
        ext = spec.ext
        labels = ctx.labels
        emit_step = cost.emit_op if count_only else (
            (in_arity + 1) * cost.emit_op)
        keep_rows: list[int] = []       # verify: surviving row indices
        ext_counts = np.zeros(n, dtype=np.int64)
        ext_parts: list[np.ndarray] = []
        lt = spec.candidate_lt
        gt = spec.candidate_gt
        for i in range(n):
            penalties: list[float] = []
            lists: list[np.ndarray] = []
            for d in ext:
                nbrs = self._neighbour_list(machine, int(rows[i, d]),
                                            penalties)
                lists.append(nbrs)
            lists.sort(key=len)
            cand = lists[0]
            for other in lists[1:]:
                if len(cand) == 0:
                    break
                cand = intersect_sorted(cand, other)
            ops = cost.intersection_ops([len(l) for l in lists]) + sum(penalties)
            if (spec.new_label is not None and labels is not None
                    and len(cand)):
                cand = cand[labels[cand] == spec.new_label]

            if spec.is_verify:
                target = rows[i, spec.verify_pos]
                j = int(np.searchsorted(cand, target))
                if j < len(cand) and cand[j] == target:
                    if count_only:
                        counted += 1
                        ops += cost.emit_op
                    else:
                        keep_rows.append(i)
                        ops += in_arity * cost.emit_op
            elif len(cand):
                # vectorised distinctness + symmetry masks replacing the
                # per-candidate `v in f` / any() scans
                keep = ~(cand[:, None] == rows[i][None, :]).any(axis=1)
                for p in lt:
                    keep &= cand < rows[i, p]
                for p in gt:
                    keep &= cand > rows[i, p]
                kept = cand[keep]
                c = len(kept)
                if c:
                    if count_only:
                        counted += c
                    else:
                        ext_counts[i] = c
                        ext_parts.append(kept)
                    # the scalar loop charged emit_step once per emitted
                    # candidate; replicate the repeated-addition chain
                    ops = chain_add(ops, emit_step, c)
            item_costs.append(ops)

        if spec.is_verify:
            out = Batch(rows[keep_rows]) if keep_rows else Batch.empty(
                self.out_arity)
        elif ext_parts:
            rep = np.repeat(np.arange(n), ext_counts)
            out = Batch(np.column_stack(
                (rows[rep], np.concatenate(ext_parts))))
        else:
            out = Batch.empty(self.out_arity)
        return out, item_costs, counted

    def _intersect_base_costs(self, machine: int,
                              rows: np.ndarray) -> tuple[np.ndarray, ...]:
        """Per-row intersection base costs and extend-vertex table.

        Returns ``(verts, lens, order, base)`` where ``verts`` is the
        ``(n, W)`` extend-vertex matrix, ``lens`` the adjacency lengths,
        ``order`` the stable by-length sort order of each row's lists and
        ``base`` the per-row float cost (multiway-intersection ops plus
        cache access penalties) — every elementwise operation mirrors the
        scalar formula so the floats are bit-identical.
        """
        ctx = self.ctx
        cost = ctx.cost
        pg = ctx.cluster.pgraph
        g = pg.graph
        cache = ctx.caches[machine]
        n = len(rows)
        W = len(self.spec.ext)
        verts = rows[:, list(self.spec.ext)]
        uniq, inv = np.unique(verts, return_inverse=True)
        inv = inv.reshape(n, W)
        pen_u = np.zeros(len(uniq))
        for j in np.flatnonzero(pg.owner[uniq] != machine).tolist():
            u = int(uniq[j])
            if not cache.contains(u):
                # the fetch stage guarantees presence; a miss here means
                # the entry was evicted mid-batch, which sealing forbids
                raise AssertionError(
                    f"vertex {u} missing from cache during intersect stage")
            pen_u[j] = cache.access_penalty(u)
        deg_u = g.indptr[uniq + 1] - g.indptr[uniq]
        lens = deg_u[inv]
        order = np.argsort(lens, axis=1, kind="stable")
        lens_sorted = np.take_along_axis(lens, order, axis=1)
        smallest = lens_sorted[:, 0]
        # ops = small*c, then += small*log2(other+2)*c per further list —
        # the same IEEE operation sequence as CostModel.intersection_ops
        base = smallest * cost.intersect_op
        log2t = ctx.log2_table()
        for w in range(1, W):
            base = base + (smallest * log2t[lens_sorted[:, w]]
                           ) * cost.intersect_op
        base = base + pen_u[inv].sum(axis=1)
        return verts, lens, order, base

    def _process_vector(self, machine: int, rows: np.ndarray,
                        count_only: bool) -> tuple[Batch, list[float], int]:
        """Columnar intersect stage (two-stage execution).

        Candidate sets are gathered straight from the global CSR (cached
        remote adjacency is the same data by construction) and the whole
        fetch/intersect chain runs as one fused kernel pass — every
        membership test of the batch collapses into a single
        ``searchsorted`` against the composite edge index.
        """
        ctx = self.ctx
        cost = ctx.cost
        spec = self.spec
        g = ctx.cluster.pgraph.graph
        in_arity = (self.out_arity if spec.is_verify else self.out_arity - 1)
        n = len(rows)
        if n == 0:
            return Batch.empty(self.out_arity), [], 0
        labels = ctx.labels
        verts, lens, order, base = self._intersect_base_costs(machine, rows)

        if spec.is_verify:
            targets = rows[:, spec.verify_pos]
            found = fused_verify_mask(ctx.edge_index(), g.num_vertices,
                                      verts, targets, labels, spec.new_label)
            counted = int(found.sum()) if count_only else 0
            step = cost.emit_op if count_only else in_arity * cost.emit_op
            item_costs = np.where(found, base + step, base).tolist()
            out = (Batch.empty(self.out_arity) if count_only
                   else Batch(rows[found]))
            return out, item_costs, counted

        cand, row_ids, counts = fused_extend_candidates(
            g.indptr, g.indices, ctx.edge_index(), g.num_vertices, rows,
            np.take_along_axis(verts, order, axis=1),
            spec.candidate_lt, spec.candidate_gt, labels, spec.new_label)

        emit_step = cost.emit_op if count_only else (
            (in_arity + 1) * cost.emit_op)
        item_costs = chained_costs(base, counts, emit_step).tolist()
        if count_only:
            return Batch.empty(self.out_arity), item_costs, int(len(cand))
        if len(cand):
            out = Batch(np.column_stack((rows[row_ids], cand)))
        else:
            out = Batch.empty(self.out_arity)
        return out, item_costs, 0


class SinkConsumer:
    """SINK: counts (and optionally collects) final results (§4.2)."""

    def __init__(self, schema: tuple[int, ...], collect: bool = False):
        self.schema = schema
        self.collect = collect
        self.count = 0
        self._collected: list[np.ndarray] = []

    def consume(self, machine: int, batch) -> None:
        """Absorb one batch of final results."""
        self.count += len(batch)
        if self.collect and len(batch):
            self._collected.append(
                Batch.coerce(batch, len(self.schema)).rows)

    def consume_count(self, machine: int, n: int) -> None:
        """Absorb a compressed (count-only) result contribution."""
        self.count += n

    def matches(self) -> list[Tuple]:
        """Collected matches reordered to query-vertex order (f(0), f(1), …)."""
        if not self.collect:
            raise ValueError("sink was not collecting results")
        perm = sorted(range(len(self.schema)), key=lambda i: self.schema[i])
        if not self._collected:
            return []
        rows = np.concatenate(self._collected)
        return [tuple(r) for r in rows[:, perm].tolist()]


class JoinBuffer:
    """One side of a buffered PUSH-JOIN (§4.3).

    Consumes a segment's output, shuffles each row to the machine owning
    its join key (hash partitioning via the router) and buffers it there.
    When a machine's buffer exceeds the in-memory threshold the overflow is
    externally sorted and spilled: memory stays bounded at the threshold
    while sort ops and spilled bytes are charged.  Buffers are columnar:
    per-machine lists of row-array slices, concatenated once at join time.
    """

    def __init__(self, ctx: ExecContext, key_pos: tuple[int, ...],
                 arity: int, buffer_tuples: int):
        self.ctx = ctx
        self.key_pos = key_pos
        self.arity = arity
        self.buffer_tuples = buffer_tuples
        k = ctx.cluster.num_machines
        self._parts: list[list[np.ndarray]] = [[] for _ in range(k)]
        self._counts = [0] * k
        self._in_memory = [0] * k
        self.total = 0

    def destination(self, f: Sequence[int]) -> int:
        """Machine owning the join key of one row (hash partitioning)."""
        return hash(tuple(int(f[p]) for p in self.key_pos)) % len(self._parts)

    def rows_for(self, machine: int) -> np.ndarray:
        """A machine's buffered rows as one contiguous array."""
        parts = self._parts[machine]
        if not parts:
            return np.empty((0, self.arity), dtype=np.int64)
        if len(parts) > 1:
            self._parts[machine] = parts = [np.concatenate(parts)]
        return parts[0]

    def tuples_on(self, machine: int) -> int:
        """Number of rows buffered on ``machine``."""
        return self._counts[machine]

    def consume(self, machine: int, batch) -> None:
        """Shuffle one batch into the per-machine buffers."""
        batch = Batch.coerce(batch, self.arity)
        if not len(batch):
            return
        ctx = self.ctx
        cost = ctx.cost
        tracer = ctx.tracer
        rows = batch.rows
        dests = hash_destinations(rows[:, list(self.key_pos)],
                                  len(self._parts))
        # per-destination charging in first-occurrence order — the order
        # the scalar loop discovered destinations in
        uniq, first = np.unique(dests, return_index=True)
        self.total += len(batch)
        tuple_bytes = self.arity * cost.bytes_per_id
        for dest in uniq[np.argsort(first, kind="stable")].tolist():
            mask = dests == dest
            part = rows[mask]
            n = len(part)
            self._parts[dest].append(part)
            self._counts[dest] += n
            traced = tracer.enabled and dest != machine
            if traced:
                t0 = tracer.now(dest)
            ctx.cluster.push(machine, dest, n, self.arity)
            ctx.metrics.alloc(dest, n * tuple_bytes)
            self._in_memory[dest] += n
            if self._in_memory[dest] > self.buffer_tuples:
                spill = self._in_memory[dest] - self.buffer_tuples
                # external merge sort of the spilled run, then write out
                ctx.metrics.charge_ops(
                    dest, spill * cost.sort_op * max(
                        1.0, np.log2(max(2, spill))))
                ctx.metrics.record_spill(dest, spill * tuple_bytes)
                ctx.metrics.free(dest, spill * tuple_bytes)
                self._in_memory[dest] = self.buffer_tuples
            if traced:
                tracer.complete("shuffle recv", dest, t0, tracer.now(dest),
                                {"from": machine, "tuples": n})

    def release(self, machine: int) -> None:
        """Free a machine's buffered memory after the join consumed it."""
        cost = self.ctx.cost
        self.ctx.metrics.free(
            machine, self._in_memory[machine] * self.arity * cost.bytes_per_id)
        self._in_memory[machine] = 0
        self._parts[machine] = []
        self._counts[machine] = 0


def join_stream(ctx: ExecContext, spec: JoinSpec, left: JoinBuffer,
                right: JoinBuffer, machine: int, batch_size: int,
                opid: str = ""):
    """Local hash join of the two buffered sides on ``machine``.

    Builds on the smaller side, probes with the larger, applies the
    cross-side distinctness and symmetry filters, and yields output batches
    of at most ``batch_size`` rows.  Per-probe worker costs are returned
    through the scheduler path (the caller charges them).
    """
    try:
        yield from _join_stream_inner(ctx, spec, left, right, machine,
                                      batch_size, opid)
    finally:
        # release in a finally so an abandoned generator (early error or
        # termination upstream) cannot leak the buffered memory from the
        # ledger: generator close/GC still frees both sides exactly once
        left.release(machine)
        right.release(machine)


def _join_stream_inner(ctx: ExecContext, spec: JoinSpec, left: JoinBuffer,
                       right: JoinBuffer, machine: int, batch_size: int,
                       opid: str = ""):
    cost = ctx.cost
    tracer = ctx.tracer
    lrows = left.rows_for(machine)
    rrows = right.rows_for(machine)
    build_left = len(lrows) <= len(rrows)
    build, probe = (lrows, rrows) if build_left else (rrows, lrows)
    build_key, probe_key = ((spec.left_key, spec.right_key) if build_left
                            else (spec.right_key, spec.left_key))

    if tracer.enabled:
        t_seg = tracer.now(machine)
    build_idx, probe_idx = join_pairs(build, probe, build_key, probe_key)
    ctx.metrics.charge_ops(machine, len(build) * cost.hash_build_op)
    if tracer.enabled:
        tracer.complete("build", machine, t_seg, tracer.now(machine),
                        {"op": opid, "tuples": len(build)})
        t_seg = tracer.now(machine)

    out_arity = len(spec.out_schema)
    brows = build[build_idx]
    prows = probe[probe_idx]
    lf, rf = (brows, prows) if build_left else (prows, brows)
    joined = np.concatenate((lf, rf[:, list(spec.right_carry)]), axis=1)
    keep = np.ones(len(joined), dtype=bool)
    for i, j in spec.cross_distinct:
        keep &= joined[:, i] != joined[:, j]
    for i, j in spec.cross_conditions:
        keep &= joined[:, i] < joined[:, j]
    emitted = joined[keep]
    emit_per_probe = np.bincount(probe_idx[keep], minlength=len(probe))
    total = len(emitted)

    charges = chunk_charges(emit_per_probe, total, batch_size,
                            cost.hash_probe_op, out_arity * cost.emit_op)
    num_full = total // batch_size
    for c in range(num_full):
        ctx.metrics.charge_ops(machine, charges[c])
        if tracer.enabled:
            tracer.complete("probe", machine, t_seg, tracer.now(machine),
                            {"op": opid})
        yield Batch(emitted[c * batch_size:(c + 1) * batch_size])
        # the clock advanced while the consumer ran; restart the probe
        # span at the resume point or it would straddle the consumer's
        # own spans and break strict nesting
        if tracer.enabled:
            t_seg = tracer.now(machine)
    ctx.metrics.charge_ops(machine, charges[num_full])
    if tracer.enabled:
        tracer.complete("probe", machine, t_seg, tracer.now(machine),
                        {"op": opid})
    if total % batch_size:
        yield Batch(emitted[num_full * batch_size:])
