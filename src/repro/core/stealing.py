"""Two-layer work stealing (paper §5.3).

*Intra-machine*: each worker owns a deque of partial results; idle workers
steal half from the front of a random busy deque.  In the simulation,
work-item costs are known once the batch is processed, so stealing is
modelled by its steady-state effect: near-perfect balancing of item costs
across the machine's workers (LPT assignment), while disabled stealing
assigns contiguous chunks — preserving the skew the paper observes when
load is distributed "based on the firstly matched vertex".

*Inter-machine*: a machine that exhausts its own input steals unprocessed
batches from the input channel of the top-most unfinished operator of a
busy machine (the ``StealWork`` RPC), paying the transfer bytes.  The
``region-group`` mode (the HUGE-RGP ablation of Exp-8) only redistributes
at the initial SCAN level, as RADS' static region groups do.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Sequence, TypeVar

__all__ = ["STEALING_MODES", "chunked_distribution",
           "distribute_to_workers", "rebalance"]

#: Accepted stealing modes: full two-layer stealing, none (HUGE-NOSTL),
#: or scan-level-only region groups (HUGE-RGP).
STEALING_MODES = ("full", "none", "region-group")

T = TypeVar("T")


def distribute_to_workers(item_costs: Sequence[float], workers: int,
                          stealing: bool, assign_key: int = 0) -> list[float]:
    """Split a batch's per-item costs across ``workers``.

    With stealing, items land on the currently least-loaded worker
    (longest-processing-time greedy — the steady state of steal-half
    deques).  Without stealing, work is "distributed based on the firstly
    matched vertex" (paper §5.3): ``assign_key`` — the batch's pivot
    vertex — picks the worker, so every batch descending from a hub pivot
    lands on the same worker.  That is the skew Exp-8 measures for
    HUGE-NOSTL.
    """
    totals = [0.0] * workers
    if not item_costs:
        return totals
    if workers == 1:
        totals[0] = float(sum(item_costs))
        return totals
    if stealing:
        heap = [(0.0, w) for w in range(workers)]
        heapq.heapify(heap)
        for cost in sorted(item_costs, reverse=True):
            load, w = heapq.heappop(heap)
            load += cost
            totals[w] = load
            heapq.heappush(heap, (load, w))
    else:
        totals[assign_key % workers] = float(sum(item_costs))
    return totals


def chunked_distribution(item_costs: Sequence[float],
                         workers: int) -> list[float]:
    """Assign contiguous chunks of a whole task list to workers — how
    BENU/RADS statically pre-partition work by pivot-vertex ranges."""
    totals = [0.0] * workers
    if not item_costs:
        return totals
    chunk = (len(item_costs) + workers - 1) // workers
    # each worker's load is a left-to-right sum of its contiguous slice
    # (the last worker takes the tail), which is exactly what sum() does
    for w in range(workers - 1):
        totals[w] = float(sum(item_costs[w * chunk:(w + 1) * chunk]))
    totals[workers - 1] = float(sum(item_costs[(workers - 1) * chunk:]))
    return totals


def rebalance(queues: list[deque[T]], weight=len,
              threshold: float = 3.0) -> list[tuple[int, int, T]]:
    """Inter-machine stealing: move work off severely overloaded machines.

    ``queues[m]`` is machine ``m``'s input channel for the operator being
    scheduled; ``weight`` measures a batch (default: its tuple count).
    Stealing in the paper only happens when a machine *finishes* its own
    job, so in steady state batches move only under real skew: a transfer
    happens while the heaviest machine holds more than ``threshold×`` the
    lightest machine's load (plus the batch).  Donors keep at least one
    batch.  Returns the moves performed as ``(src, dst, batch)``; the
    batches are already re-homed in ``queues``.
    """
    k = len(queues)
    if k < 2:
        return []
    loads = [sum(weight(b) for b in q) for q in queues]
    if sum(loads) == 0:
        return []
    moves: list[tuple[int, int, T]] = []
    # bounded sweep: move the heaviest queue's front batch to the lightest
    # machine while the skew exceeds the stealing threshold
    for _ in range(16 * k):
        donor = max(range(k), key=loads.__getitem__)
        thief = min(range(k), key=loads.__getitem__)
        if donor == thief or len(queues[donor]) < 2:
            break
        batch = queues[donor][0]
        w = weight(batch)
        if loads[donor] - w < threshold * (loads[thief] + w):
            break  # skew not severe enough to pay the transfer
        queues[donor].popleft()
        queues[thief].append(batch)
        loads[donor] -= w
        loads[thief] += w
        moves.append((donor, thief, batch))
    return moves
