"""Columnar batches and bit-exact cost arithmetic for the hot path.

The runtime moves partial matches as 2-D ``int64`` arrays (one row per
partial match, one column per matched query vertex) wrapped in a thin
:class:`Batch`.  Vectorising the per-candidate work (distinctness,
symmetry masks, emission) removes the interpretation overhead of
tuple-at-a-time loops, but the *simulated* metrics must not move by a
single bit: experiment tables are derived from them, so the vectorised
operators must charge exactly the floating-point op totals the scalar
loops accumulated.

Two pieces make that possible:

* :func:`chain_add` — reproduces ``n`` repeated float additions
  (``ops += step`` per emitted tuple) in ``O(log)`` time.  Repeated
  addition is *not* ``base + n*step``: once partial sums cross a
  power-of-two boundary the addend no longer aligns with the
  accumulator's ulp and each step rounds.  ``chain_add`` jumps through
  the exactly-representable stretches and performs literal additions
  only at binade crossings.
* :func:`hash_destinations` — a vectorised replica of CPython's tuple
  hash (the xxHash-based ``tuplehash``), so columnar shuffles route rows
  to the same machines the scalar ``hash(tuple(...)) % k`` did.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Batch", "chain_add", "exact_chain_total", "hash_destinations"]

_MANT = 1 << 53  # integers below this are exactly representable in float64


class Batch:
    """A batch of partial matches: a 2-D ``int64`` array, one row each.

    The wrapper stays deliberately thin — operators work on ``.rows``
    directly — but it iterates and compares like the historical
    ``list[tuple[int, ...]]`` so call sites (and tests) that treat a
    batch as a sequence of tuples keep working.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2:
            raise ValueError(f"batch rows must be 2-D, got shape {rows.shape}")
        self.rows = rows

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls, arity: int) -> "Batch":
        """A zero-row batch of the given width."""
        return cls(np.empty((0, arity), dtype=np.int64))

    @classmethod
    def coerce(cls, obj, arity: int | None = None) -> "Batch":
        """Adopt an existing batch, a 2-D array, or a sequence of tuples."""
        if isinstance(obj, Batch):
            return obj
        if isinstance(obj, np.ndarray):
            return cls(obj)
        seq = list(obj)
        if not seq:
            return cls.empty(0 if arity is None else arity)
        return cls(np.asarray(seq, dtype=np.int64))

    # -- sequence protocol ---------------------------------------------------

    @property
    def arity(self) -> int:
        """Tuple width (number of matched query vertices)."""
        return self.rows.shape[1]

    def __len__(self) -> int:
        return self.rows.shape[0]

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for row in self.rows.tolist():
            yield tuple(row)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return Batch(self.rows[i])
        return tuple(self.rows[i].tolist())

    def __eq__(self, other) -> bool:
        if isinstance(other, Batch):
            return (self.rows.shape == other.rows.shape
                    and bool(np.array_equal(self.rows, other.rows)))
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    __hash__ = None  # mutable container

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Batch({len(self)}x{self.arity})"

    def tolist(self) -> list[tuple[int, ...]]:
        """Materialise as the historical list-of-tuples representation."""
        return [tuple(r) for r in self.rows.tolist()]

    def split(self, size: int) -> Iterator["Batch"]:
        """Yield consecutive slices (views) of at most ``size`` rows."""
        for i in range(0, len(self), size):
            yield Batch(self.rows[i:i + size])


# -- exact chained addition ----------------------------------------------------


def _as_grid(x: float) -> tuple[int, int]:
    """``x`` as ``(numerator, denominator)`` with a power-of-two denominator
    (finite floats always admit this form)."""
    return x.as_integer_ratio()


def chain_add(base: float, step: float, n: int) -> float:
    """The float result of ``n`` repeated additions ``base += step``.

    Bit-identical to the literal loop, in ``O(binade crossings)`` rather
    than ``O(n)``: while every partial sum is an integer multiple of the
    common grid below ``2**53``, additions are exact and the whole
    stretch collapses to closed form; at a boundary, one literal
    (rounding) addition is performed and the grid re-derived.

    Only the non-negative accumulation the cost model performs is
    supported (``base >= 0``, ``step >= 0``).
    """
    if n <= 0 or step == 0.0:
        return base
    if base < 0.0 or step < 0.0:  # pragma: no cover - cost model invariant
        raise ValueError("chain_add models non-negative cost accumulation")
    cur = float(base)
    ns, ds = _as_grid(float(step))
    remaining = n
    while remaining:
        if cur + step == cur:
            break  # absorbed: every further addition is a no-op
        nc, dc = _as_grid(cur)
        d = max(dc, ds)  # both are powers of two
        a = nc * (d // dc)
        b = ns * (d // ds)
        room = (_MANT - 1 - a) // b  # max steps with a + k*b < 2**53
        if room <= 0:
            cur = cur + step  # literal, rounding addition
            remaining -= 1
            continue
        k = room if room < remaining else remaining
        total = a + k * b  # exact: below 2**53, so is every partial sum
        cur = math.ldexp(float(total), -(d.bit_length() - 1))
        remaining -= k
    return cur


def exact_chain_total(parts: Sequence[tuple[float, int]]) -> float | None:
    """Total of an interleaved non-negative addition chain, if provably exact.

    ``parts`` lists ``(step, count)`` contributions to a chain that starts
    at ``0.0``.  When every step lies on a common power-of-two grid and
    the final (hence every partial) sum stays below ``2**53`` grid units,
    any interleaving of the additions is exact, so the order-free closed
    form equals the scalar chain.  Returns ``None`` when exactness cannot
    be guaranteed — the caller must replay the chain step by step.
    """
    den = 1
    nums: list[tuple[int, int, int]] = []
    for step, count in parts:
        if count <= 0 or step == 0.0:
            continue
        if step < 0.0:
            return None
        ns, ds = _as_grid(float(step))
        den = max(den, ds)
        nums.append((ns, ds, count))
    total = 0
    for ns, ds, count in nums:
        total += ns * (den // ds) * count
    if total >= _MANT:
        return None
    return math.ldexp(float(total), -(den.bit_length() - 1))


# -- CPython tuple-hash replication --------------------------------------------

_XXPRIME_1 = np.uint64(11400714785074694791)
_XXPRIME_2 = np.uint64(14029467366897019727)
_XXPRIME_5 = np.uint64(2870177450012600261)
_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)
_PYHASH_MODULUS = (1 << 61) - 1  # Mersenne prime; hash(v) == v below it


def _hash_rows_vector(keys: np.ndarray) -> np.ndarray:
    """xxHash-style ``tuplehash`` of each row (CPython >= 3.8)."""
    n, width = keys.shape
    acc = np.full(n, _XXPRIME_5, dtype=np.uint64)
    for j in range(width):
        lane = keys[:, j].astype(np.uint64)
        acc += lane * _XXPRIME_2
        acc = (acc << np.uint64(31)) | (acc >> np.uint64(33))
        acc *= _XXPRIME_1
    acc += np.uint64(width) ^ (_XXPRIME_5 ^ np.uint64(3527539))
    acc[acc == _U64_MAX] = np.uint64(1546275796)
    return acc.view(np.int64)


def _vector_hash_matches_interpreter() -> bool:
    """Self-check: does the replica agree with this interpreter's hash()?"""
    rng = np.random.default_rng(0)
    for width in (1, 2, 3):
        sample = rng.integers(0, 1 << 40, size=(8, width), dtype=np.int64)
        ours = _hash_rows_vector(sample)
        theirs = [hash(tuple(int(x) for x in row)) for row in sample]
        if ours.tolist() != theirs:
            return False
    return True


_VECTOR_HASH_OK = _vector_hash_matches_interpreter()


def hash_destinations(keys: np.ndarray, k: int) -> np.ndarray:
    """``hash(tuple(row)) % k`` for every row of ``keys``, vectorised.

    Falls back to per-row interpreter hashing when the xxHash replica
    does not match this interpreter (non-CPython, or ids at or above the
    ``2**61 - 1`` hash modulus where ``hash(v) != v``).
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if (_VECTOR_HASH_OK and
            (keys.size == 0 or int(keys.max()) < _PYHASH_MODULUS)):
        return _hash_rows_vector(keys) % k
    return np.asarray(
        [hash(tuple(int(x) for x in row)) % k for row in keys],
        dtype=np.int64).reshape(len(keys))
