"""Columnar batches for the hot path.

The runtime moves partial matches as 2-D ``int64`` arrays (one row per
partial match, one column per matched query vertex) wrapped in a thin
:class:`Batch`.  Vectorising the per-candidate work (distinctness,
symmetry masks, emission) removes the interpretation overhead of
tuple-at-a-time loops, but the *simulated* metrics must not move by a
single bit: experiment tables are derived from them, so the vectorised
operators must charge exactly the floating-point op totals the scalar
loops accumulated.  The arithmetic that makes that possible —
:func:`~repro.core.kernels.chain_add`,
:func:`~repro.core.kernels.exact_chain_total` and the tuple-hash replica
behind :func:`~repro.core.kernels.hash_destinations` — lives in
:mod:`repro.core.kernels`, shared with the baseline engines, and is
re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .kernels import chain_add, exact_chain_total, hash_destinations

__all__ = ["Batch", "chain_add", "exact_chain_total", "hash_destinations"]


class Batch:
    """A batch of partial matches: a 2-D ``int64`` array, one row each.

    The wrapper stays deliberately thin — operators work on ``.rows``
    directly — but it iterates and compares like the historical
    ``list[tuple[int, ...]]`` so call sites (and tests) that treat a
    batch as a sequence of tuples keep working.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2:
            raise ValueError(f"batch rows must be 2-D, got shape {rows.shape}")
        self.rows = rows

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls, arity: int) -> "Batch":
        """A zero-row batch of the given width."""
        return cls(np.empty((0, arity), dtype=np.int64))

    @classmethod
    def coerce(cls, obj, arity: int | None = None) -> "Batch":
        """Adopt an existing batch, a 2-D array, or a sequence of tuples."""
        if isinstance(obj, Batch):
            return obj
        if isinstance(obj, np.ndarray):
            return cls(obj)
        seq = list(obj)
        if not seq:
            return cls.empty(0 if arity is None else arity)
        return cls(np.asarray(seq, dtype=np.int64))

    # -- sequence protocol ---------------------------------------------------

    @property
    def arity(self) -> int:
        """Tuple width (number of matched query vertices)."""
        return self.rows.shape[1]

    def __len__(self) -> int:
        return self.rows.shape[0]

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for row in self.rows.tolist():
            yield tuple(row)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return Batch(self.rows[i])
        return tuple(self.rows[i].tolist())

    def __eq__(self, other) -> bool:
        if isinstance(other, Batch):
            return (self.rows.shape == other.rows.shape
                    and bool(np.array_equal(self.rows, other.rows)))
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    __hash__ = None  # mutable container

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Batch({len(self)}x{self.arity})"

    def tolist(self) -> list[tuple[int, ...]]:
        """Materialise as the historical list-of-tuples representation."""
        return [tuple(r) for r in self.rows.tolist()]

    def split(self, size: int) -> Iterator["Batch"]:
        """Yield consecutive slices (views) of at most ``size`` rows."""
        for i in range(0, len(self), size):
            yield Batch(self.rows[i:i + size])
