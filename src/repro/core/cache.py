"""LRBU cache (paper Algorithm 3) and the Table 5 ablation variants.

The pulling-based ``PULL-EXTEND`` operator caches remote adjacency lists.
The paper's **LRBU** (least-recent-batch-used) cache achieves lock-free and
zero-copy access through three structures:

* ``M_cache`` — vertex → neighbours map;
* ``S_free`` — an *ordered set* of evictable vertices (smallest order is
  evicted first; vertices released after a batch get an order larger than
  all existing entries, so eviction removes least-recent-batch entries);
* ``S_sealed`` — vertices pinned by the in-flight batch; never evicted.

``Insert`` may overflow capacity when ``S_free`` is empty, but by
construction the overflow never exceeds the number of distinct remote
vertices in one batch (tested invariant).

The ablation variants of Exp-6 differ only in the *access penalty* they
charge per read (memory copy, locking, LRU bookkeeping) and, for
``Cncr-LRU``, in disabling the two-stage execution (per-miss RPCs instead
of one aggregated fetch per batch).  All variants store real data and
return real adjacency arrays — penalties are cost-model charges, not
behavioural changes.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..cluster.cost import CostModel

__all__ = [
    "LRBUCache",
    "LRUCache",
    "CacheStats",
    "make_cache",
    "CACHE_VARIANTS",
]


class CacheStats:
    """Hit/miss/eviction/overflow counters for one cache instance.

    When bound to a :class:`~repro.cluster.metrics.Metrics` via
    :meth:`bind`, every :meth:`count` call is forwarded to
    ``Metrics.record_cache`` so the per-cache counters and the run-level
    ``RunReport`` hit rate are the same numbers by construction.
    """

    __slots__ = ("hits", "misses", "evictions", "max_overflow_ids",
                 "_metrics", "_machine")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.max_overflow_ids = 0
        self._metrics = None
        self._machine = 0

    def bind(self, metrics, machine: int) -> None:
        """Mirror all subsequent hit/miss counts into ``metrics``."""
        self._metrics = metrics
        self._machine = machine

    def count(self, hits: int = 0, misses: int = 0) -> None:
        """Record accesses — the single entry point for hit/miss accounting."""
        self.hits += hits
        self.misses += misses
        if self._metrics is not None:
            self._metrics.record_cache(self._machine, hits=hits, misses=misses)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRBUCache:
    """The least-recent-batch-used cache of Algorithm 3.

    Parameters
    ----------
    capacity_ids:
        Capacity in vertex-id units (an entry of ``d`` neighbours occupies
        ``d + 1`` units).  ``None`` means unbounded.
    copy_penalty / lock_penalty:
        Extra per-access op charges for the ``LRBU-Copy`` / ``LRBU-Lock``
        ablations; the plain LRBU charges neither (zero-copy, lock-free).
    cost:
        Cost model supplying the penalty weights.
    """

    #: whether PULL-EXTEND may use the two-stage (batched-fetch) strategy
    supports_two_stage = True

    def __init__(self, capacity_ids: int | None, cost: CostModel,
                 copy_penalty: bool = False, lock_penalty: bool = False):
        self._capacity = capacity_ids
        self._cost = cost
        self._copy = copy_penalty
        self._lock = lock_penalty
        self._data: dict[int, np.ndarray] = {}
        self._entry_ids: dict[int, int] = {}
        self._size_ids = 0
        self._free: OrderedDict[int, None] = OrderedDict()
        self._sealed: set[int] = set()
        self.stats = CacheStats()

    # -- Algorithm 3 methods -----------------------------------------------------

    def contains(self, vid: int) -> bool:
        """Read-only membership test (lock-free in the real system)."""
        return vid in self._data

    def get(self, vid: int) -> np.ndarray:
        """Read-only lookup; returns the stored adjacency array by reference.

        Returns the access-penalty ops the caller must charge (0 for plain
        LRBU) via :meth:`access_penalty` — callers combine the two so the
        data path stays allocation-free.
        """
        return self._data[vid]

    def access_penalty(self, vid: int) -> float:
        """Ops charged per :meth:`get` under this variant's ablation."""
        penalty = 0.0
        if self._copy:
            penalty += (len(self._data[vid]) + 1) * self._cost.cache_copy_op_per_id
        if self._lock:
            penalty += self._cost.cache_lock_op
        return penalty

    def insert(self, vid: int, neighbours: np.ndarray) -> None:
        """Insert a fetched entry, evicting least-recent-batch entries while
        the cache is full and ``S_free`` is non-empty (Algorithm 3 lines 5-8).

        The new entry enters ``S_sealed``: a vertex is only ever fetched
        because the in-flight batch needs it (Algorithm 4 lines 8-9), so it
        is pinned until the batch's ``release``.  The cache may therefore
        overflow capacity, but never by more than the footprint of one
        batch's remote vertices (§4.4).
        """
        if vid in self._data:
            # re-fetching means the batch needs it: pin it again (keeping
            # the stored data), then shed any overflow left over from a
            # previous batch — without this, the early return skips the
            # eviction loop and stale overflow persists past the §4.4
            # bound of one batch's pinned footprint
            self._free.pop(vid, None)
            self._sealed.add(vid)
            if self._capacity is not None:
                while self._size_ids > self._capacity and self._free:
                    victim, _ = self._free.popitem(last=False)
                    self._size_ids -= self._entry_ids.pop(victim)
                    del self._data[victim]
                    self.stats.evictions += 1
            return
        entry_ids = len(neighbours) + 1
        if self._capacity is not None:
            while self._size_ids + entry_ids > self._capacity and self._free:
                victim, _ = self._free.popitem(last=False)
                self._size_ids -= self._entry_ids.pop(victim)
                del self._data[victim]
                self.stats.evictions += 1
        self._data[vid] = neighbours
        self._entry_ids[vid] = entry_ids
        self._size_ids += entry_ids
        self._sealed.add(vid)
        if self._capacity is not None and self._size_ids > self._capacity:
            overflow = self._size_ids - self._capacity
            if overflow > self.stats.max_overflow_ids:
                self.stats.max_overflow_ids = overflow

    def seal(self, vid: int) -> None:
        """Pin ``vid`` for the in-flight batch (Algorithm 3 lines 9-10)."""
        self._free.pop(vid, None)
        self._sealed.add(vid)

    def release(self) -> None:
        """Unpin all sealed vertices, appending them to ``S_free`` with
        orders larger than all existing entries (Algorithm 3 lines 11-14)."""
        for vid in sorted(self._sealed):
            if vid in self._data:
                self._free[vid] = None  # OrderedDict append = largest order
        self._sealed.clear()

    # -- introspection -----------------------------------------------------------

    @property
    def size_ids(self) -> int:
        """Current occupancy in vertex-id units."""
        return self._size_ids

    @property
    def capacity_ids(self) -> int | None:
        """Configured capacity in vertex-id units."""
        return self._capacity

    @property
    def num_sealed(self) -> int:
        """Number of currently sealed entries."""
        return len(self._sealed)

    def __len__(self) -> int:
        return len(self._data)


class LRUCache:
    """A classic LRU cache (the ``LRU-Inf`` and ``Cncr-LRU`` ablations).

    Charges copy + lock + LRU-bookkeeping penalties on every access.  With
    ``capacity_ids=None`` it is ``LRU-Inf`` (the "official Rust LRU library
    with capacity set to the maximum integer" of Exp-6).  ``Cncr-LRU``
    additionally disables two-stage execution (``supports_two_stage`` is
    false) and pays a contention penalty scaled by the worker count.
    """

    def __init__(self, capacity_ids: int | None, cost: CostModel,
                 concurrent: bool = False, workers: int = 1):
        self._capacity = capacity_ids
        self._cost = cost
        self._concurrent = concurrent
        self._workers = max(1, workers)
        self._data: OrderedDict[int, np.ndarray] = OrderedDict()
        self._entry_ids: dict[int, int] = {}
        self._size_ids = 0
        self.stats = CacheStats()

    @property
    def supports_two_stage(self) -> bool:
        """Cncr-LRU models the paper's no-two-stage baseline."""
        return not self._concurrent

    def contains(self, vid: int) -> bool:
        """Membership test (counted as an access for LRU bookkeeping).

        A positive probe refreshes the entry's recency — the modelled LRU
        treats every access as a position update, so ``contains`` must
        ``move_to_end`` or eviction would pick victims by a stale order.
        """
        if vid in self._data:
            self._data.move_to_end(vid)
            return True
        return False

    def get(self, vid: int) -> np.ndarray:
        """Lookup + move-to-back (the LRU position update)."""
        self._data.move_to_end(vid)
        return self._data[vid]

    def access_penalty(self, vid: int) -> float:
        """Copy + lock + bookkeeping ops per access; contention-scaled for
        the concurrent variant."""
        cost = self._cost
        penalty = (len(self._data[vid]) + 1) * cost.cache_copy_op_per_id
        lock = cost.cache_lock_op
        if self._concurrent:
            # optimistic concurrent caches still serialise ~order-of-workers
            # bookkeeping under contention (paper cites ~30% of lock-free
            # read throughput)
            lock *= self._workers
        return penalty + lock + cost.cache_update_op

    def insert(self, vid: int, neighbours: np.ndarray) -> None:
        """Insert with plain LRU eviction.

        Re-inserting a resident vid replaces the stored adjacency and
        re-accounts its occupancy (the old entry is retired first, so a
        stale array or stale ``_size_ids`` share can never linger), then
        refreshes recency like any other access.  The replacement itself
        is not counted as an eviction.
        """
        entry_ids = len(neighbours) + 1
        if vid in self._data:
            del self._data[vid]
            self._size_ids -= self._entry_ids.pop(vid)
        if self._capacity is not None:
            while self._size_ids + entry_ids > self._capacity and self._data:
                victim, _ = self._data.popitem(last=False)
                self._size_ids -= self._entry_ids.pop(victim)
                self.stats.evictions += 1
        self._data[vid] = neighbours
        self._entry_ids[vid] = entry_ids
        self._size_ids += entry_ids

    def seal(self, vid: int) -> None:
        """LRU has no pinning; sealing is a no-op."""

    def release(self) -> None:
        """LRU has no pinning; releasing is a no-op."""

    @property
    def size_ids(self) -> int:
        """Current occupancy in vertex-id units."""
        return self._size_ids

    @property
    def capacity_ids(self) -> int | None:
        """Configured capacity in vertex-id units."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)


#: Names accepted by :func:`make_cache` (the Table 5 columns).
CACHE_VARIANTS = ("lrbu", "lrbu-copy", "lrbu-lock", "lru-inf", "cncr-lru")


def make_cache(variant: str, capacity_ids: int | None, cost: CostModel,
               workers: int = 1) -> LRBUCache | LRUCache:
    """Build a cache by ablation name (see :data:`CACHE_VARIANTS`)."""
    v = variant.lower()
    if v == "lrbu":
        return LRBUCache(capacity_ids, cost)
    if v == "lrbu-copy":
        return LRBUCache(capacity_ids, cost, copy_penalty=True)
    if v == "lrbu-lock":
        return LRBUCache(capacity_ids, cost, copy_penalty=True, lock_penalty=True)
    if v == "lru-inf":
        return LRUCache(None, cost)
    if v == "cncr-lru":
        return LRUCache(capacity_ids, cost, concurrent=True, workers=workers)
    raise ValueError(f"unknown cache variant {variant!r}; "
                     f"choose from {CACHE_VARIANTS}")
