"""Cooperative cancellation for engine runs.

The scheduler (Algorithm 5's outer loop) polls the
:class:`CancelToken` attached to its :class:`SchedulerConfig` once per
scheduling round — the same granularity at which it already charges the
``sched_switch_op`` — so a long-running enumeration reacts to a client
cancel or an expired deadline within one operator round, without any
per-tuple overhead.

Cancellation surfaces as :class:`~repro.cluster.errors.QueryCancelledError`
propagating out of ``HugeEngine.run``: the run unwinds through the
ordinary exception path (``try/finally`` buffer releases), so the
simulated memory ledger stays balanced — the serving layer's memory
oracle depends on this.

Deadlines are *wall-clock* (``time.monotonic``), not simulated time: the
simulated budgets (``CostModel.time_budget_s``) bound the modelled
cluster, while tokens bound the real process hosting it (the serving
layer's per-query timeout).  A custom ``clock`` can be injected for
deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable

from ..cluster.errors import QueryCancelledError

__all__ = ["CancelToken", "QueryCancelledError"]


class CancelToken:
    """A poll-based cancellation flag with an optional wall-clock deadline.

    Thread-safe by construction: ``cancel`` only ever sets a flag, and
    ``check`` only reads, so no lock is needed (Python attribute stores
    are atomic).  Subclasses may override :meth:`on_poll` to observe the
    scheduler's poll points (the serving layer's fault injector uses this
    to crash a worker mid-run).
    """

    __slots__ = ("_cancelled", "_reason", "deadline", "_clock", "polls")

    def __init__(self, deadline: float | None = None,
                 clock: Callable[[], float] = time.monotonic):
        #: absolute deadline on ``clock``'s timeline (``None`` = no deadline)
        self.deadline = deadline
        self._clock = clock
        self._cancelled = False
        self._reason = "cancelled"
        #: number of times the scheduler has polled this token
        self.polls = 0

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; the run aborts at its next poll point."""
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether the token has fired (explicitly or via its deadline)."""
        if self._cancelled:
            return True
        if self.deadline is not None and self._clock() >= self.deadline:
            self._reason = "deadline exceeded"
            self._cancelled = True
        return self._cancelled

    @property
    def reason(self) -> str:
        """Why the token fired (meaningful once :attr:`cancelled`)."""
        return self._reason

    def on_poll(self) -> None:
        """Hook invoked at every scheduler poll before the cancel check."""

    def check(self) -> None:
        """Raise :class:`QueryCancelledError` if cancellation was requested.

        This is the scheduler's poll point; it must stay cheap on the
        not-cancelled path.
        """
        self.polls += 1
        self.on_poll()
        if self.cancelled:
            raise QueryCancelledError(self._reason)
