"""HUGE core: optimiser, hybrid dataflow operators, LRBU cache, adaptive
scheduler, work stealing — the paper's primary contribution."""

from .cache import CACHE_VARIANTS, CacheStats, LRBUCache, LRUCache, make_cache
from .cancel import CancelToken, QueryCancelledError
from .dataflow import ExtendSpec, JoinSpec, ScanSpec, Segment
from .engine import EngineConfig, EnumerationResult, HugeEngine
from .scheduler import SchedulerConfig, run_segment
from .stealing import STEALING_MODES, distribute_to_workers, rebalance
from . import plan

__all__ = [
    "CACHE_VARIANTS",
    "CacheStats",
    "CancelToken",
    "QueryCancelledError",
    "LRBUCache",
    "LRUCache",
    "make_cache",
    "ExtendSpec",
    "JoinSpec",
    "ScanSpec",
    "Segment",
    "EngineConfig",
    "EnumerationResult",
    "HugeEngine",
    "SchedulerConfig",
    "run_segment",
    "STEALING_MODES",
    "distribute_to_workers",
    "rebalance",
    "plan",
]
