"""Shared vectorised kernels with bit-exact cost arithmetic.

Both the HUGE runtime (:mod:`repro.core.operators`) and the baseline
engines (:mod:`repro.baselines`) vectorise their inner loops, yet the
*simulated* metrics they charge are the experiment results — they must
not move by a single bit relative to the historical tuple-at-a-time
loops.  This module is the one home of the machinery that makes that
possible:

* :func:`chain_add` / :func:`exact_chain_total` — reproduce repeated
  scalar float additions (``ops += step`` per emitted tuple) exactly, in
  closed form where provably safe and by binade-aware replay otherwise.
* :func:`hash_destinations` — a vectorised replica of CPython's tuple
  hash (the xxHash-based ``tuplehash``), so columnar shuffles route rows
  to the same machines the scalar ``hash(tuple(...)) % k`` did.
* :func:`edge_composite_index` / :func:`edge_member` — the whole data
  graph's edge set as one sorted ``u * n + v`` array, answering batched
  "is ``v`` adjacent to ``u``" membership tests with one
  ``searchsorted``.
* :func:`join_pairs` — grouped-argsort hash-join matching that emits
  (build row, probe row) pairs in the exact order of a scalar
  dict-of-buckets join.
* :func:`chunk_charges` / :func:`chained_costs` — replay the per-chunk /
  per-row op chains of the scalar loops without iterating per tuple.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "adjacency_bitsets",
    "chain_add",
    "chained_costs",
    "chunk_charges",
    "csr_gather",
    "edge_composite_index",
    "edge_member",
    "edge_member_rows",
    "exact_chain_total",
    "fused_extend_candidates",
    "fused_verify_mask",
    "hash_destinations",
    "induced_bitrows",
    "intersect_sorted",
    "join_pairs",
    "log2_plus2_table",
]

_MANT = 1 << 53  # integers below this are exactly representable in float64


# -- exact chained addition ----------------------------------------------------


def _as_grid(x: float) -> tuple[int, int]:
    """``x`` as ``(numerator, denominator)`` with a power-of-two denominator
    (finite floats always admit this form)."""
    return x.as_integer_ratio()


def chain_add(base: float, step: float, n: int) -> float:
    """The float result of ``n`` repeated additions ``base += step``.

    Bit-identical to the literal loop, in ``O(binade crossings)`` rather
    than ``O(n)``: while every partial sum is an integer multiple of the
    common grid below ``2**53``, additions are exact and the whole
    stretch collapses to closed form; at a boundary, one literal
    (rounding) addition is performed and the grid re-derived.

    Only the non-negative accumulation the cost model performs is
    supported (``base >= 0``, ``step >= 0``).
    """
    if n <= 0 or step == 0.0:
        return base
    if base < 0.0 or step < 0.0:  # pragma: no cover - cost model invariant
        raise ValueError("chain_add models non-negative cost accumulation")
    cur = float(base)
    ns, ds = _as_grid(float(step))
    remaining = n
    while remaining:
        if cur + step == cur:
            break  # absorbed: every further addition is a no-op
        nc, dc = _as_grid(cur)
        d = max(dc, ds)  # both are powers of two
        a = nc * (d // dc)
        b = ns * (d // ds)
        room = (_MANT - 1 - a) // b  # max steps with a + k*b < 2**53
        if room <= 0:
            cur = cur + step  # literal, rounding addition
            remaining -= 1
            continue
        k = room if room < remaining else remaining
        total = a + k * b  # exact: below 2**53, so is every partial sum
        cur = math.ldexp(float(total), -(d.bit_length() - 1))
        remaining -= k
    return cur


def exact_chain_total(parts: Sequence[tuple[float, int]],
                      base: float = 0.0) -> float | None:
    """Total of an interleaved non-negative addition chain, if provably exact.

    ``parts`` lists ``(step, count)`` contributions to a chain that starts
    at ``base`` (itself treated as the chain's first addition).  When
    every contribution lies on a common power-of-two grid and the final
    (hence every partial) sum stays below ``2**53`` grid units, any
    interleaving of the additions is exact, so the order-free closed form
    equals the scalar chain.  Returns ``None`` when exactness cannot be
    guaranteed — the caller must replay the chain step by step.
    """
    den = 1
    nums: list[tuple[int, int, int]] = []
    for step, count in [(base, 1), *parts]:
        if count <= 0 or step == 0.0:
            continue
        if step < 0.0:
            return None
        ns, ds = _as_grid(float(step))
        den = max(den, ds)
        nums.append((ns, ds, count))
    total = 0
    for ns, ds, count in nums:
        total += ns * (den // ds) * count
    if total >= _MANT:
        return None
    return math.ldexp(float(total), -(den.bit_length() - 1))


# -- CPython tuple-hash replication --------------------------------------------

_XXPRIME_1 = np.uint64(11400714785074694791)
_XXPRIME_2 = np.uint64(14029467366897019727)
_XXPRIME_5 = np.uint64(2870177450012600261)
_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)
_PYHASH_MODULUS = (1 << 61) - 1  # Mersenne prime; hash(v) == v below it


def _hash_rows_vector(keys: np.ndarray) -> np.ndarray:
    """xxHash-style ``tuplehash`` of each row (CPython >= 3.8)."""
    n, width = keys.shape
    acc = np.full(n, _XXPRIME_5, dtype=np.uint64)
    for j in range(width):
        lane = keys[:, j].astype(np.uint64)
        acc += lane * _XXPRIME_2
        acc = (acc << np.uint64(31)) | (acc >> np.uint64(33))
        acc *= _XXPRIME_1
    acc += np.uint64(width) ^ (_XXPRIME_5 ^ np.uint64(3527539))
    acc[acc == _U64_MAX] = np.uint64(1546275796)
    return acc.view(np.int64)


def _vector_hash_matches_interpreter() -> bool:
    """Self-check: does the replica agree with this interpreter's hash()?"""
    rng = np.random.default_rng(0)
    for width in (1, 2, 3):
        sample = rng.integers(0, 1 << 40, size=(8, width), dtype=np.int64)
        ours = _hash_rows_vector(sample)
        theirs = [hash(tuple(int(x) for x in row)) for row in sample]
        if ours.tolist() != theirs:
            return False
    return True


_VECTOR_HASH_OK = _vector_hash_matches_interpreter()


def hash_destinations(keys: np.ndarray, k: int) -> np.ndarray:
    """``hash(tuple(row)) % k`` for every row of ``keys``, vectorised.

    Falls back to per-row interpreter hashing when the xxHash replica
    does not match this interpreter (non-CPython, or ids at or above the
    ``2**61 - 1`` hash modulus where ``hash(v) != v``).
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if (_VECTOR_HASH_OK and
            (keys.size == 0 or int(keys.max()) < _PYHASH_MODULUS)):
        return _hash_rows_vector(keys) % k
    return np.asarray(
        [hash(tuple(int(x) for x in row)) % k for row in keys],
        dtype=np.int64).reshape(len(keys))


# -- adjacency membership -------------------------------------------------------


def intersect_sorted(cand: np.ndarray, other: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique id arrays, preserving order."""
    if len(cand) == 0 or len(other) == 0:
        return cand[:0]
    idx = other.searchsorted(cand)
    idx[idx == len(other)] = 0
    return cand[other[idx] == cand]


def edge_composite_index(graph) -> np.ndarray:
    """Sorted composite edge keys ``u * n + v`` of the whole data graph.

    Because CSR stores neighbours grouped by ascending ``u`` with each
    adjacency sorted, the composite array is globally sorted as built —
    one binary search answers "is ``v`` adjacent to ``u``" for any pair,
    which lets a batch's candidate membership tests collapse into a
    single vectorised ``searchsorted``.
    """
    cached = getattr(graph, "_composite", None)
    if cached is not None:
        return cached
    n = graph.num_vertices
    comp = (np.repeat(np.arange(n, dtype=np.int64),
                      np.diff(graph.indptr)) * n + graph.indices)
    try:
        # deterministic derived data, so caching on the immutable graph
        # is safe — and it lets every run (and every shm attach) share
        # one O(E) haystack instead of rebuilding it per engine
        graph._composite = comp
    except AttributeError:  # pragma: no cover - non-Graph duck types
        pass
    return comp


def edge_member(comp: np.ndarray, num_vertices: int, src: np.ndarray,
                dst: np.ndarray) -> np.ndarray:
    """Vectorised adjacency test against a composite edge index:
    is ``dst[i]`` a neighbour of ``src[i]``?"""
    if len(comp) == 0:
        return np.zeros(len(src), dtype=bool)
    q = src * num_vertices + dst
    idx = np.searchsorted(comp, q)
    idx[idx == len(comp)] = 0
    return comp[idx] == q


def edge_member_rows(comp: np.ndarray, num_vertices: int, srcs: np.ndarray,
                     dst: np.ndarray) -> np.ndarray:
    """Conjunction of adjacency tests across the columns of ``srcs``.

    Row ``i`` is ``True`` iff ``dst[i]`` is adjacent to **every**
    ``srcs[i, w]`` — the multiway-membership core of PULL-EXTEND's
    intersect stage, fused so all ``W`` columns resolve through **one**
    ``searchsorted`` over the stacked composite keys instead of ``W``
    separate :func:`edge_member` passes.  Bit-for-bit equal to ANDing the
    per-column results (boolean algebra has no rounding).
    """
    E, W = srcs.shape
    if E == 0 or W == 0:
        return np.ones(E, dtype=bool)
    if len(comp) == 0:
        return np.zeros(E, dtype=bool)
    q = (srcs * num_vertices + dst[:, None]).ravel()
    idx = np.searchsorted(comp, q)
    idx[idx == len(comp)] = 0
    return (comp[idx] == q).reshape(E, W).all(axis=1)


def csr_gather(indptr: np.ndarray, indices: np.ndarray,
               vids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated adjacency lists of ``vids`` straight from CSR.

    Returns ``(row_ids, flat)`` where ``flat`` is the neighbour ids of
    ``vids[0]``, then ``vids[1]``, … and ``row_ids[i]`` names the input
    row ``flat[i]`` came from — the candidate-list gather PULL-EXTEND
    starts from (each row's smallest adjacency list).
    """
    L = indptr[vids + 1] - indptr[vids]
    E = int(L.sum())
    row_ids = np.repeat(np.arange(len(vids), dtype=np.int64), L)
    ramp = np.arange(E, dtype=np.int64) - np.repeat(np.cumsum(L) - L, L)
    flat = indices[np.repeat(indptr[vids], L) + ramp]
    return row_ids, flat


def fused_verify_mask(comp: np.ndarray, num_vertices: int,
                      verts: np.ndarray, targets: np.ndarray,
                      labels: np.ndarray | None = None,
                      new_label: int | None = None) -> np.ndarray:
    """Fused VERIFY: does each row's target close every pattern edge?

    One stacked membership pass plus the label filter; replaces the
    per-extend-column :func:`edge_member` loop with identical output.
    """
    found = edge_member_rows(comp, num_vertices, verts, targets)
    if new_label is not None and labels is not None:
        found &= labels[targets] == new_label
    return found


def fused_extend_candidates(indptr: np.ndarray, indices: np.ndarray,
                            comp: np.ndarray, num_vertices: int,
                            rows: np.ndarray, verts_sorted: np.ndarray,
                            lt: Sequence[int], gt: Sequence[int],
                            labels: np.ndarray | None = None,
                            new_label: int | None = None,
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused PULL-EXTEND candidate pass: gather → membership → filters.

    ``verts_sorted`` is each row's extend vertices sorted by adjacency
    length (column 0 = the smallest list, the candidate source).  The
    whole chain — CSR gather, remaining-list membership (one stacked
    ``searchsorted``), label filter, distinctness against the partial
    match, and the ``lt``/``gt`` symmetry-order masks — runs as mask
    conjunctions over the gathered candidates with a **single** final
    compaction.  Because every mask is boolean and conjunction order
    cannot change the surviving set or its order, the returned
    ``(cand, row_ids, counts)`` are element-for-element identical to the
    historical multi-pass pipeline, so the per-row cost replay
    (:func:`chained_costs` over ``counts``) stays bit-identical.
    """
    n = len(rows)
    row_ids, cand = csr_gather(indptr, indices, verts_sorted[:, 0])
    keep = edge_member_rows(comp, num_vertices, verts_sorted[row_ids, 1:],
                            cand)
    if new_label is not None and labels is not None:
        keep &= labels[cand] == new_label
    keep &= ~(cand[:, None] == rows[row_ids]).any(axis=1)
    for p in lt:
        keep &= cand < rows[row_ids, p]
    for p in gt:
        keep &= cand > rows[row_ids, p]
    cand, row_ids = cand[keep], row_ids[keep]
    return cand, row_ids, np.bincount(row_ids, minlength=n)


def adjacency_bitsets(graph) -> list[int]:
    """Per-vertex neighbour bitmasks as arbitrary-precision python ints.

    ``adjacency_bitsets(g)[u]`` has bit ``v`` set iff ``(u, v)`` is an
    edge — the BitGraph idiom: one machine word per 64 vertices, so the
    ESU walk's set algebra (exclusive neighbourhoods, visited masks,
    candidate extensions) collapses into ``&``/``|``/``~`` on ints.  Rows
    are packed from the CSR arrays in one vectorised pass.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    mat = np.zeros((n, n), dtype=bool)
    mat[np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr)),
        graph.indices] = True
    packed = np.packbits(mat, axis=1, bitorder="little")
    buf = packed.tobytes()
    width = packed.shape[1]
    return [int.from_bytes(buf[i * width:(i + 1) * width], "little")
            for i in range(n)]


def induced_bitrows(masks: Sequence[int],
                    vertices: Sequence[int]) -> tuple[int, ...]:
    """Adjacency bit-rows of the subgraph induced by ``vertices``.

    ``vertices`` must be sorted; row ``i`` has bit ``j`` set iff
    ``(vertices[i], vertices[j])`` is an edge.  The rows are the compact
    subgraph encoding the census memoises: isomorphic subgraphs on
    *identical* local adjacency produce identical rows, so equal rows
    are a cache hit without touching the canonicaliser.
    """
    rows = []
    for v in vertices:
        m = masks[v]
        row = 0
        for j, u in enumerate(vertices):
            if (m >> u) & 1:
                row |= 1 << j
        rows.append(row)
    return tuple(rows)


def log2_plus2_table(graph) -> np.ndarray:
    """``math.log2(d + 2)`` for every possible degree ``d`` of ``graph``.

    The intersection cost formula charges ``small * log2(other + 2)``
    per extra list; indexing this table reproduces ``math.log2``'s exact
    float results (``np.log2`` may differ in the last ulp)."""
    max_deg = (int(np.diff(graph.indptr).max()) if graph.num_vertices
               else 0)
    return np.asarray([math.log2(d + 2) for d in range(max_deg + 1)])


# -- grouped hash-join matching -------------------------------------------------


def join_pairs(build: np.ndarray, probe: np.ndarray,
               build_key: tuple[int, ...], probe_key: tuple[int, ...]
               ) -> tuple[np.ndarray, np.ndarray]:
    """All (build row index, probe row index) key matches, emitted
    probe-major with build rows in insertion order within each bucket —
    the exact emission order of the scalar dict-of-buckets join."""
    nb = len(build)
    all_keys = np.concatenate(
        (build[:, list(build_key)], probe[:, list(probe_key)]))
    _, inv = np.unique(all_keys, axis=0, return_inverse=True)
    inv = inv.reshape(-1)
    build_gid, probe_gid = inv[:nb], inv[nb:]
    num_groups = int(inv.max()) + 1 if len(inv) else 0
    group_counts = np.bincount(build_gid, minlength=num_groups)
    # stable sort by group: within a group, ascending row index = the
    # order rows were inserted into the bucket
    build_order = np.argsort(build_gid, kind="stable")
    offsets = np.concatenate(([0], np.cumsum(group_counts)))
    per_probe = group_counts[probe_gid]
    total = int(per_probe.sum())
    probe_idx = np.repeat(np.arange(len(probe)), per_probe)
    ramp = np.arange(total) - np.repeat(
        np.cumsum(per_probe) - per_probe, per_probe)
    build_idx = build_order[np.repeat(offsets[probe_gid], per_probe) + ramp]
    return build_idx, probe_idx


# -- chunked / per-row chain replay ---------------------------------------------


def chunk_charges(emit_per_probe: np.ndarray, total: int, batch_size: int,
                  hash_op: float, emit_step: float,
                  base: float = 0.0) -> list[float]:
    """Per-chunk op charges replicating a scalar probe loop's chains.

    The scalar loop accumulated an op chain (``base`` to start, one
    ``hash_op`` per probe row, one ``emit_step`` per emitted row) and
    reset it after every ``batch_size`` emitted rows.  Chunk ``c``'s
    chain therefore contains the emits of rows ``[c*B, (c+1)*B)`` plus
    the hash charges of the probe rows first *reached* during that
    chunk.  A probe row is reached once all earlier rows' emissions are
    out, i.e. at emitted-tuple index ``T_p`` (the exclusive running sum
    of per-row emit counts).  ``base`` seeds chunk 0's chain only (a
    pre-loop charge such as the build-side hashing).
    """
    n_probe = len(emit_per_probe)
    num_full = total // batch_size
    n_chains = num_full + 1  # the last chain is the post-loop charge
    if n_probe:
        reached_at = np.cumsum(emit_per_probe) - emit_per_probe
        hash_chain = np.minimum(reached_at // batch_size, num_full)
        hash_counts = np.bincount(hash_chain, minlength=n_chains)
    else:
        hash_counts = np.zeros(n_chains, dtype=np.int64)
    # full chunks hold exactly batch_size emits; the residual the rest
    emit_counts = [batch_size] * num_full + [total - num_full * batch_size]
    charges: list[float] = []
    exact = True
    for c in range(n_chains):
        closed = exact_chain_total(
            [(hash_op, int(hash_counts[c])), (emit_step, emit_counts[c])],
            base=base if c == 0 else 0.0)
        if closed is None:
            exact = False
            break
        charges.append(closed)
    if exact:
        return charges
    # rare fallback (cost weights off the common power-of-two grid):
    # replay the interleaved chain row by row
    charges = [0.0] * n_chains
    ops = base
    chain = 0
    filled = 0
    for p in range(n_probe):
        ops += hash_op
        todo = int(emit_per_probe[p])
        while todo:
            take = min(todo, batch_size - filled)
            ops = chain_add(ops, emit_step, take)
            filled += take
            todo -= take
            if filled == batch_size and chain < num_full:
                charges[chain] = ops
                ops = 0.0
                chain += 1
                filled = 0
    charges[chain] = ops
    return charges


def chained_costs(base: np.ndarray, counts: np.ndarray,
                  step: float) -> np.ndarray:
    """``chain_add(base[i], step, counts[i])`` for every emitting row,
    deduplicated over distinct ``(base, count)`` pairs."""
    nz = np.flatnonzero(counts)
    if not len(nz):
        return base
    pairs = np.stack((base[nz].view(np.int64),
                      np.asarray(counts)[nz]), axis=1)
    uq, inv = np.unique(pairs, axis=0, return_inverse=True)
    vals = np.asarray([
        chain_add(float(np.int64(b).view(np.float64)), step, int(c))
        for b, c in uq.tolist()])
    out = base.copy()
    out[nz] = vals[inv]
    return out
