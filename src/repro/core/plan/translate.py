"""Execution-plan → dataflow translation (paper Algorithm 2 + §5.2 rewrites).

Pulling-based wco joins become ``PULL-EXTEND`` operators directly
(Algorithm 2 lines 12-18).  The two memory-hazardous constructs are
rewritten into ``PULL-EXTEND`` chains exactly as §5.2 prescribes:

* ``SCAN`` of a star ``(v; L)`` → an initial edge scan plus ``|L| − 1``
  extends rooted at ``v``;
* a pulling-based hash join with star ``(v'_r; L)`` → one *verification*
  extend over ``V1 = L ∩ V(q'_l)`` (with the "preserve only f where
  f(v'_r) = u_{i+1}" hint) followed by one extend per new leaf in
  ``V2 = L \\ V1``.

Symmetry-breaking conditions are attached to the earliest operator whose
output schema contains both endpoints, and injectivity checks to joins
(extends check candidates against the whole tuple natively).
"""

from __future__ import annotations

from ...cluster.errors import PlanError
from ...query.pattern import QueryGraph
from ...query.symmetry import PartialOrder
from ..dataflow import ExtendSpec, JoinSpec, ScanSpec, Segment
from .physical import CommMode, ExecutionPlan, JoinAlgorithm, PhysicalNode

__all__ = ["translate"]

Applied = frozenset[tuple[int, int]]


def _extend(schema: tuple[int, ...], ext: tuple[int, ...], new_vertex: int,
            conditions: PartialOrder, applied: set[tuple[int, int]],
            query: QueryGraph) -> ExtendSpec:
    """Build an extension operator, attaching newly checkable conditions
    and the new vertex's label constraint."""
    lt: list[int] = []
    gt: list[int] = []
    for (u, v) in conditions:
        if (u, v) in applied:
            continue
        if u == new_vertex and v in schema:
            lt.append(schema.index(v))
            applied.add((u, v))
        elif v == new_vertex and u in schema:
            gt.append(schema.index(u))
            applied.add((u, v))
    return ExtendSpec(ext=ext, out_schema=schema + (new_vertex,),
                      new_vertex=new_vertex,
                      candidate_lt=tuple(lt), candidate_gt=tuple(gt),
                      new_label=query.label(new_vertex))


def _verify(schema: tuple[int, ...], leaves: list[int],
            root: int) -> ExtendSpec:
    """Build a §5.2 verification extend for star edges root—leaves."""
    return ExtendSpec(
        ext=tuple(schema.index(v) for v in leaves),
        out_schema=schema,
        verify_pos=schema.index(root))


def _leaf_segment(node: PhysicalNode, conditions: PartialOrder,
                  applied: set[tuple[int, int]],
                  query: QueryGraph) -> Segment:
    """SCAN of a star join unit, rewritten per §5.2."""
    sub = node.sub
    root = sub.star_root()
    leaves = sorted(sub.vertices - {root})
    first = leaves[0]
    order = None
    if (root, first) in conditions:
        order = "lt"
        applied.add((root, first))
    elif (first, root) in conditions:
        order = "gt"
        applied.add((first, root))
    seg = Segment(source=ScanSpec(
        schema=(root, first), order=order,
        labels=(query.label(root), query.label(first))))
    schema = seg.out_schema
    for leaf in leaves[1:]:
        spec = _extend(schema, (schema.index(root),), leaf, conditions,
                       applied, query)
        seg.extends.append(spec)
        schema = spec.out_schema
    seg.out_schema = schema
    return seg


def _node_segment(node: PhysicalNode, conditions: PartialOrder,
                  applied: set[tuple[int, int]],
                  query: QueryGraph) -> Segment:
    if node.is_leaf:
        return _leaf_segment(node, conditions, applied, query)
    assert node.left is not None and node.right is not None
    setting = node.setting
    assert setting is not None

    if setting.comm is CommMode.PULLING:
        # the star side is never materialised — it is grown by extends
        seg = _node_segment(node.left, conditions, applied, query)
        schema = seg.out_schema
        star = node.right.sub
        root = setting.star_root
        if root is None:
            raise PlanError(f"pulling join without star root: {node.sub}")
        leaves = sorted(star.vertices - {root})

        if setting.algorithm is JoinAlgorithm.WCO and root not in schema:
            # complete star join: one extension intersecting all leaves
            spec = _extend(schema, tuple(schema.index(v) for v in leaves),
                           root, conditions, applied, query)
            seg.extends.append(spec)
            seg.out_schema = spec.out_schema
            return seg

        # pulling-based hash join (or fully covered star): §5.2 rewrite
        v1 = [v for v in leaves if v in schema]
        v2 = [v for v in leaves if v not in schema]
        if v1:
            seg.extends.append(_verify(schema, v1, root))
        for v in v2:
            spec = _extend(schema, (schema.index(root),), v, conditions,
                           applied, query)
            seg.extends.append(spec)
            schema = spec.out_schema
        seg.out_schema = schema
        return seg

    # pushing-based hash join: both children materialise
    left_applied = set(applied)
    right_applied = set(applied)
    lseg = _node_segment(node.left, conditions, left_applied, query)
    rseg = _node_segment(node.right, conditions, right_applied, query)
    lsch, rsch = lseg.out_schema, rseg.out_schema
    shared = sorted(set(lsch) & set(rsch))
    if not shared:
        raise PlanError(f"push join with empty key: {node.sub}")
    out_schema = lsch + tuple(v for v in rsch if v not in lsch)
    applied.clear()
    applied.update(left_applied | right_applied)

    cross_conditions: list[tuple[int, int]] = []
    for (u, v) in conditions:
        if (u, v) in applied:
            continue
        if u in out_schema and v in out_schema:
            cross_conditions.append((out_schema.index(u), out_schema.index(v)))
            applied.add((u, v))
    left_only = [v for v in lsch if v not in shared]
    right_only = [v for v in rsch if v not in lsch]
    cross_distinct = tuple(
        (out_schema.index(u), out_schema.index(v))
        for u in left_only for v in right_only)

    join = JoinSpec(
        left_key=tuple(lsch.index(v) for v in shared),
        right_key=tuple(rsch.index(v) for v in shared),
        right_carry=tuple(rsch.index(v) for v in rsch if v not in lsch),
        out_schema=out_schema,
        cross_distinct=cross_distinct,
        cross_conditions=tuple(cross_conditions),
    )
    return Segment(source=join, left=lseg, right=rseg)


def translate(plan: ExecutionPlan) -> Segment:
    """Translate a configured execution plan into a dataflow segment tree."""
    applied: set[tuple[int, int]] = set()
    seg = _node_segment(plan.root, plan.conditions, applied, plan.query)
    missing = set(plan.conditions) - applied
    if missing:
        raise PlanError(
            f"symmetry conditions never applied: {sorted(missing)}")
    if set(seg.out_schema) != set(plan.query.vertices()):
        raise PlanError(
            f"dataflow covers {seg.out_schema}, query needs "
            f"{list(plan.query.vertices())}")
    return seg
