"""Planning: logical join trees, Equation 3 physical settings, Algorithm 1
optimiser, plug-in plans of existing systems, Algorithm 2 translation."""

from .logical import LogicalPlan, PlanNode
from .physical import (CommMode, ExecutionPlan, JoinAlgorithm, PhysicalNode,
                       PhysicalSetting, configure_join, configure_plan)
from .optimiser import COST_STRATEGIES, Optimiser, optimal_plan
from .plans import (benu_plan, dfs_order, emptyheaded_plan, graphflow_plan,
                    greedy_order, rads_plan, seed_plan, starjoin_plan,
                    vertex_order_plan, wco_plan)
from .translate import translate

__all__ = [
    "LogicalPlan",
    "PlanNode",
    "CommMode",
    "ExecutionPlan",
    "JoinAlgorithm",
    "PhysicalNode",
    "PhysicalSetting",
    "configure_join",
    "configure_plan",
    "COST_STRATEGIES",
    "Optimiser",
    "optimal_plan",
    "benu_plan",
    "dfs_order",
    "greedy_order",
    "emptyheaded_plan",
    "graphflow_plan",
    "rads_plan",
    "seed_plan",
    "starjoin_plan",
    "vertex_order_plan",
    "wco_plan",
    "translate",
]
