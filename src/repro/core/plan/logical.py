"""Logical execution plans: binary join trees over star join units.

Paper §3.1: subgraph enumeration is a multiway join of *join units*
(Equation 1), solved by rounds of two-way joins.  A logical plan fixes the
join unit choice ``U`` and join order ``O``; HUGE uses stars as units and
the bushy order by default, while each baseline contributes its own
constrained shape (Table 2) through :mod:`repro.core.plan.plans`.

A plan is a binary tree: leaves are join units (stars, including single
edges as 1-stars), and each internal node joins its children's sub-queries
(edge-disjoint, union-covering — Algorithm 1 line 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ...cluster.errors import PlanError
from ...query.decompose import SubQuery, full_subquery
from ...query.pattern import QueryGraph

__all__ = ["PlanNode", "LogicalPlan"]


@dataclass(frozen=True)
class PlanNode:
    """One node of a logical join tree."""

    sub: SubQuery
    left: "PlanNode | None" = None
    right: "PlanNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a join unit (no join below it)."""
        return self.left is None

    def __post_init__(self) -> None:
        if (self.left is None) != (self.right is None):
            raise PlanError("a join node needs both children")
        if self.left is not None and self.right is not None:
            if self.left.sub.edges & self.right.sub.edges:
                raise PlanError(
                    f"join children share edges: {self.left.sub} / {self.right.sub}")
            if self.left.sub.edges | self.right.sub.edges != self.sub.edges:
                raise PlanError(
                    f"join children do not cover {self.sub}")
            if not (self.left.sub.vertices & self.right.sub.vertices):
                raise PlanError(
                    f"join children are disconnected (empty join key): "
                    f"{self.left.sub} / {self.right.sub}")

    def nodes(self) -> Iterator["PlanNode"]:
        """Post-order traversal of the subtree rooted here."""
        if self.left is not None and self.right is not None:
            yield from self.left.nodes()
            yield from self.right.nodes()
        yield self

    def joins(self) -> Iterator["PlanNode"]:
        """Post-order traversal of internal (join) nodes — the order ``O``."""
        for node in self.nodes():
            if not node.is_leaf:
                yield node

    def leaves(self) -> Iterator["PlanNode"]:
        """The join units of the subtree."""
        for node in self.nodes():
            if node.is_leaf:
                yield node

    def depth(self) -> int:
        """Height of the subtree (leaf = 1)."""
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def is_left_deep(self) -> bool:
        """Whether every right child in the subtree is a leaf."""
        if self.is_leaf:
            return True
        assert self.left is not None and self.right is not None
        return self.right.is_leaf and self.left.is_left_deep()


@dataclass(frozen=True)
class LogicalPlan:
    """A validated logical plan for a query."""

    query: QueryGraph
    root: PlanNode
    name: str = "plan"

    def __post_init__(self) -> None:
        if self.root.sub != full_subquery(self.query):
            raise PlanError(
                f"plan root covers {sorted(self.root.sub.edges)} but the "
                f"query has edges {sorted(self.query.edges)}")
        for leaf in self.root.leaves():
            if not leaf.sub.is_star():
                raise PlanError(
                    f"join unit {leaf.sub} is not a star")

    def joins(self) -> Iterator[PlanNode]:
        """The join order ``O`` (post-order over internal nodes)."""
        return self.root.joins()

    def num_joins(self) -> int:
        """Number of two-way joins in the plan."""
        return sum(1 for _ in self.joins())

    def describe(self) -> str:
        """Human-readable one-plan-per-line description."""
        lines = [f"LogicalPlan {self.name!r} for {self.query.name}:"]

        def fmt(sub: SubQuery) -> str:
            return "{" + ",".join(f"{u}-{v}" for u, v in sorted(sub.edges)) + "}"

        for i, node in enumerate(self.joins(), 1):
            assert node.left is not None and node.right is not None
            lines.append(f"  J{i}: {fmt(node.left.sub)} ⋈ {fmt(node.right.sub)}"
                         f" -> {fmt(node.sub)}")
        if not lines[1:]:
            lines.append(f"  single unit: {fmt(self.root.sub)}")
        return "\n".join(lines)
