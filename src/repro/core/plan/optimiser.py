"""The dynamic-programming plan optimiser (paper Algorithm 1).

Searches bushy join trees over star join units for the plan minimising
*computation + communication* cost:

* a join unit ``q'`` costs its cardinality ``|R(q')|``;
* a join ``(q', q'_l, q'_r)`` costs ``cost(q'_l) + cost(q'_r) + |R(q')|``
  plus a strategy-dependent extra term (for HUGE: the communication cost
  of Algorithm 1 lines 7-9 — ``k·|E_G|`` when Equation 3 configures
  pulling, else the shuffle volume ``|R(q'_l)| + |R(q'_r)|``).

Cardinalities come from a pluggable estimator (§3.3 cites [46, 51, 58]);
see :mod:`repro.query.estimate`.

Cost strategies
---------------
``hybrid``
    HUGE's own objective (communication-aware, Equation 3).
``push-only``
    Every join pays shuffle cost — the hash-join/pushing world SEED
    optimises in.
``compute-mat``
    No communication terms: pure materialisation cost.  Approximates
    EmptyHeaded's GHD-style sequential planning (Example 3.2).
``compute-icost``
    No communication, but joins pay CPU cost: a worst-case-optimal
    extension pays the intersection cost ``d̄·|R(q'_l)|``, a binary join
    pays build+probe ``|R(q'_l)| + |R(q'_r)|`` — approximating GraphFlow's
    i-cost model [51].
"""

from __future__ import annotations

from ...cluster.errors import PlanError
from ...query.decompose import (SubQuery, connected_subqueries, full_subquery,
                                is_complete_star_join, splits)
from ...query.estimate import CardinalityEstimator
from ...query.pattern import QueryGraph
from .logical import LogicalPlan, PlanNode
from .physical import CommMode, ExecutionPlan, configure_join, configure_plan

__all__ = ["Optimiser", "optimal_plan", "COST_STRATEGIES"]

#: Accepted cost strategies (see module docstring).
COST_STRATEGIES = ("hybrid", "push-only", "compute-mat", "compute-icost")


class Optimiser:
    """Algorithm 1: ``OptimalExecutionPlan(q)``.

    Parameters
    ----------
    estimator:
        Cardinality estimator bound to the data graph.
    num_machines:
        Cluster size ``k`` (scales the pulling cost ``k·|E_G|``).
    num_graph_edges:
        ``|E_G|`` of the data graph.
    cost_strategy:
        One of :data:`COST_STRATEGIES`; ``hybrid`` is HUGE's own objective.
    avg_degree:
        ``d̄_G``, used by the ``compute-icost`` strategy.
    """

    def __init__(self, estimator: CardinalityEstimator, num_machines: int,
                 num_graph_edges: int, cost_strategy: str = "hybrid",
                 avg_degree: float = 0.0):
        if cost_strategy not in COST_STRATEGIES:
            raise ValueError(f"unknown cost strategy {cost_strategy!r}; "
                             f"choose from {COST_STRATEGIES}")
        self._estimator = estimator
        self._k = num_machines
        self._edges = num_graph_edges
        self._strategy = cost_strategy
        self._avg_degree = avg_degree
        self._cost: dict[SubQuery, float] = {}
        self._plan: dict[SubQuery, tuple[SubQuery, SubQuery] | None] = {}
        self._card: dict[SubQuery, float] = {}

    # -- cost pieces -------------------------------------------------------------

    def cardinality(self, sub: SubQuery) -> float:
        """Estimated ``|R(q')|`` (memoised)."""
        cached = self._card.get(sub)
        if cached is None:
            pattern, _ = sub.to_query_graph()
            cached = self._estimator.estimate(pattern)
            self._card[sub] = cached
        return cached

    def _join_extra_cost(self, left: SubQuery, right: SubQuery) -> float:
        shuffle = self.cardinality(left) + self.cardinality(right)
        if self._strategy == "push-only":
            return shuffle
        if self._strategy == "compute-mat":
            return 0.0
        wco = (is_complete_star_join(left, right)
               or is_complete_star_join(right, left))
        if self._strategy == "compute-icost":
            if wco:
                small = min(self.cardinality(left), self.cardinality(right))
                return self._avg_degree * small
            return shuffle
        # hybrid (Algorithm 1 lines 7-9)
        setting, _ = configure_join(left, right)
        if setting.comm is CommMode.PULLING:
            # Remark 3.1 bounds pulling by the whole graph per machine
            # (k·|E_G|); the data actually pulled is at most one adjacency
            # list per partial result (d̄·|R(q'_l)|), so the tighter of the
            # two is charged
            touched = self._avg_degree * min(self.cardinality(left),
                                             self.cardinality(right))
            bound = float(self._k * self._edges)
            return min(bound, touched) if self._avg_degree > 0 else bound
        return shuffle

    # -- the DP -------------------------------------------------------------------

    def run_logical(self, query: QueryGraph,
                    name: str = "huge-optimal") -> tuple[LogicalPlan, float]:
        """Run the DP; return the best logical plan and its cost."""
        if not query.is_connected() or query.num_vertices < 2:
            raise PlanError(f"query {query.name} must be connected, |V| >= 2")
        for sub in connected_subqueries(query):
            # ascending edge count guarantees children are solved first
            if sub.is_star():
                self._cost[sub] = self.cardinality(sub)
                self._plan[sub] = None
                continue
            best: float | None = None
            best_split: tuple[SubQuery, SubQuery] | None = None
            for left, right in splits(sub):
                if left not in self._cost or right not in self._cost:
                    continue
                cost = (self._cost[left] + self._cost[right]
                        + self.cardinality(sub)
                        + self._join_extra_cost(left, right))
                if best is None or cost < best:
                    best, best_split = cost, (left, right)
            if best is None:
                raise PlanError(f"no decomposition found for {sub}")
            self._cost[sub] = best
            self._plan[sub] = best_split

        full = full_subquery(query)
        return (LogicalPlan(query, self._recover(full), name=name),
                self._cost[full])

    def run(self, query: QueryGraph) -> ExecutionPlan:
        """Compute the optimal, physically configured execution plan."""
        logical, cost = self.run_logical(query)
        return configure_plan(logical, estimated_cost=cost)

    def _recover(self, sub: SubQuery) -> PlanNode:
        split = self._plan[sub]
        if split is None:
            return PlanNode(sub)
        left, right = split
        return PlanNode(sub, self._recover(left), self._recover(right))


def optimal_plan(query: QueryGraph, estimator: CardinalityEstimator,
                 num_machines: int, num_graph_edges: int,
                 cost_strategy: str = "hybrid",
                 avg_degree: float = 0.0) -> ExecutionPlan:
    """Convenience wrapper: run Algorithm 1 once."""
    return Optimiser(estimator, num_machines, num_graph_edges,
                     cost_strategy, avg_degree).run(query)
