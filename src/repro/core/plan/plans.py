"""Logical plans of existing systems, for HUGE's plug-in mode (Remark 3.2).

"Existing works can be plugged into HUGE via their logical plans to enjoy
immediate speedup and bounded memory consumption."  Each builder below
reproduces the *logical* plan shape of one system (Table 2); the physical
settings are then assigned by :func:`~repro.core.plan.physical.configure_plan`,
which is exactly what the HUGE-BENU / HUGE-RADS / HUGE-SEED / HUGE-WCO
variants of Exp-1 do.

=============  =========================  ==========
System         join unit ``U``            order ``O``
=============  =========================  ==========
StarJoin [80]  star                       left-deep
SEED [46]      star (& clique w/ index)   bushy
BiGJoin [5]    star (vertex extensions)   left-deep
BENU [84]      star (vertex extensions)   left-deep (DFS order)
RADS [66]      star (matched roots)       left-deep
EmptyHeaded    hybrid (sequential)        bushy
GraphFlow      hybrid (sequential)        bushy
=============  =========================  ==========
"""

from __future__ import annotations

from ...cluster.errors import PlanError
from ...query.decompose import SubQuery
from ...query.estimate import CardinalityEstimator
from ...query.pattern import QueryGraph
from .logical import LogicalPlan, PlanNode
from .optimiser import Optimiser

__all__ = [
    "wco_plan",
    "greedy_order",
    "dfs_order",
    "benu_plan",
    "starjoin_plan",
    "rads_plan",
    "seed_plan",
    "emptyheaded_plan",
    "graphflow_plan",
    "vertex_order_plan",
]


def _norm(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


# -- vertex-at-a-time (wco) plans ------------------------------------------------


def vertex_order_plan(query: QueryGraph, order: list[int],
                      name: str = "wco") -> LogicalPlan:
    """Left-deep plan matching one vertex at a time along ``order``.

    Step ``i`` joins the prefix pattern with the star rooted at
    ``order[i]`` whose leaves are all earlier neighbours — BiGJoin's
    complete star joins (§3.1, Example 3.1).  Every prefix is an induced
    subgraph of the query because all back edges are taken at each step.
    """
    n = query.num_vertices
    if sorted(order) != list(range(n)):
        raise PlanError(f"order {order} is not a permutation of 0..{n - 1}")
    if n < 2:
        raise PlanError("query must have at least two vertices")
    first_back = query.neighbours(order[1]) & {order[0]}
    if not first_back:
        raise PlanError(f"order {order} does not start with an edge")
    node = PlanNode(SubQuery(frozenset([_norm(order[0], order[1])])))
    for i in range(2, n):
        v = order[i]
        back = query.neighbours(v) & set(order[:i])
        if not back:
            raise PlanError(f"order {order} is not connected at {v}")
        star = SubQuery(frozenset(_norm(v, u) for u in back))
        node = PlanNode(node.sub.union(star), node, PlanNode(star))
    return LogicalPlan(query, node, name=name)


def greedy_order(query: QueryGraph) -> list[int]:
    """Max-back-degree connected order starting from a max-degree edge."""
    start = max(query.vertices(), key=query.degree)
    order = [start]
    seen = {start}
    while len(order) < query.num_vertices:
        nxt = max(
            (v for v in query.vertices() if v not in seen
             and query.neighbours(v) & seen),
            key=lambda v: (len(query.neighbours(v) & seen), query.degree(v)),
        )
        order.append(nxt)
        seen.add(nxt)
    return order


def dfs_order(query: QueryGraph) -> list[int]:
    """DFS preorder from vertex 0 — BENU's backtracking matching order."""
    order: list[int] = []
    seen: set[int] = set()
    stack = [0]
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        order.append(v)
        for u in sorted(query.neighbours(v), reverse=True):
            if u not in seen:
                stack.append(u)
    return order


def wco_plan(query: QueryGraph) -> LogicalPlan:
    """BiGJoin's logical plan: left-deep vertex extensions, greedy
    max-back-degree matching order."""
    return vertex_order_plan(query, greedy_order(query), name="bigjoin-wco")


def benu_plan(query: QueryGraph) -> LogicalPlan:
    """BENU's logical plan: the same vertex-extension shape with a DFS
    matching order (paper §3.1: "equivalent to BiGJoin's wco-join procedure
    with the DFS order as matching order")."""
    return vertex_order_plan(query, dfs_order(query), name="benu-dfs")


# -- star-decomposition plans ------------------------------------------------------


def _greedy_star_decomposition(query: QueryGraph,
                               matched_roots: bool) -> list[SubQuery]:
    """Cover the query's edges with stars, greedily by uncovered degree.

    With ``matched_roots`` (RADS), every star after the first must be
    rooted at a vertex already covered, so its neighbours can be pulled to
    the host machine.  Without it (StarJoin), any root connected to the
    covered part is allowed.
    """
    uncovered = set(query.edges)
    stars: list[SubQuery] = []
    covered_vertices: set[int] = set()

    def uncovered_degree(v: int) -> int:
        return sum(1 for e in uncovered if v in e)

    while uncovered:
        if not stars:
            candidates = list(query.vertices())
        elif matched_roots:
            candidates = [v for v in covered_vertices if uncovered_degree(v)]
        else:
            candidates = [v for v in query.vertices() if uncovered_degree(v)
                          and (v in covered_vertices
                               or query.neighbours(v) & covered_vertices)]
        if not candidates:  # pragma: no cover - connected queries always have one
            raise PlanError(f"cannot cover {query.name} with stars")
        root = max(candidates, key=lambda v: (uncovered_degree(v), -v))
        edges = frozenset(e for e in uncovered if root in e)
        stars.append(SubQuery(edges))
        uncovered -= edges
        covered_vertices.update(v for e in edges for v in e)
    return stars


def _left_deep(query: QueryGraph, units: list[SubQuery],
               name: str) -> LogicalPlan:
    node = PlanNode(units[0])
    for unit in units[1:]:
        node = PlanNode(node.sub.union(unit), node, PlanNode(unit))
    return LogicalPlan(query, node, name=name)


def starjoin_plan(query: QueryGraph) -> LogicalPlan:
    """StarJoin's logical plan: left-deep join of a greedy star cover."""
    stars = _greedy_star_decomposition(query, matched_roots=False)
    return _left_deep(query, stars, "starjoin")


def rads_plan(query: QueryGraph) -> LogicalPlan:
    """RADS' logical plan: left-deep star-expand-and-verify — each star
    after the first is rooted at an already-matched vertex (§3.1)."""
    stars = _greedy_star_decomposition(query, matched_roots=True)
    return _left_deep(query, stars, "rads")


# -- cost-based bushy plans -----------------------------------------------------------


def seed_plan(query: QueryGraph, estimator: CardinalityEstimator) -> LogicalPlan:
    """SEED's logical plan: bushy hash-join tree over star units,
    minimising materialisation + shuffle cost (the pushing-only world)."""
    opt = Optimiser(estimator, num_machines=1, num_graph_edges=0,
                    cost_strategy="push-only")
    plan, _ = opt.run_logical(query, name="seed-bushy")
    return plan


def emptyheaded_plan(query: QueryGraph,
                     estimator: CardinalityEstimator) -> LogicalPlan:
    """EmptyHeaded's sequential hybrid plan (approximation): bushy tree
    minimising pure materialisation cost, computation being the only
    concern (Example 3.2)."""
    opt = Optimiser(estimator, num_machines=1, num_graph_edges=0,
                    cost_strategy="compute-mat")
    plan, _ = opt.run_logical(query, name="emptyheaded")
    return plan


def graphflow_plan(query: QueryGraph, estimator: CardinalityEstimator,
                   avg_degree: float) -> LogicalPlan:
    """GraphFlow's sequential hybrid plan (approximation): bushy tree under
    the i-cost model of [51] — intersections and binary joins priced by
    CPU work only."""
    opt = Optimiser(estimator, num_machines=1, num_graph_edges=0,
                    cost_strategy="compute-icost", avg_degree=avg_degree)
    plan, _ = opt.run_logical(query, name="graphflow")
    return plan
