"""Physical plan settings: join algorithm × communication mode (Equation 3).

Paper §3.2 identifies two physical dimensions per two-way join
``(q', q'_l, q'_r)``: the join algorithm ``A ∈ {hash, wco}`` and the
communication mode ``C ∈ {pushing, pulling}``.  Equation 3 fixes them:

* **complete star join** (Definition 3.1: ``q'_r`` is a star whose leaves
  are all in ``V(q'_l)``) → *(wco join, pulling)* — a ``PULL-EXTEND``;
* ``q'_r`` a star ``(v; L)`` with root ``v ∈ V(q'_l)`` → *(hash join,
  pulling)* — rewritten into a ``PULL-EXTEND`` chain for the memory bound
  (paper §5.2);
* otherwise → *(hash join, pushing)* — a ``PUSH-JOIN``.

Join is commutative, so both orientations of each join are tried and the
children are swapped when the star side is on the left.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ...query.decompose import SubQuery, complete_star_root
from ...query.pattern import QueryGraph
from ...query.symmetry import PartialOrder, symmetry_break
from .logical import LogicalPlan, PlanNode

__all__ = [
    "JoinAlgorithm",
    "CommMode",
    "PhysicalSetting",
    "PhysicalNode",
    "ExecutionPlan",
    "configure_join",
    "configure_plan",
]


class JoinAlgorithm(Enum):
    """The join algorithm dimension ``A``."""

    HASH = "hash"
    WCO = "wco"


class CommMode(Enum):
    """The communication mode dimension ``C``."""

    PUSHING = "pushing"
    PULLING = "pulling"


@dataclass(frozen=True)
class PhysicalSetting:
    """Physical configuration of one join: Equation 3 plus the star root
    the pulling rewrites extend from."""

    algorithm: JoinAlgorithm
    comm: CommMode
    star_root: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.algorithm.value} join, {self.comm.value})"


def configure_join(left: SubQuery,
                   right: SubQuery) -> tuple[PhysicalSetting, bool]:
    """Apply Equation 3 to a join of ``left ⋈ right``.

    Returns ``(setting, swapped)`` where ``swapped`` indicates the star
    side was found on the left and the children should be exchanged so the
    star is always ``q'_r``.
    """
    candidates: list[tuple[PhysicalSetting, bool, bool]] = []
    for l, r, swapped in ((left, right, False), (right, left, True)):
        root = complete_star_root(l, r)
        if root is not None:
            setting = PhysicalSetting(JoinAlgorithm.WCO, CommMode.PULLING,
                                      star_root=root)
            candidates.append((setting, swapped, root not in l.vertices))
    if candidates:
        # prefer the orientation whose root is a genuinely new vertex: a
        # true extension beats a verify-style join that must first
        # materialise the star side
        candidates.sort(key=lambda c: c[2], reverse=True)
        setting, swapped, _ = candidates[0]
        return setting, swapped
    for l, r, swapped in ((left, right, False), (right, left, True)):
        if r.is_star():
            roots = ([r.star_root()] if r.num_vertices > 2
                     else sorted(r.vertices))
            in_left = [v for v in roots if v in l.vertices]
            if in_left:
                return (PhysicalSetting(JoinAlgorithm.HASH, CommMode.PULLING,
                                        star_root=in_left[0]), swapped)
    return PhysicalSetting(JoinAlgorithm.HASH, CommMode.PUSHING), False


@dataclass(frozen=True)
class PhysicalNode:
    """A plan-tree node annotated with its physical setting.

    After configuration the star side of every pulling join sits on the
    right (children swapped where needed).
    """

    sub: SubQuery
    setting: PhysicalSetting | None = None
    left: "PhysicalNode | None" = None
    right: "PhysicalNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a join unit."""
        return self.left is None

    def nodes(self) -> Iterator["PhysicalNode"]:
        """Post-order traversal."""
        if self.left is not None and self.right is not None:
            yield from self.left.nodes()
            yield from self.right.nodes()
        yield self

    def joins(self) -> Iterator["PhysicalNode"]:
        """Internal nodes in execution order."""
        for node in self.nodes():
            if not node.is_leaf:
                yield node


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully configured execution plan ``P = (U, O, A, C)`` plus the
    symmetry-breaking partial order the runtime must enforce."""

    query: QueryGraph
    root: PhysicalNode
    conditions: PartialOrder
    name: str = "plan"
    estimated_cost: float = float("nan")

    def joins(self) -> Iterator[PhysicalNode]:
        """The configured join order."""
        return self.root.joins()

    def num_push_joins(self) -> int:
        """How many joins require pushing (global synchronisation)."""
        return sum(1 for j in self.joins()
                   if j.setting and j.setting.comm is CommMode.PUSHING)

    def describe(self) -> str:
        """Human-readable plan listing with physical settings."""
        def fmt(sub: SubQuery) -> str:
            return "{" + ",".join(f"{u}-{v}" for u, v in sorted(sub.edges)) + "}"

        lines = [f"ExecutionPlan {self.name!r} for {self.query.name} "
                 f"(cost≈{self.estimated_cost:.3g}):"]
        for i, node in enumerate(self.joins(), 1):
            assert node.left is not None and node.right is not None
            lines.append(
                f"  J{i}: {fmt(node.left.sub)} ⋈ {fmt(node.right.sub)} "
                f"{node.setting}")
        if len(lines) == 1:
            lines.append(f"  single unit: {fmt(self.root.sub)}")
        order = sorted(self.conditions)
        lines.append(f"  symmetry order: {order if order else '(none)'}")
        return "\n".join(lines)


def _configure_node(node: PlanNode) -> PhysicalNode:
    if node.is_leaf:
        return PhysicalNode(node.sub)
    assert node.left is not None and node.right is not None
    setting, swapped = configure_join(node.left.sub, node.right.sub)
    left, right = (node.right, node.left) if swapped else (node.left, node.right)
    return PhysicalNode(node.sub, setting,
                        _configure_node(left), _configure_node(right))


def configure_plan(plan: LogicalPlan,
                   estimated_cost: float = float("nan")) -> ExecutionPlan:
    """Configure the physical settings of a logical plan (Algorithm 1 line
    13's ``ConfigureJoin``), keeping the logical structure intact.

    This is the plug-in path of Remark 3.2: any existing system's logical
    plan gets HUGE's optimal physical settings automatically.
    """
    return ExecutionPlan(
        query=plan.query,
        root=_configure_node(plan.root),
        conditions=symmetry_break(plan.query),
        name=plan.name,
        estimated_cost=estimated_cost,
    )
