"""The DFS/BFS-adaptive scheduler (paper Algorithm 5 and §5.4).

Every operator owns a fixed-capacity output queue.  A scheduled operator
consumes input batches until its output queue is full (then it *yields*
and the successor is scheduled — BFS-style progress turning DFS-like under
memory pressure) or its input is empty (then the scheduler backtracks to
the precursor).  Shrinking the queue capacity toward zero degrades to pure
DFS scheduling; growing it to infinity degrades to pure BFS — exactly the
sweep of Exp-7 (Figure 9).

``PUSH-JOIN`` is a global synchronisation barrier (§5.4): the two child
segments run to completion into shuffled join buffers before the parent
segment streams the join output through its own adaptive chain.

Inter-machine work stealing (§5.3) re-homes queued batches from busy to
idle machines before each scheduling round; intra-machine stealing is
applied when attributing batch item costs to workers (see
:mod:`repro.core.stealing`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..cluster.errors import PlanError
from ..obs.trace import ENGINE
from .batch import Batch
from .cancel import CancelToken
from .dataflow import JoinSpec, ScanSpec, Segment
from .operators import (ExecContext, ExtendOp, JoinBuffer, ScanOp,
                        SinkConsumer, join_stream)
from .stealing import STEALING_MODES, distribute_to_workers, rebalance

__all__ = ["SchedulerConfig", "run_segment", "run_shared_chains"]


@dataclass
class SchedulerConfig:
    """Knobs of the adaptive scheduler and the pulling runtime."""

    batch_size: int = 1024
    """Tuples per batch — the minimum data processing unit (§4.2; the
    paper's default is 512 K at cluster scale).  Larger batches aggregate
    more GetNbrs requests per RPC (Exp-4)."""

    output_queue_capacity: float = 16384
    """Output-queue capacity in tuples (the paper's default is 5·10⁷).
    ``0`` gives pure DFS scheduling, ``inf`` pure BFS (Exp-7)."""

    scan_pivot_chunk: int = 64
    """Pivot vertices per SCAN input chunk."""

    stealing: str = "full"
    """One of :data:`~repro.core.stealing.STEALING_MODES`."""

    join_buffer_tuples: int = 1 << 16
    """In-memory buffer threshold per machine per PUSH-JOIN side (§4.3)."""

    steal_threshold: float = 3.0
    """Inter-machine stealing triggers when the heaviest input channel
    exceeds this multiple of the lightest (see
    :func:`~repro.core.stealing.rebalance`)."""

    cancellation: "CancelToken | None" = field(
        default=None, repr=False, compare=False)
    """Optional :class:`~repro.core.cancel.CancelToken` polled once per
    scheduling round; when it fires the run aborts with
    :class:`~repro.cluster.errors.QueryCancelledError` (client cancel or
    wall-clock deadline — the serving layer's per-query timeout)."""

    def __post_init__(self) -> None:
        if self.stealing not in STEALING_MODES:
            raise ValueError(f"unknown stealing mode {self.stealing!r}; "
                             f"choose from {STEALING_MODES}")
        if self.batch_size < 1 or self.scan_pivot_chunk < 1:
            raise ValueError("batch sizes must be positive")


# -- source feeds -------------------------------------------------------------------


class _ScanFeed:
    """Pivot-vertex chunks per machine feeding an edge SCAN."""

    def __init__(self, ctx: ExecContext, chunk: int):
        k = ctx.cluster.num_machines
        self.chunks: list[deque[list[int]]] = []
        for m in range(k):
            local = [int(v) for v in ctx.cluster.local_vertices(m)]
            self.chunks.append(deque(
                local[i:i + chunk] for i in range(0, len(local), chunk)))

    def has_input(self, machine: int) -> bool:
        return bool(self.chunks[machine])

    def next_batch(self, machine: int) -> list[int]:
        return self.chunks[machine].popleft()

    def exhausted(self) -> bool:
        return not any(self.chunks)


class _JoinFeed:
    """Streaming output of a PUSH-JOIN, one peekable generator per machine."""

    def __init__(self, generators: Sequence[Iterator[Batch]]):
        self._gens = list(generators)
        self._peek: list[Batch | None] = [None] * len(self._gens)
        self._done = [False] * len(self._gens)

    def _fill(self, machine: int) -> None:
        if self._peek[machine] is None and not self._done[machine]:
            try:
                self._peek[machine] = next(self._gens[machine])
            except StopIteration:
                self._done[machine] = True

    def has_input(self, machine: int) -> bool:
        self._fill(machine)
        return self._peek[machine] is not None

    def next_batch(self, machine: int) -> Batch:
        self._fill(machine)
        batch = self._peek[machine]
        if batch is None:
            raise IndexError(f"join feed exhausted on machine {machine}")
        self._peek[machine] = None
        return batch

    def exhausted(self) -> bool:
        return all(not self.has_input(m) for m in range(len(self._gens)))


class _TeeBuffer:
    """Materialised output of a shared prefix chain (work sharing).

    Consumes the common prefix's final batches per machine, charging
    their footprint to the simulated memory ledger, and hands out
    :class:`_ReplayFeed`\\ s that stream the buffered batches into each
    share-group member's suffix chain.  ``release`` returns the charged
    bytes once every member has been fed (the ledger must drain).

    Deliberately *not* a :class:`SinkConsumer`: the prefix chain's last
    operator must materialise its tuples (no count-only compression) —
    the suffixes extend them further.
    """

    def __init__(self, ctx: ExecContext, arity: int):
        self.ctx = ctx
        self.arity = arity
        self.k = ctx.cluster.num_machines
        self.batches: list[list[Batch]] = [[] for _ in range(self.k)]
        self.total = 0
        self._charged = 0.0

    def consume(self, machine: int, batch) -> None:
        batch = Batch.coerce(batch, self.arity)
        n = len(batch)
        if not n:
            return
        self.batches[machine].append(batch)
        self.total += n
        nbytes = n * self.arity * self.ctx.cost.bytes_per_id
        self._charged += nbytes
        self.ctx.metrics.alloc(machine, nbytes)

    def replay(self) -> "_ReplayFeed":
        """A fresh feed over the buffered prefix output."""
        return _ReplayFeed(self.batches)

    def release(self) -> None:
        """Return the buffered bytes to the simulated ledger."""
        for m in range(self.k):
            for batch in self.batches[m]:
                self.ctx.metrics.free(
                    m, len(batch) * self.arity * self.ctx.cost.bytes_per_id)
        self.batches = [[] for _ in range(self.k)]
        self._charged = 0.0


class _ReplayFeed:
    """Streams a tee buffer's batches into one suffix chain (per machine)."""

    def __init__(self, batches: Sequence[Sequence[Batch]]):
        self._chunks = [deque(per_machine) for per_machine in batches]

    def has_input(self, machine: int) -> bool:
        return bool(self._chunks[machine])

    def next_batch(self, machine: int) -> Batch:
        return self._chunks[machine].popleft()

    def exhausted(self) -> bool:
        return not any(self._chunks)


def run_shared_chains(ctx: ExecContext, config: SchedulerConfig,
                      prefix: Segment, suffixes: Sequence[Segment],
                      consumers: Sequence[SinkConsumer]) -> int:
    """Execute a share group: the common prefix once, each suffix on a
    replay of its output.

    ``prefix`` is the leading scan(+extends) chain every member's plan
    starts with; ``suffixes[i]`` holds member ``i``'s remaining extends
    (possibly none — full isomorphism dedup) feeding ``consumers[i]``.
    Returns the number of prefix tuples materialised (share-ratio
    telemetry).
    """
    if not isinstance(prefix.source, ScanSpec):
        raise PlanError("shared prefixes must start with an edge scan")
    tee = _TeeBuffer(ctx, len(prefix.out_schema))
    try:
        _ChainRunner(ctx, config, prefix, tee).run()
        total = tee.total
        for suffix, consumer in zip(suffixes, consumers):
            _ChainRunner.for_join(ctx, config, suffix, consumer,
                                  tee.replay()).run()
    finally:
        tee.release()
    return total


# -- the chain scheduler ---------------------------------------------------------------


@dataclass
class _Queue:
    """One operator's per-machine input queue with tuple/byte accounting."""

    batches: list[deque[Batch]]
    tuples: list[int] = field(default_factory=list)

    @classmethod
    def empty(cls, k: int) -> "_Queue":
        return cls([deque() for _ in range(k)], [0] * k)


class _ChainRunner:
    """Algorithm 5 over one segment's linear chain of operators."""

    def __init__(self, ctx: ExecContext, config: SchedulerConfig,
                 segment: Segment, consumer: SinkConsumer | JoinBuffer):
        self.ctx = ctx
        self.config = config
        self.consumer = consumer
        k = ctx.cluster.num_machines
        self.k = k

        if isinstance(segment.source, ScanSpec):
            self.feed: _ScanFeed | _JoinFeed = _ScanFeed(
                ctx, config.scan_pivot_chunk)
            self.source_op: ScanOp | None = ScanOp(segment.source, ctx)
        else:
            raise PlanError("join segments must be started via run_segment")
        seg = ctx.seg_ids.get(id(segment), 0)
        # operator ids: s<segment>.0 is the source, s<segment>.<i+1> extend i
        self.op_ids = [f"s{seg}.{i}"
                       for i in range(len(segment.extends) + 1)]
        self.extend_ops = [ExtendOp(spec, ctx, opid=self.op_ids[i + 1])
                           for i, spec in enumerate(segment.extends)]
        # queues[i] is the input channel of extend i (the output queue of
        # the operator before it); the chain is source -> extends -> consumer
        self.queues = [_Queue.empty(k) for _ in self.extend_ops]
        self.compress_final = self._can_compress_final()

    @classmethod
    def for_join(cls, ctx: ExecContext, config: SchedulerConfig,
                 segment: Segment, consumer: SinkConsumer | JoinBuffer,
                 feed: _JoinFeed) -> "_ChainRunner":
        """Build a runner whose source is a PUSH-JOIN output stream."""
        runner = object.__new__(cls)
        runner.ctx = ctx
        runner.config = config
        runner.consumer = consumer
        runner.k = ctx.cluster.num_machines
        runner.feed = feed
        runner.source_op = None
        seg = ctx.seg_ids.get(id(segment), 0)
        runner.op_ids = [f"s{seg}.{i}"
                         for i in range(len(segment.extends) + 1)]
        runner.extend_ops = [ExtendOp(spec, ctx, opid=runner.op_ids[i + 1])
                             for i, spec in enumerate(segment.extends)]
        runner.queues = [_Queue.empty(runner.k) for _ in runner.extend_ops]
        runner.compress_final = runner._can_compress_final()
        return runner

    def _can_compress_final(self) -> bool:
        """Whether the last operator may count instead of materialise (the
        compression optimisation [63], §7.1): only into a non-collecting
        SINK, and only when the chain ends in a PULL-EXTEND."""
        return (isinstance(self.consumer, SinkConsumer)
                and not self.consumer.collect
                and bool(self.extend_ops))

    # -- queue plumbing ----------------------------------------------------------

    def _enqueue(self, level: int, machine: int, out,
                 arity: int) -> None:
        """Append an output batch (re-sliced) to a queue, charging memory."""
        out = Batch.coerce(out, arity)
        n = len(out)
        if not n:
            return
        q = self.queues[level]
        size = self.config.batch_size
        for piece in out.split(size):
            q.batches[machine].append(piece)
        q.tuples[machine] += n
        self.ctx.metrics.alloc(
            machine, n * arity * self.ctx.cost.bytes_per_id)
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.counter(f"queue {self.op_ids[level + 1]}", machine,
                           {"tuples": q.tuples[machine]})

    def _dequeue(self, level: int, machine: int, arity: int) -> Batch:
        q = self.queues[level]
        batch = q.batches[machine].popleft()
        q.tuples[machine] -= len(batch)
        self.ctx.metrics.free(
            machine, len(batch) * arity * self.ctx.cost.bytes_per_id)
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.counter(f"queue {self.op_ids[level + 1]}", machine,
                           {"tuples": q.tuples[machine]})
        return batch

    def _has_input(self, level: int) -> bool:
        """Whether operator ``level`` has input anywhere (-1 = source)."""
        if level < 0:
            return any(self.feed.has_input(m) for m in range(self.k))
        return any(self.queues[level].batches[m] for m in range(self.k))

    # -- stealing ------------------------------------------------------------------

    def _steal(self, level: int) -> None:
        """Inter-machine stealing on the input channel of ``level``."""
        mode = self.config.stealing
        if mode == "none":
            return
        if mode == "region-group" and level >= 0:
            return  # RGP only redistributes initial pivots
        metrics = self.ctx.metrics
        tracer = self.ctx.tracer
        if tracer.enabled:
            t0s = tracer.now_all()
        bytes_per_id = self.ctx.cost.bytes_per_id
        threshold = self.config.steal_threshold
        moved: dict[tuple[int, int], int] = {}
        unit = "ids"
        if level < 0:
            if isinstance(self.feed, _ScanFeed):
                for src, dst, chunk in rebalance(self.feed.chunks,
                                                 threshold=threshold):
                    moved[(src, dst)] = moved.get((src, dst), 0) + len(chunk)
                    metrics.record_steal(dst)
                for (src, dst), ids in moved.items():
                    metrics.send(src, dst, ids * bytes_per_id)
        else:
            unit = "bytes"
            q = self.queues[level]
            arity = self._in_arity(level)
            # one StealWork RPC moves a bulk of batches per (donor, thief)
            # pair
            for src, dst, batch in rebalance(q.batches, threshold=threshold):
                q.tuples[src] -= len(batch)
                q.tuples[dst] += len(batch)
                nbytes = len(batch) * arity * bytes_per_id
                metrics.free(src, nbytes)
                metrics.alloc(dst, nbytes)
                moved[(src, dst)] = moved.get((src, dst), 0) + nbytes
                metrics.record_steal(dst)
            for (src, dst), nbytes in moved.items():
                metrics.send(src, dst, nbytes)
        if tracer.enabled and moved:
            for (src, dst), amount in moved.items():
                tracer.instant("steal", dst,
                               {"src": src, unit: amount, "level": level})
            t1s = tracer.now_all()
            for m in range(self.k):
                if t1s[m] > t0s[m]:
                    tracer.complete("steal window", m, t0s[m], t1s[m],
                                    {"level": level})

    # -- scheduling ---------------------------------------------------------------------

    def _schedule(self, level: int) -> None:
        """Run operator ``level`` on every machine until its output queue
        fills or its input empties (the inner loop of Algorithm 5)."""
        ctx = self.ctx
        cost = ctx.cost
        metrics = ctx.metrics
        tracer = ctx.tracer
        traced = tracer.enabled
        config = self.config
        stealing_workers = config.stealing == "full"
        workers = ctx.cluster.workers_per_machine
        last = len(self.extend_ops) - 1
        opid = self.op_ids[level + 1]
        if level < 0:
            span_name = "SCAN" if self.source_op is not None else "JOIN-OUT"
        else:
            span_name = ("VERIFY" if self.extend_ops[level].spec.is_verify
                         else "PULL-EXTEND")
        if traced:
            # snapshot every clock before any charge: spans on machine d
            # caused by machine m's sends must nest inside d's round span
            t_round = tracer.now_all()

        for m in range(self.k):
            metrics.charge_ops(m, cost.sched_switch_op)
        self._steal(level)

        for m in range(self.k):
            while True:
                if level < 0:
                    if not self.feed.has_input(m):
                        break
                else:
                    if not self.queues[level].batches[m]:
                        break
                # yield when the output queue is already at capacity; an
                # empty queue never blocks, so capacity 0 degrades to
                # process-one-batch-then-yield (pure DFS) instead of
                # livelocking
                if level < last:
                    pending = self.queues[level + 1].tuples[m]
                    if pending and pending >= config.output_queue_capacity:
                        if traced:
                            tracer.instant("yield", m, {"op": opid,
                                                        "queued": pending})
                        break

                if traced:
                    t0 = tracer.now(m)
                    bytes0 = tracer.bytes_moved(m)
                counted = 0
                if level < 0:
                    payload = self.feed.next_batch(m)
                    if isinstance(payload, Batch):
                        # join output rows; pivot = first matched vertex
                        pivot = int(payload.rows[0, 0]) if len(payload) else 0
                    else:
                        pivot = int(payload[0]) if payload else 0
                    n_in = len(payload)
                    if self.source_op is not None:
                        out, item_costs, counted = self.source_op.process(
                            m, payload)
                        out_arity = 2
                    else:
                        out = payload  # join output is already a batch
                        item_costs = []
                        out_arity = out.arity
                else:
                    op = self.extend_ops[level]
                    batch = self._dequeue(level, m, self._in_arity(level))
                    # without stealing, work sticks to the worker that owns
                    # the batch's firstly matched (pivot) vertex (§5.3)
                    pivot = int(batch.rows[0, 0]) if len(batch) else 0
                    n_in = len(batch)
                    count_only = level == last and self.compress_final
                    out, item_costs, counted = op.process(
                        m, batch, count_only=count_only)
                    out_arity = op.out_arity

                if traced:
                    t_mid = tracer.now(m)
                if item_costs:
                    per_worker = distribute_to_workers(
                        item_costs, workers, stealing_workers,
                        assign_key=pivot)
                    metrics.charge_worker_ops(m, per_worker)
                metrics.charge_ops(m, cost.batch_overhead_op)

                if traced:
                    t1 = tracer.now(m)
                    if level >= 0:
                        # the cost model charges the intersection /
                        # verification ops after ``process`` returns, so
                        # [t_mid, t1] is exactly the intersect stage and the
                        # fetch span (emitted inside ``_fetch``) ends at
                        # t_mid: fetch + intersect == the operator span
                        tracer.complete("intersect", m, t_mid, t1,
                                        {"op": opid})
                    tracer.complete(
                        span_name, m, t0, t1,
                        {"op": opid, "in": n_in, "out": len(out) + counted,
                         "bytes": tracer.bytes_moved(m) - bytes0})
                    if item_costs:
                        if stealing_workers and workers > 1:
                            tracer.instant(
                                "intra steal", m,
                                {"op": opid, "items": len(item_costs)})
                        tracer.counter(
                            "worker ops", m,
                            {str(w): metrics.machines[m].worker_ops[w]
                             for w in range(workers)})

                if level < last:
                    self._enqueue(level + 1, m, out, out_arity)
                elif counted and not out:
                    self.consumer.consume_count(m, counted)
                else:
                    self.consumer.consume(m, out)
                if traced:
                    t2 = tracer.now(m)
                    if t2 > t1:
                        # local cost of handing the batch downstream (e.g.
                        # the send side of a PUSH-JOIN shuffle)
                        tracer.complete("emit", m, t1, t2, {"op": opid})
        if traced:
            for m in range(self.k):
                t_end = tracer.now(m)
                if t_end > t_round[m]:
                    tracer.complete("schedule", m, t_round[m], t_end,
                                    {"op": opid, "level": level})
        metrics.check_time()

    def _in_arity(self, level: int) -> int:
        """Arity of tuples entering extend ``level``."""
        spec = self.extend_ops[level].spec
        if spec.is_verify:
            return len(spec.out_schema)
        return len(spec.out_schema) - 1

    def run(self) -> None:
        """Drive the chain to completion (the outer loop of Algorithm 5)."""
        tracer = self.ctx.tracer
        token = self.config.cancellation
        last = len(self.extend_ops) - 1
        cur = -1  # -1 = the source operator
        while True:
            if token is not None:
                token.check()
            if not self._has_input(cur):
                if cur > -1:
                    cur -= 1
                    if tracer.enabled:
                        tracer.instant("backtrack", ENGINE,
                                       {"op": self.op_ids[cur + 1],
                                        "level": cur})
                    continue
                # source exhausted: jump forward to the first loaded operator
                pending = [i for i in range(len(self.extend_ops))
                           if self._has_input(i)]
                if not pending:
                    break
                cur = pending[0]
                continue
            self._schedule(cur)
            if cur < last:
                cur += 1
            # at the last operator the sink consumed everything; the next
            # iteration's input check backtracks (Algorithm 5 line 10)


def run_segment(ctx: ExecContext, config: SchedulerConfig, segment: Segment,
                consumer: SinkConsumer | JoinBuffer) -> None:
    """Execute a segment tree: children (PUSH-JOIN sides) first, then the
    segment's own chain (§5.4's topological order over the join DAG)."""
    if isinstance(segment.source, JoinSpec):
        assert segment.left is not None and segment.right is not None
        spec = segment.source
        lbuf = JoinBuffer(ctx, spec.left_key, len(segment.left.out_schema),
                          config.join_buffer_tuples)
        run_segment(ctx, config, segment.left, lbuf)
        rbuf = JoinBuffer(ctx, spec.right_key, len(segment.right.out_schema),
                          config.join_buffer_tuples)
        run_segment(ctx, config, segment.right, rbuf)
        join_opid = f"s{ctx.seg_ids.get(id(segment), 0)}.0"
        feed = _JoinFeed([
            join_stream(ctx, spec, lbuf, rbuf, m, config.batch_size,
                        opid=join_opid)
            for m in range(ctx.cluster.num_machines)
        ])
        runner = _ChainRunner.for_join(ctx, config, segment, consumer, feed)
    else:
        runner = _ChainRunner(ctx, config, segment, consumer)
    runner.run()
