"""The HUGE engine: plan → dataflow → scheduled execution on the cluster.

This is the system's public entry point.  ``HugeEngine.run`` accepts a
query (planned by Algorithm 1), a plugged-in logical plan (the HUGE-BENU /
HUGE-RADS / HUGE-SEED / HUGE-WCO mode of Remark 3.2), or a pre-configured
execution plan, and executes it with:

* the pushing/pulling-hybrid operators of §4 (two-stage ``PULL-EXTEND``
  over a per-machine LRBU cache; buffered ``PUSH-JOIN``);
* the DFS/BFS-adaptive scheduler of §5 with its
  ``O(|V_q|² · D_G)``-bounded queues;
* two-layer work stealing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cluster.cluster import Cluster
from ..cluster.errors import PlanError
from ..cluster.metrics import RunReport
from ..obs.trace import ENGINE, NULL_TRACER, Trace, Tracer
from ..query.estimate import CardinalityEstimator, SamplingEstimator
from ..query.pattern import QueryGraph
from .cache import CACHE_VARIANTS, make_cache
from .dataflow import ScanSpec, Segment
from .operators import ExecContext, SinkConsumer, Tuple
from .plan.logical import LogicalPlan
from .plan.optimiser import Optimiser
from .plan.physical import ExecutionPlan, configure_plan
from .plan.translate import translate
from .scheduler import SchedulerConfig, run_segment, run_shared_chains

__all__ = ["EngineConfig", "EnumerationResult", "HugeEngine"]


@dataclass
class EngineConfig(SchedulerConfig):
    """Engine knobs: scheduler settings plus cache configuration.

    The paper's cluster-scale defaults (batch 512 K, queue 5·10⁷, cache 30%
    of the data graph) are scaled to the stand-in graph sizes; the 30%
    cache fraction is kept.
    """

    cache_variant: str = "lrbu"
    """One of :data:`~repro.core.cache.CACHE_VARIANTS` (Table 5)."""

    cache_capacity_fraction: float = 0.30
    """Cache capacity as a fraction of the data-graph size (§7.1)."""

    cache_capacity_ids: int | None = None
    """Absolute capacity in vertex-id units; overrides the fraction."""

    two_stage: bool | None = None
    """Force the two-stage fetch/intersect strategy on or off; ``None``
    follows the cache variant (Cncr-LRU disables it, everything else
    enables it)."""

    collect_results: bool = False
    """Keep the matched tuples (tests); benchmarks count only."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cache_variant not in CACHE_VARIANTS:
            raise ValueError(f"unknown cache variant {self.cache_variant!r}")
        if not 0.0 <= self.cache_capacity_fraction <= 1.0:
            raise ValueError("cache_capacity_fraction must be in [0, 1]")


@dataclass
class EnumerationResult:
    """Outcome of one query execution."""

    count: int
    """Number of symmetry-broken matches (= subgraph instances)."""

    report: RunReport
    """The paper's T / T_R / T_C / C / M metrics."""

    plan: ExecutionPlan
    """The execution plan that ran."""

    fetch_time_s: float
    """Simulated time spent in PULL-EXTEND fetch stages (Table 5's t_f)."""

    cache_hit_rate: float
    """Fetch-stage cache hit rate (Exp-5)."""

    matches: list[Tuple] | None = field(default=None, repr=False)
    """Matches in query-vertex order, if collection was enabled."""

    cache_overflow_ids: int = 0
    """Worst per-machine cache overflow beyond capacity, in vertex-id
    units.  The §4.4 invariant bounds this by one batch's remote
    footprint; the conformance oracles check it."""

    cache_evictions: int = 0
    """Total cache evictions across machines."""

    cache_capacity_ids: int = 0
    """The per-machine cache capacity the run was configured with."""

    trace: Trace | None = field(default=None, repr=False)
    """The recorded span trace, when the run was traced."""

    @property
    def throughput_per_s(self) -> float:
        """Matches per simulated second (Exp-3 / Table 4)."""
        if self.report.total_time_s <= 0:
            return 0.0
        return self.count / self.report.total_time_s

    def as_dict(self) -> dict:
        """JSON-serialisable view of the result (the trace is exported
        separately via ``Trace.save``; matches are omitted)."""
        return {
            "count": self.count,
            "throughput_per_s": self.throughput_per_s,
            "fetch_time_s": self.fetch_time_s,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_overflow_ids": self.cache_overflow_ids,
            "cache_evictions": self.cache_evictions,
            "cache_capacity_ids": self.cache_capacity_ids,
            "plan": self.plan.describe(),
            "report": self.report.as_dict(),
        }


class HugeEngine:
    """The HUGE runtime bound to one simulated cluster."""

    def __init__(self, cluster: Cluster, config: EngineConfig | None = None,
                 estimator: CardinalityEstimator | None = None):
        self.cluster = cluster
        self.config = config or EngineConfig()
        self.estimator = estimator or SamplingEstimator(cluster.graph)

    # -- planning ------------------------------------------------------------------

    def plan(self, query: QueryGraph) -> ExecutionPlan:
        """Run Algorithm 1 for ``query`` on this cluster."""
        opt = Optimiser(self.estimator, self.cluster.num_machines,
                        self.cluster.graph.num_edges,
                        avg_degree=self.cluster.graph.avg_degree)
        return opt.run(query)

    def _resolve_plan(self, query: QueryGraph | None,
                      plan: ExecutionPlan | LogicalPlan | None) -> ExecutionPlan:
        if isinstance(plan, ExecutionPlan):
            return plan
        if isinstance(plan, LogicalPlan):
            return configure_plan(plan)
        if query is None:
            raise ValueError("need a query or a plan")
        return self.plan(query)

    # -- execution --------------------------------------------------------------------

    def _cache_capacity_ids(self) -> int:
        if self.config.cache_capacity_ids is not None:
            return self.config.cache_capacity_ids
        g = self.cluster.graph
        graph_ids = 2 * g.num_edges + g.num_vertices
        return max(1, int(self.config.cache_capacity_fraction * graph_ids))

    def run(self, query: QueryGraph | None = None,
            plan: ExecutionPlan | LogicalPlan | None = None,
            reset_metrics: bool = True,
            tracer: Tracer | None = None) -> EnumerationResult:
        """Execute a subgraph-enumeration query.

        Parameters
        ----------
        query:
            The pattern; optional when ``plan`` is given.
        plan:
            An :class:`ExecutionPlan`, a :class:`LogicalPlan` (plug-in
            mode: physical settings assigned by Equation 3), or ``None``
            to plan with Algorithm 1.
        reset_metrics:
            Start a fresh metrics ledger (default) or accumulate.
        tracer:
            A :class:`~repro.obs.trace.Tracer` to record spans into.  The
            default is the shared no-op tracer: tracing reads the
            simulated clocks but never charges them, so a traced run is
            bit-identical to an untraced one.
        """
        tr = tracer if tracer is not None else NULL_TRACER
        wall0 = time.perf_counter()
        exec_plan = self._resolve_plan(query, plan)
        wall1 = time.perf_counter()
        segment: Segment = translate(exec_plan)
        wall2 = time.perf_counter()
        if reset_metrics:
            self.cluster.reset_metrics()
        tr.bind(self.cluster.metrics)

        config = self.config
        capacity = self._cache_capacity_ids()
        caches = [
            make_cache(config.cache_variant, capacity, self.cluster.cost,
                       workers=self.cluster.workers_per_machine)
            for _ in range(self.cluster.num_machines)
        ]
        two_stage = config.two_stage
        if two_stage is None:
            two_stage = caches[0].supports_two_stage
        ctx = ExecContext(self.cluster, caches, two_stage, config.batch_size,
                          tracer=tr)
        for si, seg in enumerate(segment.all_segments()):
            ctx.seg_ids[id(seg)] = si
        if tr.enabled:
            for si, seg in enumerate(segment.all_segments()):
                if isinstance(seg.source, ScanSpec):
                    tr.declare_operator(f"s{si}.0", "SCAN",
                                        tuple(seg.source.schema))
                else:
                    tr.declare_operator(f"s{si}.0", "PUSH-JOIN",
                                        tuple(seg.source.out_schema))
                for oi, ext in enumerate(seg.extends):
                    kind = "VERIFY" if ext.is_verify else "PULL-EXTEND"
                    tr.declare_operator(f"s{si}.{oi + 1}", kind,
                                        tuple(ext.out_schema))
            tr.trace.meta.update({
                "plan": exec_plan.describe(),
                "num_machines": self.cluster.num_machines,
                "workers_per_machine": self.cluster.workers_per_machine,
            })
            t = tr.now(ENGINE)  # plan/translate are free in simulated time
            tr.complete("plan", ENGINE, t, t,
                        {"wall_s": wall1 - wall0})
            tr.complete("translate", ENGINE, t, t,
                        {"wall_s": wall2 - wall1})
        ctx.metrics.reserve_constant(capacity * self.cluster.cost.bytes_per_id)

        sink = SinkConsumer(segment.out_schema, collect=config.collect_results)
        t_exec = tr.now(ENGINE) if tr.enabled else 0.0
        self.cluster.tracer = tr
        try:
            run_segment(ctx, config, segment, sink)
        finally:
            self.cluster.tracer = NULL_TRACER
        ctx.metrics.check_time()
        if tr.enabled:
            tr.complete("execute", ENGINE, t_exec, tr.now(ENGINE),
                        {"wall_s": time.perf_counter() - wall2})

        report = ctx.metrics.report()
        hits = sum(c.stats.hits for c in caches)
        misses = sum(c.stats.misses for c in caches)
        return EnumerationResult(
            count=sink.count,
            report=report,
            plan=exec_plan,
            fetch_time_s=self.cluster.cost.ops_to_seconds(ctx.fetch_ops),
            cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            matches=sink.matches() if config.collect_results else None,
            cache_overflow_ids=max(
                (c.stats.max_overflow_ids for c in caches), default=0),
            cache_evictions=sum(c.stats.evictions for c in caches),
            cache_capacity_ids=capacity,
            trace=tr.trace if tr.enabled else None,
        )

    def run_shared(self, plans: list[ExecutionPlan],
                   collects: list[bool] | None = None,
                   reset_metrics: bool = True) -> list[EnumerationResult]:
        """Execute several plans as one share group.

        All plans must translate to single-segment chains (edge ``SCAN``
        plus ``PULL-EXTEND``\\ s) whose leading operator specs are
        literally equal for at least the scan — the serving dispatcher
        guarantees this by grouping on prefix signatures.  The longest
        common spec prefix runs **once** into a tee buffer; each plan's
        remaining extends then run over a replay of that buffer into a
        per-plan sink (multi-sink result tagging).  When every plan is
        the same canonical pattern the suffixes are empty and the group
        degenerates to pure isomorphism dedup.

        Per plan, the returned count and (collected) match *set* are
        identical to a solo :meth:`run` of that plan — the operator specs
        executed for each plan are spec-for-spec the same, only the
        batch schedule differs.  The simulated metrics report is the
        single shared run's ledger, attached to every result; it is
        **not** comparable to any member's solo report (that is the
        point — the shared run does strictly less total work).

        ``collects[i]`` overrides ``config.collect_results`` per member.
        """
        if not plans:
            raise ValueError("run_shared needs at least one plan")
        segments = [translate(p) for p in plans]
        sigs = []
        for plan, seg in enumerate(segments):
            if seg.left is not None or not isinstance(seg.source, ScanSpec):
                raise PlanError(
                    "work sharing requires single-segment scan+extend "
                    f"chains; plan {plan} has a PUSH-JOIN")
            sigs.append((seg.source, *seg.extends))
        shared = min(len(s) for s in sigs)
        for sig in sigs[1:]:
            n = 0
            while n < shared and sig[n] == sigs[0][n]:
                n += 1
            shared = n
        if shared < 1:
            raise PlanError("plans share no common scan prefix")

        if collects is None:
            collects = [self.config.collect_results] * len(plans)
        if len(collects) != len(plans):
            raise ValueError("one collect flag per plan")
        if reset_metrics:
            self.cluster.reset_metrics()

        config = self.config
        capacity = self._cache_capacity_ids()
        caches = [
            make_cache(config.cache_variant, capacity, self.cluster.cost,
                       workers=self.cluster.workers_per_machine)
            for _ in range(self.cluster.num_machines)
        ]
        two_stage = config.two_stage
        if two_stage is None:
            two_stage = caches[0].supports_two_stage
        ctx = ExecContext(self.cluster, caches, two_stage, config.batch_size)
        ctx.metrics.reserve_constant(capacity * self.cluster.cost.bytes_per_id)

        base = segments[0]
        prefix = Segment(source=base.source,
                         extends=list(base.extends[:shared - 1]))
        suffixes = [
            Segment(source=seg.source,
                    extends=list(seg.extends[shared - 1:]),
                    out_schema=tuple(seg.out_schema))
            for seg in segments
        ]
        sinks = [SinkConsumer(seg.out_schema, collect=collect)
                 for seg, collect in zip(segments, collects)]
        run_shared_chains(ctx, config, prefix, suffixes, sinks)
        ctx.metrics.check_time()

        report = ctx.metrics.report()
        hits = sum(c.stats.hits for c in caches)
        misses = sum(c.stats.misses for c in caches)
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        fetch_s = self.cluster.cost.ops_to_seconds(ctx.fetch_ops)
        overflow = max((c.stats.max_overflow_ids for c in caches), default=0)
        evictions = sum(c.stats.evictions for c in caches)
        return [
            EnumerationResult(
                count=sink.count,
                report=report,
                plan=plan,
                fetch_time_s=fetch_s,
                cache_hit_rate=hit_rate,
                matches=sink.matches() if collect else None,
                cache_overflow_ids=overflow,
                cache_evictions=evictions,
                cache_capacity_ids=capacity,
            )
            for plan, sink, collect in zip(plans, sinks, collects)
        ]
