"""Shared-memory residence for the columnar data graph.

The process worker pool (``QueryService(pool="process")``) needs every
child process to compute against **one** copy of the data graph — the
BENU-style shared read-only graph store.  This module places the three
columnar arrays a worker actually touches into POSIX shared memory:

* the CSR arrays ``indptr``/``indices`` of :class:`~repro.graph.graph.Graph`
  (already immutable int64);
* the global edge-composite index ``u * n + v`` of
  :func:`~repro.core.kernels.edge_composite_index` (the one ``searchsorted``
  haystack behind every fused membership test);
* on demand, the per-``(num_machines, seed)`` vertex-ownership arrays of
  :func:`~repro.graph.partition.hash_partition` (so children do not
  recompute the permutation per cluster).

A :class:`SharedGraphHandle` is a pickle-cheap description (segment names,
shapes, dtypes) that a child turns back into a zero-copy, **read-only**
:class:`Graph` via :meth:`SharedGraphHandle.attach` — no bytes of the graph
ever cross the task pipe.

Lifecycle contract (the serving tier's shm hygiene oracle):

* the parent :class:`SharedGraphStore` owns every segment and unlinks each
  **exactly once** in :meth:`SharedGraphStore.close` — idempotent, and
  robust to children that died mid-attach;
* children are spawned by :mod:`multiprocessing` and therefore share the
  parent's resource-tracker process — attach-side registration is an
  idempotent set-add and the parent's unlink clears it exactly once (see
  :func:`_attach` for why attachers must *not* unregister).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..graph.graph import Graph
from ..graph.partition import hash_partition
from .kernels import edge_composite_index

__all__ = ["SharedArraySpec", "SharedGraphHandle", "SharedGraphStore"]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment.

    Worker processes are spawned by :mod:`multiprocessing`, so they
    inherit the parent's resource-tracker process: the attach-side
    ``register`` is an idempotent set-add against the registration the
    creating :class:`SharedGraphStore` already made, and the store's
    single ``unlink()`` unregisters it once.  Explicitly unregistering
    here (the usual 3.11-era ``track=False`` emulation) would instead
    *remove* the parent's registration and make the parent's unlink trip
    a tracker ``KeyError`` — so attachers deliberately leave tracking
    alone.
    """
    return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class SharedArraySpec:
    """Where one numpy array lives: segment name + shape + dtype."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def attach(self) -> np.ndarray:
        """The array as a zero-copy read-only view (cached per process)."""
        seg = _segment(self.name)
        n = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
        arr = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                         buffer=seg.buf[:n * np.dtype(self.dtype).itemsize])
        arr.setflags(write=False)
        return arr


#: per-process attachment cache: segment name -> SharedMemory.  Keeping the
#: segments referenced here pins their mappings for the process lifetime —
#: arrays handed out above are views into these buffers.
_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
#: per-process graph cache: handle token -> attached Graph
_GRAPHS: dict[tuple, Graph] = {}


def _segment(name: str) -> shared_memory.SharedMemory:
    seg = _SEGMENTS.get(name)
    if seg is None:
        seg = _attach(name)
        _SEGMENTS[name] = seg
    return seg


@dataclass(frozen=True)
class SharedGraphHandle:
    """A picklable ticket for re-materialising a shared graph.

    ``attach()`` in a child process costs three ``shm_open``/``mmap``
    calls and no copies; repeated attaches of the same handle return the
    same :class:`Graph` object (per-process cache).
    """

    dataset: str
    version: int
    indptr: SharedArraySpec
    indices: SharedArraySpec
    composite: SharedArraySpec

    def attach(self) -> Graph:
        key = (self.indptr.name, self.indices.name)
        graph = _GRAPHS.get(key)
        if graph is None:
            graph = Graph(self.indptr.attach(), self.indices.attach())
            # preload the composite edge index so no child ever rebuilds
            # the O(E) haystack the parent already shares
            graph._composite = self.composite.attach()
            _GRAPHS[key] = graph
        return graph


class SharedGraphStore:
    """Parent-side owner of every exported shared-memory segment."""

    def __init__(self, prefix: str | None = None):
        #: unique per store so concurrent services never collide
        self.prefix = prefix or f"repro-{secrets.token_hex(4)}"
        self._segments: list[shared_memory.SharedMemory] = []
        self._handles: dict[tuple[str, int], SharedGraphHandle] = {}
        self._graph_ids: dict[tuple[str, int], int] = {}
        self._owners: dict[tuple[str, int, int, int], SharedArraySpec] = {}
        self._seq = 0
        self.closed = False

    # -- export ----------------------------------------------------------------

    def _export_array(self, tag: str, arr: np.ndarray) -> SharedArraySpec:
        if self.closed:
            raise RuntimeError("shared graph store is closed")
        arr = np.ascontiguousarray(arr)
        self._seq += 1
        name = f"{self.prefix}-{self._seq}-{tag}"[:120]
        seg = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, arr.nbytes))
        view = np.ndarray(arr.shape, dtype=arr.dtype,
                          buffer=seg.buf[:arr.nbytes])
        view[...] = arr
        self._segments.append(seg)
        return SharedArraySpec(name=seg.name, shape=tuple(arr.shape),
                               dtype=arr.dtype.str)

    def handle(self, dataset: str, graph: Graph,
               version: int = 0) -> SharedGraphHandle:
        """Export (once) and return the handle for a registered graph.

        Keyed on ``(dataset, version)``: re-registering a dataset bumps
        the service's graph version, which lands the new graph in fresh
        segments while queries against the old version keep their mapping.
        """
        key = (dataset, version)
        cached = self._handles.get(key)
        if cached is not None and self._graph_ids[key] == id(graph):
            return cached
        handle = SharedGraphHandle(
            dataset=dataset, version=version,
            indptr=self._export_array("indptr", graph.indptr),
            indices=self._export_array("indices", graph.indices),
            composite=self._export_array("comp",
                                         edge_composite_index(graph)))
        self._handles[key] = handle
        self._graph_ids[key] = id(graph)
        return handle

    def owner_spec(self, dataset: str, graph: Graph, num_machines: int,
                   seed: int, version: int = 0) -> SharedArraySpec:
        """Export (once) the ownership array for one cluster shape."""
        key = (dataset, version, num_machines, seed)
        spec = self._owners.get(key)
        if spec is None:
            owner = hash_partition(graph.num_vertices, num_machines, seed)
            spec = self._export_array(f"own{num_machines}s{seed}", owner)
            self._owners[key] = spec
        return spec

    # -- lifecycle -------------------------------------------------------------

    def segment_names(self) -> list[str]:
        """Names of every exported segment (tests assert these vanish)."""
        return [seg.name for seg in self._segments]

    def close(self) -> None:
        """Unlink every segment exactly once; safe to call repeatedly."""
        if self.closed:
            return
        self.closed = True
        segments, self._segments = self._segments, []
        self._handles.clear()
        self._owners.clear()
        for seg in segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover - already closed
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
