"""Tests for :mod:`repro.stream` and the mutable-graph update layer.

The contract under test: ``apply_updates`` implements the batch
semantics ``E' = (E ∪ I) \\ D`` (deletes win, edges normalised, no-op
batches return the same snapshot), the seeded temporal stream replays
deterministically to its source graph, and the delta enumerator emits
exactly the matches that appear (or die) with a batch — bit-identical
to brute-force from-scratch differencing, with no double counting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import enumerate_matches
from repro.graph import (Graph, GraphDelta, TemporalStream, UpdateBatch,
                         apply_updates, normalise_edges,
                         temporal_edge_stream)
from repro.graph import generators as gen
from repro.query import QueryGraph, get_query
from repro.stream import DeltaEnumerator, IncrementalMatcher

TRIANGLE = get_query("triangle")
SQUARE = get_query("q1")
CLIQUE4 = get_query("q3")
PATH5 = get_query("q6")


def edge_set(graph):
    return set(graph.edges())


def brute(graph, pattern, labels=None):
    return sorted(enumerate_matches(graph, pattern, labels=labels))


# -- apply_updates semantics ---------------------------------------------------


class TestApplyUpdates:
    def test_insert_new_edge(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        g2, delta = apply_updates(g, inserts=[(1, 2)])
        assert delta == GraphDelta(inserted=((1, 2),), deleted=())
        assert g2.has_edge(1, 2) and g2.has_edge(0, 1)
        assert not g.has_edge(1, 2), "input snapshot is immutable"

    def test_delete_existing_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        g2, delta = apply_updates(g, deletes=[(2, 1)])
        assert delta == GraphDelta(inserted=(), deleted=((1, 2),))
        assert not g2.has_edge(1, 2) and g2.has_edge(0, 1)

    def test_noop_batch_returns_same_snapshot(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        # insert a present edge, delete an absent one: effective Δ is empty
        g2, delta = apply_updates(g, inserts=[(1, 0)], deletes=[(0, 5)])
        assert delta.is_empty and delta.size == 0
        assert g2 is g

    def test_insert_then_delete_same_edge_is_net_noop(self):
        # deletes win within a batch: E' = (E ∪ I) \ D
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        g2, delta = apply_updates(g, inserts=[(1, 2)], deletes=[(1, 2)])
        assert delta.is_empty
        assert g2 is g

    def test_delete_wins_over_present_edge(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        g2, delta = apply_updates(g, inserts=[(0, 1)], deletes=[(0, 1)])
        assert delta.deleted == ((0, 1),) and delta.inserted == ()
        assert g2.num_edges == 0

    def test_duplicate_and_self_loop_edges_normalised(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        g2, delta = apply_updates(
            g, inserts=[(2, 3), (3, 2), (2, 3), (1, 1)])
        assert delta.inserted == ((2, 3),)
        assert g2.num_edges == 2

    def test_insert_grows_vertex_set(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        g2, delta = apply_updates(g, inserts=[(1, 6)])
        assert g2.num_vertices == 7
        assert delta.inserted == ((1, 6),)

    def test_negative_vertex_rejected(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        with pytest.raises(ValueError):
            apply_updates(g, inserts=[(-1, 0)])

    def test_normalise_edges(self):
        assert normalise_edges([(3, 1), (1, 3), (2, 2)]) == {(1, 3)}

    def test_random_batches_match_set_semantics(self):
        rng = np.random.default_rng(11)
        g = gen.erdos_renyi(18, 0.2, seed=1)
        for _ in range(25):
            ins = [tuple(rng.integers(0, 18, 2)) for _ in range(6)]
            dels = [tuple(rng.integers(0, 18, 2)) for _ in range(6)]
            g2, delta = apply_updates(g, ins, dels)
            want = (edge_set(g) | normalise_edges(ins)) - normalise_edges(dels)
            assert edge_set(g2) == want
            assert set(delta.inserted) == want - edge_set(g)
            assert set(delta.deleted) == edge_set(g) - want
            g = g2


# -- the seeded temporal stream ------------------------------------------------


class TestTemporalStream:
    def test_deterministic(self):
        g = gen.erdos_renyi(30, 0.15, seed=2)
        s1 = temporal_edge_stream(g, 40, batch_size=6, seed=9)
        s2 = temporal_edge_stream(g, 40, batch_size=6, seed=9)
        assert s1.batches == s2.batches
        assert edge_set(s1.base) == edge_set(s2.base)

    def test_final_graph_matches_manual_replay(self):
        g = gen.erdos_renyi(30, 0.15, seed=2)
        stream = temporal_edge_stream(g, 40, batch_size=6, seed=9)
        cur = edge_set(stream.base)
        for batch in stream.batches:
            cur = (cur | set(batch.inserts)) - set(batch.deletes)
        assert edge_set(stream.final_graph()) == cur
        # inserts only ever re-add held-out source edges, so the stream
        # stays within the source graph's edge set
        assert cur <= edge_set(g)
        assert stream.num_updates == sum(b.size for b in stream.batches) <= 40

    def test_every_update_is_a_real_state_change(self):
        g = gen.erdos_renyi(25, 0.2, seed=3)
        stream = temporal_edge_stream(g, 50, batch_size=5, seed=4,
                                      delete_fraction=0.4)
        assert stream.num_updates > 0
        cur = edge_set(stream.base)
        for batch in stream.batches:
            assert not (set(batch.inserts) & set(batch.deletes))
            for e in batch.inserts:
                assert e not in cur
            for e in batch.deletes:
                assert e in cur
            cur = (cur | set(batch.inserts)) - set(batch.deletes)

    def test_skewed_stream_targets_hubs(self):
        g = gen.barabasi_albert(50, 3, seed=5)
        stream = temporal_edge_stream(g, 30, batch_size=10, seed=6, skew=1.5)
        assert stream.num_updates > 0
        assert edge_set(stream.base) <= edge_set(g)
        deg = {v: 0 for v in range(g.num_vertices)}
        for u, v in g.edges():
            deg[u] += 1
            deg[v] += 1
        held = edge_set(g) - edge_set(stream.base)
        held_deg = np.mean([deg[u] + deg[v] for u, v in held])
        all_deg = np.mean([deg[u] + deg[v] for u, v in g.edges()])
        assert held_deg > all_deg, "skewed hold-out should prefer hubs"

    def test_update_batch_size(self):
        b = UpdateBatch(inserts=((0, 1),), deletes=((2, 3), (4, 5)))
        assert b.size == 3


# -- delta enumeration vs brute force ------------------------------------------


def check_delta_is_difference(graph, base, pattern, labels=None):
    """Δ-matches on ``graph`` with Δ = E(graph) − E(base) must equal the
    set difference of the two from-scratch enumerations, duplicate-free."""
    delta = sorted(edge_set(graph) - edge_set(base))
    got = DeltaEnumerator(pattern).delta_matches(graph, delta, labels=labels)
    assert len(got) == len(set(got)), "a match was emitted twice"
    want = set(brute(graph, pattern, labels)) - set(brute(base, pattern,
                                                          labels))
    assert set(got) == want


@pytest.mark.parametrize("pattern", [TRIANGLE, SQUARE, CLIQUE4, PATH5],
                         ids=lambda p: p.name)
def test_delta_matches_equal_scratch_difference(pattern):
    rng = np.random.default_rng(17)
    for trial in range(10):
        g = gen.erdos_renyi(14, 0.3, seed=100 + trial)
        edges = sorted(edge_set(g))
        keep = rng.random(len(edges)) < 0.6
        base = Graph.from_edges(
            [e for e, k in zip(edges, keep) if k],
            num_vertices=g.num_vertices)
        check_delta_is_difference(g, base, pattern)


def test_bootstrap_full_edge_delta_is_from_scratch():
    g = gen.erdos_renyi(16, 0.3, seed=8)
    for pattern in (TRIANGLE, SQUARE):
        got = DeltaEnumerator(pattern).delta_matches(g, g.edges())
        assert sorted(got) == brute(g, pattern)
        assert len(got) == len(set(got))


def test_delta_edges_absent_from_graph_are_ignored():
    g = Graph.from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=4)
    got = DeltaEnumerator(TRIANGLE).delta_matches(g, [(0, 3), (0, 1)])
    assert sorted(got) == brute(g, TRIANGLE)


def test_labelled_delta_matches():
    rng = np.random.default_rng(23)
    labels = rng.integers(0, 2, 14).astype(np.int64)
    pattern = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="lab-tri",
                         labels=[0, 1, None])
    for trial in range(6):
        g = gen.erdos_renyi(14, 0.35, seed=300 + trial)
        edges = sorted(edge_set(g))
        base = Graph.from_edges(edges[: len(edges) // 2],
                                num_vertices=g.num_vertices)
        check_delta_is_difference(g, base, pattern, labels=labels)


def test_rejects_degenerate_patterns():
    with pytest.raises(ValueError):
        DeltaEnumerator(QueryGraph(4, [(0, 1), (2, 3)]))  # disconnected
    with pytest.raises(ValueError):
        DeltaEnumerator(QueryGraph(1, []))


@settings(deadline=None)
@given(seed=st.integers(0, 10_000), keep=st.floats(0.1, 0.9),
       data=st.sampled_from(["triangle", "q1", "q6"]))
def test_delta_difference_property(seed, keep, data):
    rng = np.random.default_rng(seed)
    g = gen.erdos_renyi(12, 0.35, seed=seed % 997)
    edges = sorted(edge_set(g))
    mask = rng.random(len(edges)) < keep
    base = Graph.from_edges([e for e, k in zip(edges, mask) if k],
                            num_vertices=g.num_vertices)
    check_delta_is_difference(g, base, get_query(data))


# -- the incremental matcher ---------------------------------------------------


class TestIncrementalMatcher:
    def test_accumulates_to_from_scratch_over_stream(self):
        g = gen.power_law_cluster(40, 3, triad_p=0.6, seed=12)
        stream = temporal_edge_stream(g, 60, batch_size=8, seed=13,
                                      delete_fraction=0.35)
        final = stream.final_graph()
        for pattern in (TRIANGLE, SQUARE):
            matcher = IncrementalMatcher(pattern, stream.base)
            assert sorted(matcher.matches) == brute(stream.base, pattern)
            for batch in stream.batches:
                matcher.apply(batch.inserts, batch.deletes)
            assert matcher.violations == 0
            assert sorted(matcher.matches) == brute(final, pattern)
            assert matcher.count == len(brute(final, pattern))

    def test_deletion_retracts_delivered_match(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)],
                             num_vertices=4)
        matcher = IncrementalMatcher(TRIANGLE, g)
        assert matcher.count == 1
        result = matcher.apply(deletes=[(0, 1)])
        assert result.retractions == [(0, 1, 2)]
        assert result.additions == []
        assert result.net == -1 and result.count_after == 0
        assert matcher.count == 0 and matcher.violations == 0

    def test_insertion_reports_only_new_matches(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (1, 3)],
                             num_vertices=4)
        matcher = IncrementalMatcher(TRIANGLE, g)
        result = matcher.apply(inserts=[(2, 3)])
        assert result.additions == [(1, 2, 3)]
        assert result.retractions == []
        assert matcher.count == 2

    def test_same_batch_insert_delete_is_noop(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        matcher = IncrementalMatcher(TRIANGLE, g)
        result = matcher.apply(inserts=[(0, 2)], deletes=[(0, 2)])
        assert result.delta.is_empty
        assert result.additions == [] and result.retractions == []
        assert matcher.count == 0

    def test_countonly_mode_tracks_count(self):
        g = gen.erdos_renyi(20, 0.25, seed=14)
        stream = temporal_edge_stream(g, 30, batch_size=6, seed=15)
        matcher = IncrementalMatcher(TRIANGLE, stream.base,
                                     keep_matches=False)
        assert matcher.matches is None
        for batch in stream.batches:
            matcher.apply(batch.inserts, batch.deletes)
        assert matcher.count == len(brute(stream.final_graph(), TRIANGLE))

    def test_no_bootstrap_counts_deltas_only(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=4)
        matcher = IncrementalMatcher(TRIANGLE, g, bootstrap=False)
        assert matcher.count == 0
        result = matcher.apply(inserts=[(0, 3), (1, 3)])
        assert result.additions == [(0, 1, 3)]
        assert matcher.count == 1
