"""Tests for the DFS/BFS-adaptive scheduler (repro.core.scheduler)."""

import pytest

from repro.baselines import count_matches
from repro.cluster import Cluster
from repro.core import EngineConfig, HugeEngine, SchedulerConfig
from repro.core.plan import seed_plan, wco_plan
from repro.graph import generators as gen
from repro.query import ExactEstimator, get_query


class TestSchedulerConfig:
    def test_defaults_valid(self):
        SchedulerConfig()

    def test_rejects_bad_stealing(self):
        with pytest.raises(ValueError):
            SchedulerConfig(stealing="maybe")

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            SchedulerConfig(scan_pivot_chunk=0)


class TestAdaptiveBehaviour:
    """queue capacity interpolates between DFS and BFS (Exp-7 mechanics)"""

    @pytest.fixture(scope="class")
    def sweep(self):
        g = gen.barabasi_albert(150, 3, seed=8)
        q = get_query("q6")  # 5-path: intermediate explosion
        out = {}
        for capacity in (8, 512, float("inf")):
            cl = Cluster(g, num_machines=4, workers_per_machine=2, seed=1)
            cfg = EngineConfig(output_queue_capacity=capacity)
            out[capacity] = HugeEngine(cl, cfg).run(q)
        return out

    def test_all_capacities_agree(self, sweep):
        assert len({r.count for r in sweep.values()}) == 1

    def test_bfs_needs_most_memory(self, sweep):
        mems = {c: r.report.peak_memory_bytes for c, r in sweep.items()}
        assert mems[float("inf")] == max(mems.values())
        assert mems[8] == min(mems.values())

    def test_dfs_is_slowest(self, sweep):
        times = {c: r.report.total_time_s for c, r in sweep.items()}
        assert times[8] == max(times.values())

    def test_adaptive_memory_bounded_under_explosion(self):
        """intermediates far exceed the queue bound; memory must not"""
        g = gen.hub_web(200, num_hubs=2, hub_degree=80, seed=1)
        q = get_query("q6")
        cl = Cluster(g, num_machines=4, workers_per_machine=2, seed=1)
        cfg = EngineConfig(output_queue_capacity=256, batch_size=64,
                           cache_capacity_ids=100)
        result = HugeEngine(cl, cfg).run(q)
        # queue memory: #extend-ops × (capacity + one batch overflow of
        # D_G each) tuples of ≤ |Vq| ids — the Theorem 5.4 structure
        per_machine_tuples = (q.num_vertices
                              * (256 + 64 * g.max_degree))
        bound = per_machine_tuples * q.num_vertices * 8 + 100 * 8
        assert result.report.peak_memory_bytes <= bound


class TestJoinSegments:
    def test_push_join_plan_end_to_end(self, er_graph):
        cl = Cluster(er_graph, num_machines=4, workers_per_machine=2,
                     seed=1)
        q = get_query("q6")
        plan = seed_plan(q, ExactEstimator(er_graph))
        result = HugeEngine(cl).run(plan=plan)
        assert result.count == count_matches(er_graph, q)

    def test_join_buffers_released(self, er_graph):
        cl = Cluster(er_graph, num_machines=4, workers_per_machine=2,
                     seed=1)
        q = get_query("q6")
        plan = seed_plan(q, ExactEstimator(er_graph))
        HugeEngine(cl).run(plan=plan)
        # after the run, all queue/buffer memory is freed (only the cache
        # reservation remains as the constant overhead)
        for m in cl.metrics.machines:
            assert m.cur_mem_bytes == 0

    def test_deep_plan_with_multiple_joins(self, er_graph):
        from repro.core.plan import vertex_order_plan
        from repro.core.plan.logical import LogicalPlan, PlanNode
        from repro.query import SubQuery

        # hand-build a bushy two-join plan for the 6-cycle:
        # (path 0-1-2-3) ⋈ (path 3-4-5-0), each from wedge ⋈ edge
        def sq(*edges):
            return SubQuery(frozenset(tuple(sorted(e)) for e in edges))

        q = get_query("q8")
        left = PlanNode(sq((0, 1), (1, 2), (2, 3)),
                        PlanNode(sq((0, 1), (1, 2))), PlanNode(sq((2, 3))))
        right = PlanNode(sq((3, 4), (4, 5), (0, 5)),
                         PlanNode(sq((3, 4), (4, 5))), PlanNode(sq((0, 5))))
        plan = LogicalPlan(q, PlanNode(
            sq(*q.edges), left, right), name="hand-bushy")
        cl = Cluster(er_graph, num_machines=3, workers_per_machine=2,
                     seed=2)
        result = HugeEngine(cl).run(plan=plan)
        assert result.count == count_matches(er_graph, q)


class TestStealingIntegration:
    def test_stealing_balances_machine_compute_on_skew(self):
        g = gen.hub_web(300, num_hubs=1, hub_degree=120, seed=4)
        q = get_query("q1")
        compute = {}
        for mode in ("full", "none"):
            cl = Cluster(g, num_machines=6, workers_per_machine=2, seed=1)
            cfg = EngineConfig(stealing=mode, steal_threshold=1.2,
                               batch_size=128, scan_pivot_chunk=8)
            r = HugeEngine(cl, cfg).run(q)
            compute[mode] = r.report.compute_time_s
        # stealing shifts work off the overloaded machine, cutting the
        # slowest machine's compute time (the transfer itself costs some
        # communication, so total time is compared in the benchmarks on
        # heavier skew)
        assert compute["full"] <= compute["none"]

    def test_stealing_records_events_on_skew(self):
        g = gen.hub_web(300, num_hubs=1, hub_degree=150, seed=4)
        cl = Cluster(g, num_machines=6, workers_per_machine=2, seed=1)
        HugeEngine(cl, EngineConfig(stealing="full", steal_threshold=1.2,
                                    batch_size=128,
                                    scan_pivot_chunk=8)).run(get_query("q1"))
        assert sum(m.steals for m in cl.metrics.machines) > 0

    def test_no_stealing_means_no_steal_events(self, er_graph):
        cl = Cluster(er_graph, num_machines=4, workers_per_machine=2,
                     seed=1)
        HugeEngine(cl, EngineConfig(stealing="none")).run(get_query("q1"))
        assert sum(m.steals for m in cl.metrics.machines) == 0

    def test_worker_balance_with_stealing(self):
        g = gen.hub_web(300, num_hubs=1, hub_degree=150, seed=4)
        stddev = {}
        for mode in ("full", "none"):
            cl = Cluster(g, num_machines=4, workers_per_machine=4, seed=1)
            r = HugeEngine(cl, EngineConfig(stealing=mode, batch_size=128,
                                            scan_pivot_chunk=8)).run(
                get_query("q1"))
            stddev[mode] = r.report.worker_time_stddev_s
        assert stddev["full"] < stddev["none"]
