"""Tests for the DFS/BFS-adaptive scheduler (repro.core.scheduler)."""

import pytest

from repro.baselines import count_matches
from repro.cluster import Cluster
from repro.core import EngineConfig, HugeEngine, SchedulerConfig
from repro.core.plan import seed_plan, wco_plan
from repro.graph import generators as gen
from repro.query import ExactEstimator, get_query


class TestSchedulerConfig:
    def test_defaults_valid(self):
        SchedulerConfig()

    def test_rejects_bad_stealing(self):
        with pytest.raises(ValueError):
            SchedulerConfig(stealing="maybe")

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            SchedulerConfig(scan_pivot_chunk=0)


class TestAdaptiveBehaviour:
    """queue capacity interpolates between DFS and BFS (Exp-7 mechanics)"""

    @pytest.fixture(scope="class")
    def sweep(self):
        g = gen.barabasi_albert(150, 3, seed=8)
        q = get_query("q6")  # 5-path: intermediate explosion
        out = {}
        for capacity in (8, 512, float("inf")):
            cl = Cluster(g, num_machines=4, workers_per_machine=2, seed=1)
            cfg = EngineConfig(output_queue_capacity=capacity)
            out[capacity] = HugeEngine(cl, cfg).run(q)
        return out

    def test_all_capacities_agree(self, sweep):
        assert len({r.count for r in sweep.values()}) == 1

    def test_bfs_needs_most_memory(self, sweep):
        mems = {c: r.report.peak_memory_bytes for c, r in sweep.items()}
        assert mems[float("inf")] == max(mems.values())
        assert mems[8] == min(mems.values())

    def test_dfs_is_slowest(self, sweep):
        times = {c: r.report.total_time_s for c, r in sweep.items()}
        assert times[8] == max(times.values())

    def test_adaptive_memory_bounded_under_explosion(self):
        """intermediates far exceed the queue bound; memory must not"""
        g = gen.hub_web(200, num_hubs=2, hub_degree=80, seed=1)
        q = get_query("q6")
        cl = Cluster(g, num_machines=4, workers_per_machine=2, seed=1)
        cfg = EngineConfig(output_queue_capacity=256, batch_size=64,
                           cache_capacity_ids=100)
        result = HugeEngine(cl, cfg).run(q)
        # queue memory: #extend-ops × (capacity + one batch overflow of
        # D_G each) tuples of ≤ |Vq| ids — the Theorem 5.4 structure
        per_machine_tuples = (q.num_vertices
                              * (256 + 64 * g.max_degree))
        bound = per_machine_tuples * q.num_vertices * 8 + 100 * 8
        assert result.report.peak_memory_bytes <= bound


class TestJoinSegments:
    def test_push_join_plan_end_to_end(self, er_graph):
        cl = Cluster(er_graph, num_machines=4, workers_per_machine=2,
                     seed=1)
        q = get_query("q6")
        plan = seed_plan(q, ExactEstimator(er_graph))
        result = HugeEngine(cl).run(plan=plan)
        assert result.count == count_matches(er_graph, q)

    def test_join_buffers_released(self, er_graph):
        cl = Cluster(er_graph, num_machines=4, workers_per_machine=2,
                     seed=1)
        q = get_query("q6")
        plan = seed_plan(q, ExactEstimator(er_graph))
        HugeEngine(cl).run(plan=plan)
        # after the run, all queue/buffer memory is freed (only the cache
        # reservation remains as the constant overhead)
        for m in cl.metrics.machines:
            assert m.cur_mem_bytes == 0

    def test_deep_plan_with_multiple_joins(self, er_graph):
        from repro.core.plan import vertex_order_plan
        from repro.core.plan.logical import LogicalPlan, PlanNode
        from repro.query import SubQuery

        # hand-build a bushy two-join plan for the 6-cycle:
        # (path 0-1-2-3) ⋈ (path 3-4-5-0), each from wedge ⋈ edge
        def sq(*edges):
            return SubQuery(frozenset(tuple(sorted(e)) for e in edges))

        q = get_query("q8")
        left = PlanNode(sq((0, 1), (1, 2), (2, 3)),
                        PlanNode(sq((0, 1), (1, 2))), PlanNode(sq((2, 3))))
        right = PlanNode(sq((3, 4), (4, 5), (0, 5)),
                         PlanNode(sq((3, 4), (4, 5))), PlanNode(sq((0, 5))))
        plan = LogicalPlan(q, PlanNode(
            sq(*q.edges), left, right), name="hand-bushy")
        cl = Cluster(er_graph, num_machines=3, workers_per_machine=2,
                     seed=2)
        result = HugeEngine(cl).run(plan=plan)
        assert result.count == count_matches(er_graph, q)


class TestStealingIntegration:
    def test_stealing_balances_machine_compute_on_skew(self):
        g = gen.hub_web(300, num_hubs=1, hub_degree=120, seed=4)
        q = get_query("q1")
        compute = {}
        for mode in ("full", "none"):
            cl = Cluster(g, num_machines=6, workers_per_machine=2, seed=1)
            cfg = EngineConfig(stealing=mode, steal_threshold=1.2,
                               batch_size=128, scan_pivot_chunk=8)
            r = HugeEngine(cl, cfg).run(q)
            compute[mode] = r.report.compute_time_s
        # stealing shifts work off the overloaded machine, cutting the
        # slowest machine's compute time (the transfer itself costs some
        # communication, so total time is compared in the benchmarks on
        # heavier skew)
        assert compute["full"] <= compute["none"]

    def test_stealing_records_events_on_skew(self):
        g = gen.hub_web(300, num_hubs=1, hub_degree=150, seed=4)
        cl = Cluster(g, num_machines=6, workers_per_machine=2, seed=1)
        HugeEngine(cl, EngineConfig(stealing="full", steal_threshold=1.2,
                                    batch_size=128,
                                    scan_pivot_chunk=8)).run(get_query("q1"))
        assert sum(m.steals for m in cl.metrics.machines) > 0

    def test_no_stealing_means_no_steal_events(self, er_graph):
        cl = Cluster(er_graph, num_machines=4, workers_per_machine=2,
                     seed=1)
        HugeEngine(cl, EngineConfig(stealing="none")).run(get_query("q1"))
        assert sum(m.steals for m in cl.metrics.machines) == 0

    def test_worker_balance_with_stealing(self):
        g = gen.hub_web(300, num_hubs=1, hub_degree=150, seed=4)
        stddev = {}
        for mode in ("full", "none"):
            cl = Cluster(g, num_machines=4, workers_per_machine=4, seed=1)
            r = HugeEngine(cl, EngineConfig(stealing=mode, batch_size=128,
                                            scan_pivot_chunk=8)).run(
                get_query("q1"))
            stddev[mode] = r.report.worker_time_stddev_s
        assert stddev["full"] < stddev["none"]


class TestSourceExhaustedJumpForward:
    def test_jump_forward_reaches_loaded_downstream_operator(self, er_graph):
        """Algorithm 5's outer loop: when the source is exhausted and the
        first extend has no input, the scheduler must jump forward to the
        first operator that still has queued batches (scheduler.run's
        ``pending`` scan) instead of terminating."""
        from repro.core.cache import LRBUCache
        from repro.core.dataflow import ExtendSpec, ScanSpec, Segment
        from repro.core.operators import ExecContext, SinkConsumer
        from repro.core.scheduler import _ChainRunner

        cluster = Cluster(er_graph, num_machines=2, workers_per_machine=1,
                          seed=3)
        caches = [LRBUCache(None, cluster.cost) for _ in range(2)]
        ctx = ExecContext(cluster, caches, two_stage=True, batch_size=16)
        seg = Segment(source=ScanSpec(schema=(0, 1)), extends=[
            ExtendSpec(ext=(1,), out_schema=(0, 1, 2), new_vertex=2),
            ExtendSpec(ext=(2,), out_schema=(0, 1, 2, 3), new_vertex=3),
        ])
        sink = SinkConsumer(seg.out_schema, collect=False)
        runner = _ChainRunner(ctx, SchedulerConfig(batch_size=16,
                                                   stealing="none"), seg, sink)
        # exhaust the scan source before the chain ever runs
        for m in range(2):
            while runner.feed.has_input(m):
                runner.feed.next_batch(m)
        # ... but a batch is already waiting at the SECOND extend's input
        rows = [(0, 1, 2), (3, 4, 5), (6, 7, 8)]
        expected = 0
        for (u, v, w) in rows:
            expected += sum(1 for x in er_graph.neighbours(w).tolist()
                            if x not in (u, v, w))
        runner._enqueue(1, 0, rows, 3)
        runner.run()
        assert sink.count == expected


class TestScanFeedInterMachineStealing:
    def test_stolen_pivot_chunks_are_pulled_remotely(self, er_graph):
        """Inter-machine stealing on the scan feed re-homes pivot chunks;
        the thief's ScanOp must pull the stolen pivots' adjacency with a
        GetNbrs RPC (they stay owned by the donor)."""
        import numpy as np
        from repro.graph.partition import PartitionedGraph

        q = get_query("q2")  # triangle
        expect = count_matches(er_graph, q)
        cluster = Cluster(er_graph, num_machines=3, workers_per_machine=1,
                          seed=1)
        # skew every vertex onto machine 0 so the scan feed starts wholly
        # imbalanced and stealing must move chunks to machines 1 and 2
        owner = np.zeros(er_graph.num_vertices, dtype=np.int64)
        cluster.pgraph = PartitionedGraph(er_graph, 3, owner=owner)
        cfg = EngineConfig(stealing="full", steal_threshold=1.5,
                           scan_pivot_chunk=4)
        result = HugeEngine(cluster, cfg,
                            estimator=ExactEstimator(er_graph)).run(q)
        assert result.count == expect
        machines = cluster.metrics.machines
        assert sum(m.steals for m in machines[1:]) > 0
        # the stolen pivots are remote on the thieves: RPC pulls happened
        assert sum(m.rpc_requests for m in machines[1:]) > 0

    def test_no_stealing_keeps_skewed_feed_local(self, er_graph):
        import numpy as np
        from repro.graph.partition import PartitionedGraph

        q = get_query("q2")
        expect = count_matches(er_graph, q)
        cluster = Cluster(er_graph, num_machines=3, workers_per_machine=1,
                          seed=1)
        owner = np.zeros(er_graph.num_vertices, dtype=np.int64)
        cluster.pgraph = PartitionedGraph(er_graph, 3, owner=owner)
        cfg = EngineConfig(stealing="none")
        result = HugeEngine(cluster, cfg,
                            estimator=ExactEstimator(er_graph)).run(q)
        assert result.count == expect
        assert all(m.steals == 0 for m in cluster.metrics.machines)
