"""Tests for the simulated cluster substrate (cost, metrics, RPC)."""

import pytest

from repro.cluster import (Cluster, CostModel, Metrics, OutOfMemoryError,
                           OvertimeError)


class TestCostModel:
    def test_defaults_positive(self, cost):
        assert cost.compute_rate > 0
        assert cost.bandwidth_bytes_per_s > 0

    def test_with_overrides(self, cost):
        c2 = cost.with_overrides(compute_rate=1.0)
        assert c2.compute_rate == 1.0
        assert cost.compute_rate != 1.0  # original untouched

    def test_ops_to_seconds(self, cost):
        assert cost.ops_to_seconds(cost.compute_rate) == pytest.approx(1.0)

    def test_transfer_seconds(self, cost):
        t = cost.transfer_seconds(cost.bandwidth_bytes_per_s, 0)
        assert t == pytest.approx(1.0)
        assert cost.transfer_seconds(0, 10) == pytest.approx(
            10 * cost.latency_s)

    def test_intersection_single_list(self, cost):
        assert cost.intersection_ops([100]) == pytest.approx(
            100 * cost.intersect_op)

    def test_intersection_galloping_asymmetry(self, cost):
        # intersecting small×huge must cost ~small·log(huge), not ~huge
        small_huge = cost.intersection_ops([10, 100000])
        assert small_huge < 10 * 20 * cost.intersect_op
        assert small_huge < cost.intersection_ops([100000])

    def test_intersection_empty(self, cost):
        assert cost.intersection_ops([]) == 0.0

    def test_intersection_monotone_in_lists(self, cost):
        assert (cost.intersection_ops([10, 50, 50])
                > cost.intersection_ops([10, 50]))


class TestMetrics:
    def test_charge_ops_accumulates(self, cost):
        m = Metrics(2, 2, cost)
        m.charge_ops(0, 100.0)
        m.charge_ops(0, 50.0)
        assert m.machines[0].compute_ops == 150.0

    def test_worker_attribution(self, cost):
        m = Metrics(1, 4, cost)
        m.charge_worker_ops(0, [10.0, 20.0, 30.0, 40.0])
        assert m.machines[0].worker_ops == [10.0, 20.0, 30.0, 40.0]
        assert m.machines[0].compute_ops == 100.0

    def test_send_local_is_free(self, cost):
        m = Metrics(2, 1, cost)
        m.send(0, 0, 1000)
        assert m.machines[0].bytes_sent == 0

    def test_send_remote_charges_both_sides(self, cost):
        m = Metrics(2, 1, cost)
        m.send(0, 1, 1000, messages=2)
        assert m.machines[0].bytes_sent == 1000
        assert m.machines[0].messages_sent == 2
        assert m.machines[1].bytes_received == 1000
        assert m.machines[1].messages_received == 2

    def test_memory_peak_tracking(self, cost):
        m = Metrics(1, 1, cost)
        m.alloc(0, 100)
        m.alloc(0, 200)
        m.free(0, 250)
        assert m.machines[0].peak_mem_bytes == 300
        assert m.machines[0].cur_mem_bytes == 50

    def test_free_never_negative(self, cost):
        m = Metrics(1, 1, cost)
        m.alloc(0, 10)
        m.free(0, 100)
        assert m.machines[0].cur_mem_bytes == 0

    def test_oom_raised(self):
        cost = CostModel(memory_budget_bytes=1000)
        m = Metrics(1, 1, cost)
        with pytest.raises(OutOfMemoryError) as exc:
            m.alloc(0, 2000)
        assert exc.value.machine == 0

    def test_reserve_constant_counts_toward_budget(self):
        cost = CostModel(memory_budget_bytes=1000)
        m = Metrics(2, 1, cost)
        m.reserve_constant(900)
        with pytest.raises(OutOfMemoryError):
            m.alloc(1, 200)

    def test_overtime_raised(self):
        cost = CostModel(time_budget_s=1.0)
        m = Metrics(1, 1, cost)
        m.charge_time(0, 2.0)
        with pytest.raises(OvertimeError):
            m.check_time()

    def test_elapsed_is_slowest_machine(self, cost):
        m = Metrics(3, 1, cost)
        m.charge_ops(0, cost.compute_rate)       # 1 s
        m.charge_ops(2, 3 * cost.compute_rate)   # 3 s
        assert m.elapsed() == pytest.approx(3.0)

    def test_report_fields(self, cost):
        m = Metrics(2, 2, cost)
        m.charge_worker_ops(0, [100.0, 300.0])
        m.send(0, 1, 5000)
        m.alloc(1, 64)
        m.record_cache(0, hits=3, misses=1)
        rep = m.report()
        assert rep.total_time_s > 0
        assert rep.bytes_transferred == 5000
        assert rep.peak_memory_bytes == 64
        assert rep.cache_hit_rate == pytest.approx(0.75)
        assert rep.worker_time_stddev_s > 0
        assert len(rep.per_machine_time_s) == 2
        assert rep.comm_gb == pytest.approx(5e-6)

    def test_report_no_activity(self, cost):
        rep = Metrics(2, 2, cost).report()
        assert rep.total_time_s == 0
        assert rep.cache_hit_rate == 0.0
        assert rep.network_utilisation == 0.0

    def test_invalid_shape(self, cost):
        with pytest.raises(ValueError):
            Metrics(0, 1, cost)


class TestClusterRPC:
    def test_local_get_nbrs_free(self, cluster):
        v = int(cluster.local_vertices(0)[0])
        before = cluster.metrics.machines[0].bytes_sent
        result = cluster.get_nbrs(0, [v])
        assert v in result
        assert cluster.metrics.machines[0].bytes_sent == before

    def test_remote_get_nbrs_charged(self, cluster):
        v = int(cluster.local_vertices(1)[0])
        result = cluster.get_nbrs(0, [v])
        assert v in result
        m = cluster.metrics.machines
        assert m[0].bytes_sent > 0          # request
        assert m[1].bytes_sent > 0          # response
        assert m[0].rpc_requests == 1

    def test_rpc_batched_per_owner(self, cluster):
        # many vertices of one owner → exactly one request message pair
        verts = [int(v) for v in cluster.local_vertices(1)[:5]]
        cluster.get_nbrs(0, verts)
        assert cluster.metrics.machines[0].messages_sent == 1
        assert cluster.metrics.machines[1].messages_sent == 1

    def test_get_nbrs_returns_correct_adjacency(self, cluster, er_graph):
        import numpy as np

        verts = [int(cluster.local_vertices(p)[0]) for p in range(4)]
        result = cluster.get_nbrs(0, verts)
        for v in verts:
            assert np.array_equal(result[v], er_graph.neighbours(v))

    def test_push_accounting(self, cluster):
        cluster.push(0, 1, num_tuples=10, arity=3)
        assert cluster.metrics.machines[0].bytes_sent == 10 * 3 * 8

    def test_push_zero_tuples_free(self, cluster):
        cluster.push(0, 1, num_tuples=0, arity=3)
        assert cluster.metrics.machines[0].bytes_sent == 0

    def test_shuffle_cost(self, cluster):
        cluster.shuffle_cost(0, {1: 5, 2: 7, 0: 100}, arity=2)
        assert cluster.metrics.machines[0].bytes_sent == (5 + 7) * 2 * 8

    def test_reset_metrics(self, cluster):
        cluster.push(0, 1, 10, 2)
        cluster.reset_metrics()
        assert cluster.metrics.machines[0].bytes_sent == 0

    def test_graph_bytes(self, cluster, er_graph):
        expected = (2 * er_graph.num_edges + er_graph.num_vertices) * 8
        assert cluster.graph_bytes() == expected

    def test_tuple_bytes(self, cluster):
        assert cluster.tuple_bytes(4) == 32
